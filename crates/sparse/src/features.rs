//! Sparsity feature extraction — the paper's Table I parameters, which
//! feed the two-stage machine-learning model, plus the extended
//! histogram-based features that §IV-C proposes as future work.

use crate::csr::CsrMatrix;
use crate::histogram::RowHistogram;
use crate::scalar::Scalar;

/// Which feature vector to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSet {
    /// Exactly Table I: `{M, N, NNZ, Var_NNZ, Avg_NNZ, Min_NNZ, Max_NNZ}`.
    TableI,
    /// Table I plus the row-NNZ histogram shares the paper's §IV-C
    /// ("Parameters") suggests to capture the ratio of short/medium/long
    /// rows.
    Extended,
}

/// The extracted feature parameters of one sparse matrix (Table I).
///
/// * Basic matrix info: `m` (rows), `n` (columns), `nnz`.
/// * Non-zero distribution info: variance, average, minimum and maximum of
///   non-zeros per row.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixFeatures {
    /// `M` — the number of rows.
    pub m: usize,
    /// `N` — the number of columns.
    pub n: usize,
    /// `NNZ` — the overall number of non-zeros.
    pub nnz: usize,
    /// `Var_NNZ` — the (population) variance of non-zeros per row.
    pub var_nnz: f64,
    /// `Avg_NNZ` — the average of non-zeros per row.
    pub avg_nnz: f64,
    /// `Min_NNZ` — the minimum of non-zeros per row.
    pub min_nnz: usize,
    /// `Max_NNZ` — the maximum of non-zeros per row.
    pub max_nnz: usize,
    /// Extended features (§IV-C): share of rows whose NNZ falls in each
    /// power-of-ten histogram bucket `[1, 10), [10, 100), [100, 1000), ≥1000`
    /// plus the share of empty rows. Empty unless [`FeatureSet::Extended`]
    /// was requested.
    pub hist_shares: Vec<f64>,
}

impl MatrixFeatures {
    /// Extract features from a CSR matrix.
    pub fn extract<T: Scalar>(a: &CsrMatrix<T>, set: FeatureSet) -> Self {
        let m = a.n_rows();
        let nnz = a.nnz();
        let avg = if m == 0 { 0.0 } else { nnz as f64 / m as f64 };
        let mut min_nnz = usize::MAX;
        let mut max_nnz = 0usize;
        let mut var_acc = 0.0f64;
        for i in 0..m {
            let r = a.row_nnz(i);
            min_nnz = min_nnz.min(r);
            max_nnz = max_nnz.max(r);
            let d = r as f64 - avg;
            var_acc += d * d;
        }
        if m == 0 {
            min_nnz = 0;
        }
        let var_nnz = if m == 0 { 0.0 } else { var_acc / m as f64 };
        let hist_shares = match set {
            FeatureSet::TableI => Vec::new(),
            FeatureSet::Extended => {
                let h = RowHistogram::of_matrix(a);
                h.decade_shares()
            }
        };
        Self {
            m,
            n: a.n_cols(),
            nnz,
            var_nnz,
            avg_nnz: avg,
            min_nnz,
            max_nnz,
            hist_shares,
        }
    }

    /// Flatten into the numeric attribute vector consumed by the learner,
    /// in the fixed order `{M, N, NNZ, Var_NNZ, Avg_NNZ, Min_NNZ, Max_NNZ}`
    /// (then histogram shares, when extended).
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = vec![
            self.m as f64,
            self.n as f64,
            self.nnz as f64,
            self.var_nnz,
            self.avg_nnz,
            self.min_nnz as f64,
            self.max_nnz as f64,
        ];
        v.extend_from_slice(&self.hist_shares);
        v
    }

    /// Names for each position of [`to_vec`](Self::to_vec), used when
    /// printing learned rule-sets.
    pub fn attr_names(set: FeatureSet) -> Vec<&'static str> {
        let mut names = vec!["M", "N", "NNZ", "Var_NNZ", "Avg_NNZ", "Min_NNZ", "Max_NNZ"];
        if set == FeatureSet::Extended {
            names.extend_from_slice(&[
                "Share_empty",
                "Share_1_10",
                "Share_10_100",
                "Share_100_1000",
                "Share_ge_1000",
            ]);
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::figure1_example;

    #[test]
    fn table1_features_of_figure1() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.m, 4);
        assert_eq!(f.n, 4);
        assert_eq!(f.nnz, 8);
        assert_eq!(f.avg_nnz, 2.0);
        assert_eq!(f.min_nnz, 1);
        assert_eq!(f.max_nnz, 3);
        // rows have nnz {2,2,1,3}; var = ((0)^2+(0)^2+(1)^2+(1)^2)/4 = 0.5
        assert!((f.var_nnz - 0.5).abs() < 1e-12);
        assert!(f.hist_shares.is_empty());
    }

    #[test]
    fn extended_features_have_five_shares_summing_to_one() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::Extended);
        assert_eq!(f.hist_shares.len(), 5);
        let s: f64 = f.hist_shares.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_features_are_zero() {
        let a = crate::csr::CsrMatrix::<f64>::zeros(0, 0);
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.m, 0);
        assert_eq!(f.nnz, 0);
        assert_eq!(f.avg_nnz, 0.0);
        assert_eq!(f.min_nnz, 0);
        assert_eq!(f.max_nnz, 0);
    }

    #[test]
    fn vector_order_is_stable() {
        let a = figure1_example::<f64>();
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        let v = f.to_vec();
        assert_eq!(
            v.len(),
            MatrixFeatures::attr_names(FeatureSet::TableI).len()
        );
        assert_eq!(v[0], 4.0); // M
        assert_eq!(v[2], 8.0); // NNZ
        assert_eq!(v[6], 3.0); // Max_NNZ
    }

    #[test]
    fn uniform_rows_have_zero_variance() {
        let a = crate::csr::CsrMatrix::<f64>::identity(10);
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.var_nnz, 0.0);
        assert_eq!(f.min_nnz, 1);
        assert_eq!(f.max_nnz, 1);
    }
}
