//! # spmv-parallel
//!
//! A small, dependency-light data-parallel substrate: the CPU analogue of
//! the paper's OpenCL work-group machinery. The CPU-native SpMV kernels
//! run on this, and the GPU *simulator* uses it to cost work-groups
//! concurrently.
//!
//! Two layers are provided:
//!
//! * [`parallel_for`]-style free functions built on `std::thread::scope`
//!   that operate on borrowed data with dynamic (atomic-counter) chunk
//!   scheduling — the moral equivalent of a `#pragma omp parallel for
//!   schedule(dynamic)`;
//! * a persistent [`pool::ThreadPool`] for `'static` jobs, so repeated
//!   small launches (one per bin, as the framework issues) don't pay
//!   thread spawn/join each time;
//! * a fused single-scope dispatcher ([`fused_for_each`]) that runs a
//!   whole precompiled tile queue in one parallel region, so multi-bin
//!   plans pay one join instead of one barrier per bin;
//! * a topology/placement layer ([`topology`]) naming how many workers
//!   run and how work queues map onto worker groups, and a sharded
//!   dispatcher ([`sharded_for_each_scratch`]) that drains per-shard
//!   queues home-first with ring-order cross-shard stealing;
//! * a barrier-stepped dispatcher ([`stepped_for_each`]) for
//!   dependency-carrying schedules (level-set triangular solves): one
//!   worker team marches through barrier-separated steps, so step
//!   `s + 1` reads what step `s` wrote without a spawn/join per level.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod fused;
pub mod partition;
pub mod pool;
pub mod scope;
pub mod shard;
pub mod step;
pub mod topology;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use fused::{fused_for_each, fused_for_each_scratch, fused_for_each_with};
pub use partition::{chunk_ranges, Chunk};
pub use pool::ThreadPool;
pub use scope::{
    hardware_threads, machine_threads, num_threads, parallel_for, parallel_map_collect,
    parallel_reduce,
};
pub use shard::sharded_for_each_scratch;
pub use step::stepped_for_each;
pub use topology::{
    parse_placement, parse_threads_alias, Placement, PlacementError, PlacementPolicy, Topology,
};
