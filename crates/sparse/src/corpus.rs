//! A UF-collection-like training corpus.
//!
//! The paper trains its two-stage model on "over 2000 sparse matrices from
//! the UF collection" and motivates its kernel pool with the row-length
//! histogram of 2760 UF matrices (Figure 5: ≈98.7% of rows have ≤100
//! non-zeros). This module samples a synthetic corpus spanning the same
//! regimes: every matrix is drawn from one of the domain generators with
//! randomised parameters, deterministically from `(corpus_seed, index)`.

use crate::csr::CsrMatrix;
use crate::gen;
use crate::gen::mixture::RowRegime;
use crate::scalar::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator family a corpus matrix is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Uniform random short rows.
    RandomShort,
    /// Uniform random medium rows.
    RandomMedium,
    /// Power-law graph.
    PowerLaw,
    /// Banded / stencil.
    Banded,
    /// Dense block-coupled (FEM-like, long rows).
    Block,
    /// Incidence (fixed tiny row length, tall).
    Incidence,
    /// Multi-regime mixture (irregular).
    Mixture,
    /// R-MAT graph.
    Rmat,
    /// Road-network lattice.
    RoadNet,
}

/// Weights roughly matching the UF collection's composition: short-row
/// matrices dominate (Figure 5), long-row FEM/CFD matrices are a small
/// minority, irregular graphs sit in between.
const FAMILY_WEIGHTS: [(Family, f64); 9] = [
    (Family::RandomShort, 0.18),
    (Family::RandomMedium, 0.12),
    (Family::PowerLaw, 0.15),
    (Family::Banded, 0.15),
    (Family::Block, 0.08),
    (Family::Incidence, 0.10),
    (Family::Mixture, 0.10),
    (Family::Rmat, 0.06),
    (Family::RoadNet, 0.06),
];

/// Configuration of a corpus sample.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Number of matrices.
    pub count: usize,
    /// Minimum rows per matrix.
    pub min_rows: usize,
    /// Maximum rows per matrix.
    pub max_rows: usize,
    /// Master seed; `(seed, index)` fully determines matrix `index`.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            count: 2000,
            min_rows: 1_000,
            max_rows: 20_000,
            seed: 0x5eed_c0de,
        }
    }
}

/// Description of one corpus member (generated lazily).
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    /// Index within the corpus.
    pub index: usize,
    /// Family the matrix is drawn from.
    pub family: Family,
    seed: u64,
    rows: usize,
}

impl CorpusEntry {
    /// Materialise the matrix.
    pub fn generate<T: Scalar>(&self) -> CsrMatrix<T> {
        build_matrix(self.family, self.rows, self.seed)
    }
}

/// Enumerate a corpus: cheap (no matrices are built until
/// [`CorpusEntry::generate`] is called, so callers can parallelise).
pub fn corpus(cfg: &CorpusConfig) -> Vec<CorpusEntry> {
    (0..cfg.count)
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let family = pick_family(&mut rng);
            let rows = rng.gen_range(cfg.min_rows..=cfg.max_rows);
            CorpusEntry {
                index,
                family,
                seed: rng.gen(),
                rows,
            }
        })
        .collect()
}

fn pick_family(rng: &mut StdRng) -> Family {
    let total: f64 = FAMILY_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut u = rng.gen_range(0.0..total);
    for &(f, w) in &FAMILY_WEIGHTS {
        if u < w {
            return f;
        }
        u -= w;
    }
    FAMILY_WEIGHTS[FAMILY_WEIGHTS.len() - 1].0
}

fn build_matrix<T: Scalar>(family: Family, rows: usize, seed: u64) -> CsrMatrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        Family::RandomShort => {
            let hi = rng.gen_range(2..=12);
            gen::random_uniform(rows, rows, 1, hi, seed)
        }
        Family::RandomMedium => {
            let lo = rng.gen_range(8usize..=32);
            let hi = lo + rng.gen_range(8usize..=64);
            gen::random_uniform(rows, rows.max(hi * 4), lo, hi, seed)
        }
        Family::PowerLaw => {
            let alpha = rng.gen_range(1.8..=3.0);
            let max_deg = rng.gen_range(50usize..=400).min(rows);
            gen::powerlaw(rows, 1, max_deg, alpha, seed)
        }
        Family::Banded => {
            let hb = rng.gen_range(1..=8);
            gen::banded(rows, hb, seed)
        }
        Family::Block => {
            let bs = rng.gen_range(3usize..=8);
            let coupling = rng.gen_range(4usize..=30);
            let n_blocks = (rows / bs).max(coupling + 1);
            gen::block_structured(n_blocks, bs, coupling, seed)
        }
        Family::Incidence => {
            let k = rng.gen_range(1usize..=5);
            let cols = (rows / rng.gen_range(2usize..=8)).max(k + 1);
            gen::incidence(rows, cols, k, seed)
        }
        Family::Mixture => {
            let regimes = [
                RowRegime::new(1, 4, rng.gen_range(0.3..0.7)),
                RowRegime::new(8, 64, rng.gen_range(0.2..0.5)),
                RowRegime::new(100, 600, rng.gen_range(0.02..0.15)),
            ];
            gen::mixture(rows, rows.max(1200), &regimes, true, seed)
        }
        Family::Rmat => {
            let scale = (rows as f64).log2().floor() as u32;
            let scale = scale.clamp(8, 15);
            gen::rmat(scale, rng.gen_range(4..=12), 0.57, 0.19, 0.19, seed)
        }
        Family::RoadNet => {
            let side = (rows as f64).sqrt() as usize;
            gen::road_network(side.max(8), side.max(8), rng.gen_range(0.5..0.95), seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::RowHistogram;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig {
            count: 10,
            ..Default::default()
        };
        let a: Vec<_> = corpus(&cfg);
        let b: Vec<_> = corpus(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.family, y.family);
            assert_eq!(x.generate::<f32>(), y.generate::<f32>());
        }
    }

    #[test]
    fn corpus_spans_multiple_families() {
        let cfg = CorpusConfig {
            count: 100,
            min_rows: 500,
            max_rows: 1500,
            ..Default::default()
        };
        let entries = corpus(&cfg);
        let mut fams: Vec<_> = entries.iter().map(|e| e.family).collect();
        fams.sort_by_key(|f| format!("{f:?}"));
        fams.dedup();
        assert!(fams.len() >= 6, "only {} families sampled", fams.len());
    }

    #[test]
    fn figure5_shape_most_rows_are_short() {
        // Reproduces the paper's Figure-5 motivation at small scale:
        // the vast majority of rows across the corpus have <= 100 NNZ.
        let cfg = CorpusConfig {
            count: 60,
            min_rows: 500,
            max_rows: 3000,
            seed: 77,
        };
        let mut h = RowHistogram::decades();
        for e in corpus(&cfg) {
            h.add_matrix(&e.generate::<f32>());
        }
        let share = h.cumulative_share_below(101);
        assert!(share > 0.90, "share of rows <= 100 nnz = {share}");
    }

    #[test]
    fn matrices_have_sane_dimensions() {
        let cfg = CorpusConfig {
            count: 30,
            min_rows: 800,
            max_rows: 2000,
            seed: 3,
        };
        for e in corpus(&cfg) {
            let a = e.generate::<f32>();
            assert!(a.n_rows() >= 200, "{:?} rows = {}", e.family, a.n_rows());
            assert!(a.nnz() > 0);
        }
    }
}
