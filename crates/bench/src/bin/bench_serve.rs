//! Multi-tenant serving report: drives the `spmv-serve` admission queue
//! with open-loop Poisson traffic and emits `BENCH_serve.json`.
//!
//! Two phases:
//!
//! * **Repeat traffic** — closed-loop requests cycling over a small set
//!   of registered matrices after a one-pass warm-up. Every post-warm
//!   lookup must be a plan-cache hit; the report records the measured
//!   hit rate (CI gates it at exactly 1.0).
//! * **Saturation** — open-loop Poisson arrivals at ~4× the estimated
//!   single-request service rate, replayed against two server arms with
//!   the *same* arrival schedule: `unbatched` (`max_batch = 1`, the
//!   one-at-a-time baseline) and `batched` (`max_batch = 8` with a
//!   coalescing window). Per arm: wall-clock drain time, throughput,
//!   p50/p99/p99.9 latency (arrival → batch completion), and the batch
//!   occupancy histogram. Coalescing amortizes the matrix walk across
//!   same-matrix requests, so the batched arm must clear the backlog at
//!   least as fast as the baseline (CI gates `batched_vs_unbatched ≥ 1`
//!   on multicore runners).
//!
//! Every response is cross-checked bit-for-bit against a standalone
//! single-vector execute before any number is reported.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_serve`.
//!
//! Knobs: `SPMV_BENCH_SERVE_REQUESTS` (saturation requests, default
//! 1200), `SPMV_BENCH_SERVE_OUT` (output path, default
//! `BENCH_serve.json`), `SPMV_BENCH_TINY=1` (small matrices + short
//! trace — CI smoke mode).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_autotune::prelude::*;
use spmv_bench::setup::env_usize;
use spmv_serve::{CacheConfig, ServeConfig, SpmvServer};
use spmv_sparse::{gen, CsrMatrix};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn strategy() -> Strategy {
    Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    }
}

fn request_vector(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((((i * 31 + salt * 7) % 17) as f32) - 8.0) / 4.0)
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ArmResult {
    label: &'static str,
    max_batch: usize,
    window_us: u64,
    wall_secs: f64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    mean_occupancy: f64,
    occupancy: Vec<u64>,
    batches: u64,
    cache_hit_rate: f64,
}

/// One request of the pre-generated trace: who asks, for which matrix,
/// and when (offset from trace start).
struct TraceEntry {
    tenant: u32,
    matrix: u64,
    arrival: Duration,
}

/// Replay `trace` open-loop against a server arm: the generator sleeps
/// to each arrival offset regardless of how the server keeps up, so a
/// slow arm accumulates queue (that is the point of the comparison).
fn run_arm(
    label: &'static str,
    max_batch: usize,
    window: Duration,
    matrices: &[(u64, CsrMatrix<f32>)],
    expected: &[(u64, Vec<f32>, Vec<f32>)],
    trace: &[TraceEntry],
) -> ArmResult {
    let server = SpmvServer::start(ServeConfig {
        max_batch,
        coalesce_window: window,
        cache: CacheConfig::default(),
        ..ServeConfig::default()
    });
    for (id, a) in matrices {
        server.register_matrix(*id, a.clone(), strategy());
    }
    // Warm every plan so the trace measures serving, not compilation.
    let far = Instant::now() + Duration::from_secs(600);
    for (id, a) in matrices {
        server
            .submit(0, *id, vec![1.0; a.n_cols()], far)
            .unwrap()
            .wait()
            .unwrap();
    }
    let warm_stats = server.stats();

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(trace.len());
    for (i, e) in trace.iter().enumerate() {
        let target = start + e.arrival;
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let (_, x, _) = &expected[i];
        let submitted = Instant::now();
        let ticket = server
            .submit(
                e.tenant,
                e.matrix,
                x.clone(),
                submitted + Duration::from_millis(5),
            )
            .unwrap();
        tickets.push((submitted, ticket));
    }
    let mut latencies_us = Vec::with_capacity(trace.len());
    let mut last_completed = start;
    for (i, (submitted, ticket)) in tickets.into_iter().enumerate() {
        let resp = ticket.wait().unwrap();
        let (mid, _, want) = &expected[i];
        assert_eq!(
            &resp.y, want,
            "{label}: request {i} (matrix {mid}) diverges from the standalone execute"
        );
        latencies_us.push(
            resp.completed
                .saturating_duration_since(submitted)
                .as_secs_f64()
                * 1e6,
        );
        if resp.completed > last_completed {
            last_completed = resp.completed;
        }
    }
    let wall_secs = last_completed
        .saturating_duration_since(start)
        .as_secs_f64();
    let stats = server.stats();
    server.shutdown();

    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let served = trace.len() as f64;
    let batches = stats.batches - warm_stats.batches;
    let occupancy: Vec<u64> = stats
        .occupancy
        .iter()
        .zip(warm_stats.occupancy.iter().chain(std::iter::repeat(&0)))
        .map(|(a, w)| a - w)
        .collect();
    let hits = stats.cache.hits - warm_stats.cache.hits;
    let lookups = stats.cache.lookups() - warm_stats.cache.lookups();
    ArmResult {
        label,
        max_batch,
        window_us: window.as_micros() as u64,
        wall_secs,
        throughput_rps: if wall_secs > 0.0 {
            served / wall_secs
        } else {
            0.0
        },
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        p999_us: percentile(&latencies_us, 0.999),
        mean_occupancy: if batches > 0 {
            served / batches as f64
        } else {
            0.0
        },
        occupancy,
        batches,
        cache_hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            1.0
        },
    }
}

/// Closed-loop repeat traffic: after a one-pass warm-up, every lookup
/// must hit the plan cache. Returns (requests, hit_rate, builds).
fn repeat_traffic(matrices: &[(u64, CsrMatrix<f32>)], requests: usize) -> (usize, f64, u64) {
    let server = SpmvServer::start(ServeConfig::default());
    for (id, a) in matrices {
        server.register_matrix(*id, a.clone(), strategy());
    }
    let far = Instant::now() + Duration::from_secs(600);
    for (id, a) in matrices {
        server
            .submit(0, *id, vec![1.0; a.n_cols()], far)
            .unwrap()
            .wait()
            .unwrap();
    }
    let warm = server.stats();
    for i in 0..requests {
        let (id, a) = &matrices[i % matrices.len()];
        server
            .submit((i % 4) as u32, *id, request_vector(a.n_cols(), i), far)
            .unwrap()
            .wait()
            .unwrap();
    }
    let stats = server.stats();
    server.shutdown();
    let hits = stats.cache.hits - warm.cache.hits;
    let lookups = stats.cache.lookups() - warm.cache.lookups();
    let rate = if lookups > 0 {
        hits as f64 / lookups as f64
    } else {
        1.0
    };
    (requests, rate, stats.cache.builds)
}

fn main() {
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let requests = env_usize("SPMV_BENCH_SERVE_REQUESTS", if tiny { 240 } else { 1200 });
    let out_path =
        std::env::var("SPMV_BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    // Two matrices with a 3:1 traffic split: the hot matrix is what
    // coalescing feeds on, the cold one keeps the scheduler honest.
    let (m, nnz_lo, nnz_hi) = if tiny { (4_000, 3, 6) } else { (60_000, 5, 12) };
    let matrices: Vec<(u64, CsrMatrix<f32>)> = vec![
        (1, gen::random_uniform::<f32>(m, m, nnz_lo, nnz_hi, 21)),
        (2, gen::random_uniform::<f32>(m / 2, m, nnz_lo, nnz_hi, 22)),
    ];

    // Estimate single-request service time from a standalone verified
    // plan (lower bound: server adds queueing/wakeup overhead), then
    // drive arrivals at ~4× that rate — firmly saturating.
    let a_hot = &matrices[0].1;
    let verified = SpmvPlan::compile_with(
        a_hot,
        strategy(),
        Box::new(NativeCpuBackend::new()),
        PlanConfig::default(),
    )
    .verify(a_hot)
    .expect("calibration plan must verify");
    let xcal = request_vector(a_hot.n_cols(), 0);
    let mut ucal = vec![0.0f32; a_hot.n_rows()];
    verified.execute_unchecked(a_hot, &xcal, &mut ucal).unwrap();
    let t0 = Instant::now();
    let cal_iters = 20;
    for _ in 0..cal_iters {
        verified.execute_unchecked(a_hot, &xcal, &mut ucal).unwrap();
    }
    let service_est = t0.elapsed().as_secs_f64() / cal_iters as f64;
    let mean_gap = service_est / 4.0;
    let arrival_rate = 1.0 / mean_gap;

    // Pre-generate one Poisson trace shared by both arms, plus the
    // expected (standalone) answer for every request.
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = Duration::ZERO;
    let mut trace = Vec::with_capacity(requests);
    let mut expected = Vec::with_capacity(requests);
    let mut plans = std::collections::HashMap::new();
    for (id, a) in &matrices {
        let p = SpmvPlan::compile_with(
            a,
            strategy(),
            Box::new(NativeCpuBackend::new()),
            PlanConfig::default(),
        )
        .verify(a)
        .expect("reference plan must verify");
        plans.insert(*id, p);
    }
    for i in 0..requests {
        let gap = -mean_gap * (1.0 - rng.gen::<f64>()).ln();
        clock += Duration::from_secs_f64(gap);
        let matrix = if i % 4 == 3 { 2u64 } else { 1u64 };
        let a = &matrices.iter().find(|(id, _)| *id == matrix).unwrap().1;
        let x = request_vector(a.n_cols(), i);
        let mut want = vec![0.0f32; a.n_rows()];
        plans[&matrix].execute_unchecked(a, &x, &mut want).unwrap();
        trace.push(TraceEntry {
            tenant: (i % 4) as u32,
            matrix,
            arrival: clock,
        });
        expected.push((matrix, x, want));
    }

    eprintln!(
        "  serving {requests} requests over {} threads (service est {:.1} µs, \
         arrival rate {:.0} req/s) …",
        spmv_parallel::num_threads(),
        service_est * 1e6,
        arrival_rate
    );

    let (repeat_requests, repeat_hit_rate, repeat_builds) = repeat_traffic(&matrices, 100);
    eprintln!("  repeat-traffic hit rate: {repeat_hit_rate:.3}");

    let unbatched = run_arm("unbatched", 1, Duration::ZERO, &matrices, &expected, &trace);
    eprintln!(
        "  unbatched: {:.0} req/s, p99 {:.0} µs",
        unbatched.throughput_rps, unbatched.p99_us
    );
    let batched = run_arm(
        "batched",
        8,
        Duration::from_micros(200),
        &matrices,
        &expected,
        &trace,
    );
    eprintln!(
        "  batched:   {:.0} req/s, p99 {:.0} µs, mean occupancy {:.2}",
        batched.throughput_rps, batched.p99_us, batched.mean_occupancy
    );

    let speedup = if unbatched.throughput_rps > 0.0 {
        batched.throughput_rps / unbatched.throughput_rps
    } else {
        0.0
    };

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"serve\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(json, "  \"threads\": {},", spmv_parallel::num_threads()).unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(json, "  \"requests\": {requests},").unwrap();
    writeln!(json, "  \"tenants\": 4,").unwrap();
    writeln!(json, "  \"service_est_us\": {:.2},", service_est * 1e6).unwrap();
    writeln!(json, "  \"arrival_rate_rps\": {arrival_rate:.1},").unwrap();
    writeln!(
        json,
        "  \"repeat_traffic\": {{\"requests\": {repeat_requests}, \
         \"hit_rate\": {repeat_hit_rate:.4}, \"builds\": {repeat_builds}}},"
    )
    .unwrap();
    writeln!(json, "  \"batched_vs_unbatched\": {speedup:.3},").unwrap();
    writeln!(json, "  \"arms\": [").unwrap();
    for (i, arm) in [&unbatched, &batched].iter().enumerate() {
        let occ = arm
            .occupancy
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            json,
            "    {{\"label\": \"{}\", \"max_batch\": {}, \"coalesce_window_us\": {}, \
             \"wall_secs\": {:.4}, \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"batches\": {}, \
             \"mean_occupancy\": {:.3}, \"occupancy\": [{}], \"cache_hit_rate\": {:.4}}}",
            arm.label,
            arm.max_batch,
            arm.window_us,
            arm.wall_secs,
            arm.throughput_rps,
            arm.p50_us,
            arm.p99_us,
            arm.p999_us,
            arm.batches,
            arm.mean_occupancy,
            occ,
            arm.cache_hit_rate,
        )
        .unwrap();
        writeln!(json, "{}", if i == 0 { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
