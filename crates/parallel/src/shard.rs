//! Sharded work queues with locality-first stealing.
//!
//! [`crate::fused`] drains one flat tile queue through one shared atomic
//! cursor: perfect load balance, zero locality. On a machine with
//! worker groups (sockets, core clusters), a worker that claims whatever
//! tile is next will happily stream a remote shard's slice of `x` and
//! dirty a remote group's `y` lines. Sharding splits the queue at
//! *compile* time into per-shard sub-queues (the planner cuts them
//! NNZ-balanced over disjoint row ranges) and changes the *claim order*
//! at run time:
//!
//! 1. a worker's home shard is `role % n_shards` — it drains that queue
//!    first (shard-local stealing: workers sharing a home still balance
//!    among themselves through the shard's cursor);
//! 2. only when its home queue is empty does it move to the next shard
//!    in ring order (`home + 1`, `home + 2`, …) — cross-shard stealing
//!    as a fallback, so imbalance between shards can never idle a
//!    worker while any queue holds work.
//!
//! The ring fallback is load-bearing for liveness *and* coverage: every
//! role visits every shard, so the union of drains covers every queue
//! even when there are more shards than workers (a pinned-count plan
//! running on a smaller machine). The protocol — home first, ring
//! fallback, monotone per-shard cursors — is modeled as `ShardModel` in
//! the `spmv-verify` interleaving explorer, where dropping the fallback
//! is proven to strand items.
//!
//! Output equality is by construction, not by scheduling: items write
//! disjoint outputs exactly once (the planner proves it), so *which*
//! worker runs an item cannot change a single bit of the result.

use crate::scope::num_threads;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Execute `body(scratch, item)` for every item id in every queue of
/// `queues`, claiming shard-locally first and cross-shard (ring order)
/// as fallback. Each worker carries a private scratch built by `init`,
/// with the same reinitialise-then-use contract as
/// [`crate::fused::fused_for_each_scratch`].
///
/// When `do_touch` is set, `touch(shard)` runs exactly once per shard
/// index, **before any item of any shard runs** (a barrier separates
/// the touch phase from the drain phase); shards are dealt round-robin
/// over the participating workers. Executors use it for first-touch placement: zeroing the
/// shard's output rows and streaming its `x` working set from the
/// thread that will own them, so pages fault in near their consumer.
/// The barrier is why this is safe to combine with write-once outputs:
/// every touch-zero happens-before every real write.
///
/// At most `workers` threads participate (`0` means [`num_threads`]);
/// with one effective worker everything runs inline on the caller in
/// deterministic shard-then-queue order, and the result is bit-for-bit
/// identical to any parallel schedule because items write disjoint
/// outputs exactly once.
pub fn sharded_for_each_scratch<S, I, T, F>(
    workers: usize,
    queues: &[Vec<u32>],
    do_touch: bool,
    touch: T,
    init: I,
    body: F,
) where
    I: Fn() -> S + Sync,
    T: Fn(usize) + Sync,
    F: Fn(&mut S, u32) + Sync,
{
    let n_shards = queues.len();
    let total: usize = queues.iter().map(Vec::len).sum();
    let workers = if workers == 0 {
        num_threads()
    } else {
        workers.min(num_threads())
    }
    .min(total);
    if workers <= 1 {
        if do_touch {
            for s in 0..n_shards {
                touch(s);
            }
        }
        let mut scratch = init();
        for queue in queues {
            for &item in queue {
                body(&mut scratch, item);
            }
        }
        return;
    }
    let cursors: Vec<AtomicUsize> = (0..n_shards).map(|_| AtomicUsize::new(0)).collect();
    let barrier = Barrier::new(workers);
    std::thread::scope(|scope| {
        for role in 0..workers {
            let cursors = &cursors;
            let barrier = &barrier;
            let touch = &touch;
            let init = &init;
            let body = &body;
            scope.spawn(move || {
                if do_touch {
                    // Shards are dealt round-robin over roles
                    // (s % workers == role), covering each exactly once;
                    // the barrier orders all touches before all drains.
                    let mut s = role;
                    while s < n_shards {
                        touch(s);
                        s += workers;
                    }
                    barrier.wait();
                }
                let mut scratch = init();
                let home = role % n_shards;
                for d in 0..n_shards {
                    let s = (home + d) % n_shards;
                    let queue = &queues[s];
                    loop {
                        let i = cursors[s].fetch_add(1, Ordering::Relaxed);
                        if i >= queue.len() {
                            break;
                        }
                        body(&mut scratch, queue[i]);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn queues_of(sizes: &[usize]) -> (Vec<Vec<u32>>, usize) {
        let mut next = 0u32;
        let queues = sizes
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|_| {
                        let id = next;
                        next += 1;
                        id
                    })
                    .collect()
            })
            .collect();
        (queues, next as usize)
    }

    fn assert_each_item_once(workers: usize, sizes: &[usize]) {
        let (queues, total) = queues_of(sizes);
        let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        sharded_for_each_scratch(
            workers,
            &queues,
            false,
            |_| {},
            || (),
            |_, item| {
                hits[item as usize].fetch_add(1, Ordering::Relaxed);
            },
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "workers = {workers}, shards = {sizes:?}: item {i} ran wrong number of times"
            );
        }
    }

    #[test]
    fn every_item_runs_exactly_once_across_shard_shapes() {
        for workers in [1, 2, 3, 7] {
            assert_each_item_once(workers, &[500, 500]);
            assert_each_item_once(workers, &[1000, 1, 0, 300]); // one-item and empty shards
            assert_each_item_once(workers, &[0, 0, 0]);
            assert_each_item_once(workers, &[64; 9]); // more shards than workers
            assert_each_item_once(workers, &[2000]); // single shard degenerates to fused
        }
    }

    #[test]
    fn zero_items_runs_nothing() {
        sharded_for_each_scratch::<(), _, _, _>(
            4,
            &[vec![], vec![]],
            false,
            |_| {},
            || (),
            |_, _| panic!("no items, no calls"),
        );
    }

    #[test]
    fn touch_runs_once_per_shard_before_any_item() {
        for workers in [1, 2, 5] {
            let (queues, _) = queues_of(&[100, 1, 0, 100]);
            let touched: Vec<AtomicUsize> =
                (0..queues.len()).map(|_| AtomicUsize::new(0)).collect();
            let any_item_ran = AtomicBool::new(false);
            let touch_after_item = AtomicBool::new(false);
            sharded_for_each_scratch(
                workers,
                &queues,
                true,
                |s| {
                    if any_item_ran.load(Ordering::SeqCst) {
                        touch_after_item.store(true, Ordering::SeqCst);
                    }
                    touched[s].fetch_add(1, Ordering::SeqCst);
                },
                || (),
                |_, _| {
                    any_item_ran.store(true, Ordering::SeqCst);
                },
            );
            for (s, t) in touched.iter().enumerate() {
                assert_eq!(
                    t.load(Ordering::SeqCst),
                    1,
                    "workers = {workers}: shard {s} touched wrong number of times"
                );
            }
            assert!(
                !touch_after_item.load(Ordering::SeqCst),
                "workers = {workers}: a touch ran after an item — barrier broken"
            );
        }
    }

    #[test]
    fn disjoint_writes_compose_bit_identical_results() {
        // Items own disjoint output slots; any schedule must produce the
        // same buffer. Compare a parallel run against the sequential one.
        let (queues, total) = queues_of(&[700, 300, 450]);
        let run = |workers: usize| {
            let mut out = vec![0u64; total];
            {
                let slots: Vec<AtomicUsize> = out
                    .iter_mut()
                    .map(|x| {
                        // AtomicUsize per slot keeps the test in safe code.
                        AtomicUsize::new(*x as usize)
                    })
                    .collect();
                sharded_for_each_scratch(
                    workers,
                    &queues,
                    false,
                    |_| {},
                    || (),
                    |_, item| {
                        let i = item as usize;
                        slots[i].store(i * i + 1, Ordering::Relaxed);
                    },
                );
                for (x, slot) in out.iter_mut().zip(&slots) {
                    *x = slot.load(Ordering::Relaxed) as u64;
                }
            }
            out
        };
        let sequential = run(1);
        for workers in [2, 3, 7] {
            assert_eq!(run(workers), sequential, "workers = {workers}");
        }
    }

    #[test]
    fn scratch_is_private_per_worker() {
        let (queues, total) = queues_of(&[800, 800]);
        for workers in [1, 2, 4] {
            let inits = AtomicUsize::new(0);
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            sharded_for_each_scratch(
                workers,
                &queues,
                false,
                |_| {},
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u32>::new()
                },
                |scratch, item| {
                    scratch.clear();
                    scratch.push(item);
                    hits[scratch[0] as usize].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            let built = inits.load(Ordering::Relaxed);
            let cap = workers.min(num_threads()).max(1);
            assert!(
                (1..=cap).contains(&built),
                "workers = {workers} built {built} scratches (cap {cap})"
            );
        }
    }
}
