//! Barrier-stepped execution: a fixed worker team marches through a
//! sequence of steps, separated by barriers.
//!
//! The fused ([`crate::fused`]) and sharded ([`crate::shard`])
//! dispatchers run *independent* items — any interleaving is fine, so
//! one scope with free-running workers suffices. Dependency-carrying
//! work (level-set scheduled triangular solves) is different: step
//! `s + 1` may read what step `s` wrote, so every worker must finish
//! step `s` before any worker starts `s + 1`. Spawning one scope per
//! step would give that ordering at the cost of a spawn/join per level
//! — hundreds for deep triangular factors. Instead, this dispatcher
//! spawns the team once and separates steps with a [`Barrier`], the
//! same device the sharded executor uses to order first-touch before
//! draining.
//!
//! `Barrier::wait` gives the needed happens-before edge: every write
//! made in step `s` (by any worker) is visible to every worker in step
//! `s + 1`, so the step bodies can use plain (non-atomic) disjoint
//! writes, exactly like the SpMV kernels.
//!
//! Steps marked serial run on worker 0 only — the others proceed
//! straight to the barrier. The solve planner uses this for merged
//! runs of tiny levels, where a barrier per level would cost more than
//! the exposed parallelism is worth.

use std::sync::Barrier;

/// March `workers` workers through `parallel.len()` steps in order,
/// with a barrier after every step. For each step `s`:
///
/// * if `parallel[s]`, every worker calls `body(s, role, workers)`
///   with its own `role` in `0..workers` — the body partitions the
///   step's work by role;
/// * otherwise only role 0 calls `body(s, 0, workers)` — a serial
///   step; the rest wait at the barrier.
///
/// Exactly `workers` roles participate (no clamping to the machine's
/// core count: role-indexed partitions computed at plan time must all
/// run, and oversubscription is merely slow, not wrong). `workers <= 1`
/// runs every step inline on the caller with `role = 0` — the
/// deterministic reference order.
///
/// The body sees steps in strictly increasing order, and all writes of
/// step `s` happen-before all reads of step `s + 1` — the property the
/// dependency-order prover's per-step schedule relies on.
pub fn stepped_for_each<F>(workers: usize, parallel: &[bool], body: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    if workers <= 1 {
        for step in 0..parallel.len() {
            body(step, 0, 1);
        }
        return;
    }
    let barrier = Barrier::new(workers);
    std::thread::scope(|scope| {
        for role in 0..workers {
            let barrier = &barrier;
            let body = &body;
            scope.spawn(move || {
                for (step, &par) in parallel.iter().enumerate() {
                    if par {
                        body(step, role, workers);
                    } else if role == 0 {
                        body(step, 0, workers);
                    }
                    barrier.wait();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn steps_run_in_order_with_no_overlap() {
        // Every worker bumps the step counter; a worker observing a
        // counter from a *different* step would prove barrier leakage.
        for workers in [1, 2, 4, 7] {
            let parallel = vec![true; 6];
            let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
            let out_of_step = AtomicUsize::new(0);
            stepped_for_each(workers, &parallel, |step, _role, w| {
                assert_eq!(w, workers.max(1));
                for earlier in hits.iter().take(step) {
                    if earlier.load(Ordering::SeqCst) != workers.max(1) {
                        out_of_step.fetch_add(1, Ordering::SeqCst);
                    }
                }
                hits[step].fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(out_of_step.load(Ordering::SeqCst), 0, "workers={workers}");
            for (s, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    workers.max(1),
                    "workers={workers}, step {s}"
                );
            }
        }
    }

    #[test]
    fn serial_steps_run_on_role_zero_only() {
        for workers in [1, 3, 5] {
            let parallel = [true, false, true, false];
            let serial_calls = AtomicUsize::new(0);
            stepped_for_each(workers, &parallel, |step, role, _w| {
                if !parallel[step] {
                    assert_eq!(role, 0, "serial step ran on role {role}");
                    serial_calls.fetch_add(1, Ordering::SeqCst);
                }
            });
            assert_eq!(serial_calls.load(Ordering::SeqCst), 2, "workers={workers}");
        }
    }

    #[test]
    fn cross_step_writes_are_visible() {
        // Step 0 writes disjoint slots; step 1 reads them all. The
        // barrier must make every write visible to every role.
        for workers in [2, 4] {
            let n = 64usize;
            let slots: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let sum = AtomicUsize::new(0);
            stepped_for_each(workers, &[true, true], |step, role, w| {
                if step == 0 {
                    let mut i = role;
                    while i < n {
                        slots[i].store(i + 1, Ordering::Relaxed);
                        i += w;
                    }
                } else if role == 0 {
                    let s: usize = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                    sum.store(s, Ordering::Relaxed);
                }
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                n * (n + 1) / 2,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn zero_steps_is_a_no_op() {
        stepped_for_each(4, &[], |_, _, _| panic!("no steps, no calls"));
    }
}
