//! Criterion bench for the plan/execute split: repeated SpMV through one
//! compiled [`SpmvPlan`] versus re-planning (feature extraction +
//! strategy selection + binning + row-list expansion) on every apply —
//! the cost profile of an iterative solver with and without the split.
//!
//! Acceptance target: over a ≥10-iteration solve, the planned loop beats
//! the replanning loop by ≥2×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::CsrMatrix;

const ITERS: usize = 10;

fn matrix() -> CsrMatrix<f64> {
    gen::mixture(
        30_000,
        30_000,
        &[
            RowRegime::new(1, 4, 0.8),
            RowRegime::new(40, 120, 0.15),
            RowRegime::new(400, 900, 0.05),
        ],
        true,
        17,
    )
}

fn auto() -> AutoSpmv {
    AutoSpmv::with_tuner(Tuner::with_config(
        GpuDevice::kaveri(),
        TunerConfig {
            granularities: vec![100, 1_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: false,
        },
    ))
}

fn bench_plan_reuse(c: &mut Criterion) {
    let a = matrix();
    let v: Vec<f64> = (0..a.n_cols()).map(|i| (i % 9) as f64).collect();
    let auto = auto();
    let mut group = c.benchmark_group("plan_reuse");
    group.sample_size(10);

    // Plan once outside the timed region, execute ITERS times inside it —
    // the intended hot path (no binning, no allocation per call).
    let plan = auto.plan_native(&a);
    group.bench_with_input(BenchmarkId::new("planned", ITERS), &ITERS, |b, &iters| {
        let mut u = vec![0.0f64; a.n_rows()];
        b.iter(|| {
            for _ in 0..iters {
                plan.execute(&a, &v, &mut u).unwrap();
            }
        })
    });

    // The naive loop: full select → bin → expand on every apply.
    group.bench_with_input(BenchmarkId::new("replanned", ITERS), &ITERS, |b, &iters| {
        let mut u = vec![0.0f64; a.n_rows()];
        b.iter(|| {
            for _ in 0..iters {
                let throwaway = auto.plan_native(&a);
                throwaway.execute(&a, &v, &mut u).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plan_reuse);
criterion_main!(benches);
