//! Minimal row-major dense matrix, used as the correctness oracle in tests
//! and tiny examples. Not a performance structure.

use crate::scalar::Scalar;

/// A row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// An all-zero `n_rows × n_cols` matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![T::ZERO; n_rows * n_cols],
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[i * self.n_cols + j]
    }

    /// Mutable element at `(i, j)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut T {
        &mut self.data[i * self.n_cols + j]
    }

    /// Dense matrix-vector product, the ultimate reference for SpMV tests.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.n_cols);
        (0..self.n_rows)
            .map(|i| {
                let mut s = T::ZERO;
                for (j, &vj) in v.iter().enumerate() {
                    s = self.get(i, j).mul_add_(vj, s);
                }
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_small() {
        let mut d = DenseMatrix::zeros(2, 3);
        *d.get_mut(0, 0) = 1.0;
        *d.get_mut(0, 2) = 2.0;
        *d.get_mut(1, 1) = 3.0;
        let u = d.matvec(&[1.0, 10.0, 100.0]);
        assert_eq!(u, vec![201.0, 30.0]);
    }

    #[test]
    fn dense_matches_csr_reference() {
        let a = crate::csr::figure1_example::<f64>();
        let v = vec![0.5, -1.0, 2.0, 4.0];
        let via_dense = a.to_dense().matvec(&v);
        let via_csr = a.spmv_seq_alloc(&v).unwrap();
        assert_eq!(via_dense, via_csr);
    }
}
