//! Property tests of the decision-tree learner: it must never panic on
//! odd-but-valid datasets, always emit valid classes, and behave sanely
//! under pruning and weighting. Randomised datasets come from a seeded
//! generator for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_ml::io::{read_ruleset, write_ruleset};
use spmv_ml::{AttrSpec, Dataset, DecisionTree, RuleSet, TreeConfig};

const CASES: usize = 96;

/// 2 numeric attrs + 1 categorical(3), 2–4 classes, 1–120 rows.
fn random_dataset(rng: &mut StdRng) -> Dataset {
    let n_classes = rng.gen_range(2usize..5);
    let n_rows = rng.gen_range(1usize..120);
    let mut d = Dataset::new(
        vec![
            AttrSpec::numeric("x"),
            AttrSpec::numeric("y"),
            AttrSpec::categorical("c", 3),
        ],
        (0..n_classes).map(|i| format!("k{i}")).collect(),
    );
    for _ in 0..n_rows {
        let x = rng.gen_range(-100.0f64..100.0);
        let y = rng.gen_range(-1.0f64..1.0);
        let c = rng.gen_range(0usize..3);
        let label = rng.gen_range(0..n_classes);
        d.push(&[x, y, c as f64], label);
    }
    d
}

#[test]
fn fit_and_predict_never_panic_and_stay_in_range() {
    let mut rng = StdRng::seed_from_u64(0x3101);
    for _ in 0..CASES {
        let d = random_dataset(&mut rng);
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        for i in 0..d.len() {
            let p = tree.predict(d.row(i));
            assert!(p < d.n_classes());
        }
        // Off-distribution probes must also be classified.
        for probe in [[-1e9, 0.0, 0.0], [1e9, -5.0, 2.0], [0.0, 0.0, 1.0]] {
            assert!(tree.predict(&probe) < d.n_classes());
        }
    }
}

#[test]
fn unpruned_tree_fits_training_data_at_least_as_well() {
    let mut rng = StdRng::seed_from_u64(0x3102);
    for _ in 0..CASES {
        let d = random_dataset(&mut rng);
        let pruned = DecisionTree::fit(&d, &TreeConfig::default());
        let raw = DecisionTree::fit(
            &d,
            &TreeConfig {
                prune: false,
                ..Default::default()
            },
        );
        let err = |t: &DecisionTree| {
            (0..d.len())
                .filter(|&i| t.predict(d.row(i)) != d.label(i))
                .count()
        };
        assert!(err(&raw) <= err(&pruned));
        assert!(pruned.n_nodes() <= raw.n_nodes());
    }
}

#[test]
fn ruleset_roundtrips_through_text() {
    let mut rng = StdRng::seed_from_u64(0x3103);
    for _ in 0..CASES {
        let d = random_dataset(&mut rng);
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        let rs = RuleSet::from_tree(&tree, &d, 0.25);
        let mut buf = Vec::new();
        write_ruleset(&rs, &mut buf).unwrap();
        let rs2 = read_ruleset(&buf[..]).unwrap();
        for i in 0..d.len() {
            assert_eq!(rs.predict(d.row(i)), rs2.predict(d.row(i)));
        }
    }
}

#[test]
fn constant_labels_yield_a_single_leaf() {
    let mut rng = StdRng::seed_from_u64(0x3104);
    for _ in 0..CASES {
        let rows = rng.gen_range(1usize..60);
        let label = rng.gen_range(0usize..3);
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x")],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for i in 0..rows {
            d.push(&[i as f64], label);
        }
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[1e6]), label);
    }
}

#[test]
fn duplicating_examples_does_not_change_predictions() {
    // Doubling every example (same weights) is an entropy no-op.
    let mut rng = StdRng::seed_from_u64(0x3105);
    for _ in 0..CASES {
        let d = random_dataset(&mut rng);
        let mut doubled = Dataset::new(d.attrs().to_vec(), d.class_names().to_vec());
        for i in 0..d.len() {
            doubled.push(d.row(i), d.label(i));
            doubled.push(d.row(i), d.label(i));
        }
        let cfg = TreeConfig {
            prune: false,
            min_split: 1.0,
            ..Default::default()
        };
        let t1 = DecisionTree::fit(&d, &cfg);
        let t2 = DecisionTree::fit(&doubled, &cfg);
        for i in 0..d.len() {
            assert_eq!(t1.predict(d.row(i)), t2.predict(d.row(i)), "row {i}");
        }
    }
}
