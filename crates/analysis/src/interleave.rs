//! Exhaustive-interleaving model checker (loom-style, std-only).
//!
//! The real `spmv-parallel` primitives run on OS threads, where a racy
//! interleaving may only surface once in a million runs. This module
//! takes the opposite approach: a concurrent protocol is written as a
//! small deterministic state machine ([`Model`]) whose every thread
//! advances in explicit atomic steps, and [`explore`] enumerates *every*
//! schedule with a depth-first search over the state graph (deduplicated
//! by state equality, so diamonds are visited once).
//!
//! Three verdicts matter:
//!
//! * a state where [`Model::violation`] fires (e.g. a double write) is
//!   reported with the schedule that reached it;
//! * a state where no thread is runnable but the model is not
//!   [`Model::done`] is a **deadlock** — this is exactly how a lost
//!   wakeup manifests (a waiter asleep on a condition variable nobody
//!   will ever signal again);
//! * if every reachable state is clean and terminal states are all
//!   `done`, the protocol passes for this model size.
//!
//! Exhaustiveness is over the model, not the silicon: the models in
//! [`crate::models`] encode the scope/pool protocols at small N
//! (2–3 threads), which is where these protocol bugs already show up.

use std::collections::HashSet;
use std::hash::Hash;

/// A concurrent protocol as an explorable state machine.
///
/// `Clone + Eq + Hash` make the state graph explorable: the explorer
/// clones a state to branch on each runnable thread and hashes states to
/// avoid revisiting.
pub trait Model: Clone + Eq + Hash {
    /// Number of threads in the model (thread ids are `0..n_threads()`).
    fn n_threads(&self) -> usize;

    /// Can thread `t` take a step right now? Blocked threads (waiting on
    /// a mutex or condition variable) and finished threads return false.
    fn runnable(&self, t: usize) -> bool;

    /// Advance thread `t` by one atomic step. Only called when
    /// `runnable(t)` is true.
    fn step(&mut self, t: usize);

    /// Has the whole protocol completed successfully?
    fn done(&self) -> bool;

    /// A safety violation visible in this state, if any.
    fn violation(&self) -> Option<String>;
}

/// Result of exhaustively exploring a [`Model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every reachable schedule terminates cleanly.
    Pass {
        /// Number of distinct states visited.
        states: usize,
    },
    /// Some schedule reaches a state with no runnable thread that is not
    /// `done` — a deadlock or lost wakeup.
    Deadlock {
        /// The thread schedule (sequence of thread ids) reaching it.
        trace: Vec<usize>,
    },
    /// Some schedule reaches a state whose `violation` fires.
    Violation {
        /// The thread schedule reaching it.
        trace: Vec<usize>,
        /// The model's description of what went wrong.
        message: String,
    },
    /// The state budget ran out before the graph was exhausted; no
    /// verdict. Raise `max_states` or shrink the model.
    Truncated {
        /// States visited before giving up.
        states: usize,
    },
}

impl Verdict {
    /// True only for [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Pass { states } => write!(f, "pass ({states} states)"),
            Verdict::Deadlock { trace } => {
                write!(f, "deadlock/lost-wakeup via schedule {trace:?}")
            }
            Verdict::Violation { trace, message } => {
                write!(f, "violation via schedule {trace:?}: {message}")
            }
            Verdict::Truncated { states } => {
                write!(f, "inconclusive: state budget exhausted at {states}")
            }
        }
    }
}

/// Exhaustively explore every interleaving of `initial`, visiting at
/// most `max_states` distinct states. Depth-first with a visited set;
/// the first bad state found is reported with its schedule.
pub fn explore<M: Model>(initial: M, max_states: usize) -> Verdict {
    let mut visited: HashSet<M> = HashSet::new();
    let mut stack: Vec<(M, Vec<usize>)> = vec![(initial, Vec::new())];
    while let Some((state, trace)) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if visited.len() > max_states {
            return Verdict::Truncated {
                states: visited.len(),
            };
        }
        if let Some(message) = state.violation() {
            return Verdict::Violation { trace, message };
        }
        let runnable: Vec<usize> = (0..state.n_threads())
            .filter(|&t| state.runnable(t))
            .collect();
        if runnable.is_empty() {
            if state.done() {
                continue;
            }
            return Verdict::Deadlock { trace };
        }
        for t in runnable {
            let mut next = state.clone();
            next.step(t);
            if !visited.contains(&next) {
                let mut next_trace = trace.clone();
                next_trace.push(t);
                stack.push((next, next_trace));
            }
        }
    }
    Verdict::Pass {
        states: visited.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter in two non-atomic steps
    /// (read, then write) — the textbook lost update.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct LostUpdate {
        counter: u8,
        pc: [u8; 2],
        local: [u8; 2],
    }

    impl Model for LostUpdate {
        fn n_threads(&self) -> usize {
            2
        }
        fn runnable(&self, t: usize) -> bool {
            self.pc[t] < 2
        }
        fn step(&mut self, t: usize) {
            match self.pc[t] {
                0 => self.local[t] = self.counter,
                1 => self.counter = self.local[t] + 1,
                _ => unreachable!(),
            }
            self.pc[t] += 1;
        }
        fn done(&self) -> bool {
            self.pc == [2, 2]
        }
        fn violation(&self) -> Option<String> {
            if self.done() && self.counter != 2 {
                Some(format!("lost update: counter = {}", self.counter))
            } else {
                None
            }
        }
    }

    #[test]
    fn finds_the_lost_update() {
        let v = explore(
            LostUpdate {
                counter: 0,
                pc: [0, 0],
                local: [0, 0],
            },
            10_000,
        );
        assert!(matches!(v, Verdict::Violation { .. }), "got {v}");
    }

    /// Same protocol but the increment is one atomic step — must pass.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct AtomicUpdate {
        counter: u8,
        pc: [u8; 2],
    }

    impl Model for AtomicUpdate {
        fn n_threads(&self) -> usize {
            2
        }
        fn runnable(&self, t: usize) -> bool {
            self.pc[t] < 1
        }
        fn step(&mut self, t: usize) {
            self.counter += 1;
            self.pc[t] += 1;
        }
        fn done(&self) -> bool {
            self.pc == [1, 1]
        }
        fn violation(&self) -> Option<String> {
            if self.done() && self.counter != 2 {
                Some("impossible".into())
            } else {
                None
            }
        }
    }

    #[test]
    fn atomic_version_passes() {
        let v = explore(
            AtomicUpdate {
                counter: 0,
                pc: [0, 0],
            },
            10_000,
        );
        assert!(v.passed(), "got {v}");
    }

    #[test]
    fn truncation_is_reported() {
        let v = explore(
            LostUpdate {
                counter: 0,
                pc: [0, 0],
                local: [0, 0],
            },
            1,
        );
        assert!(matches!(v, Verdict::Truncated { .. }), "got {v}");
    }
}
