//! Trace builders: kernels record what each wavefront *does*; the engine
//! prices it.
//!
//! The hierarchy mirrors the OpenCL execution model the paper programs
//! against: a [`LaunchTracer`] holds work-groups, a [`WorkgroupTracer`]
//! holds wavefronts, and a [`WaveTracer`] accumulates the per-wavefront
//! event counts (vector ALU ops, memory transactions with coalescing
//! applied, dependent-load rounds, LDS traffic, barriers).

use crate::coalesce;
use crate::device::GpuDevice;
use crate::Region;

/// Accumulated cost events of one wavefront.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaveCost {
    /// Vector ALU instructions issued.
    pub alu: u64,
    /// Memory transactions (cache lines) after coalescing.
    pub transactions: u64,
    /// Dependent memory rounds (each exposes one latency).
    pub mem_rounds: u64,
    /// LDS operations.
    pub lds_ops: u64,
    /// Work-group barriers participated in.
    pub barriers: u64,
    /// Bytes read from global memory (line-granular).
    pub bytes_read: u64,
    /// Bytes written to global memory (line-granular).
    pub bytes_written: u64,
}

/// Cost events of one work-group.
#[derive(Clone, Debug, Default)]
pub struct WorkgroupCost {
    /// Per-wavefront costs.
    pub waves: Vec<WaveCost>,
    /// LDS bytes this work-group keeps resident (bounds occupancy).
    pub lds_bytes: usize,
}

/// Records one wavefront's events. Create through
/// [`WorkgroupTracer::wave`].
pub struct WaveTracer<'a> {
    device: &'a GpuDevice,
    cost: WaveCost,
    scratch: Vec<u64>,
    addr_buf: Vec<u64>,
}

impl<'a> WaveTracer<'a> {
    fn new(device: &'a GpuDevice) -> Self {
        Self {
            device,
            cost: WaveCost::default(),
            scratch: Vec::with_capacity(device.wavefront),
            addr_buf: Vec::with_capacity(device.wavefront),
        }
    }

    /// Issue `n` vector ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.cost.alu += n;
    }

    /// Begin recording lane addresses for one gather; push with
    /// [`lane_addr`](Self::lane_addr), finish with
    /// [`commit_read`](Self::commit_read)/[`commit_write`](Self::commit_write).
    #[inline]
    pub fn begin_access(&mut self) {
        self.addr_buf.clear();
    }

    /// Record that one active lane touches element `index` of `region`.
    #[inline]
    pub fn lane_addr(&mut self, region: Region, index: usize, elem_bytes: usize) {
        self.addr_buf.push(region.addr(index, elem_bytes));
    }

    /// Price the recorded lane addresses as one read instruction.
    pub fn commit_read(&mut self) {
        let tx = coalesce::transactions(&self.addr_buf, self.device.cache_line, &mut self.scratch);
        self.cost.transactions += tx as u64;
        self.cost.bytes_read += (tx * self.device.cache_line) as u64;
        self.cost.mem_rounds += 1;
        self.cost.alu += 1; // the load instruction itself
    }

    /// Price the recorded lane addresses as one write instruction.
    pub fn commit_write(&mut self) {
        let tx = coalesce::transactions(&self.addr_buf, self.device.cache_line, &mut self.scratch);
        self.cost.transactions += tx as u64;
        self.cost.bytes_written += (tx * self.device.cache_line) as u64;
        // Writes are fire-and-forget on GCN (no dependent latency round).
        self.cost.alu += 1;
    }

    /// One coalesced read of `lanes` consecutive `elem_bytes` elements
    /// starting at `region[start]` — the closed-form fast path for the
    /// (very common) contiguous case.
    pub fn read_contiguous(
        &mut self,
        region: Region,
        start: usize,
        lanes: usize,
        elem_bytes: usize,
    ) {
        if lanes == 0 {
            return;
        }
        let base = region.addr(start, elem_bytes);
        let tx = coalesce::transactions_contiguous(base, lanes, elem_bytes, self.device.cache_line);
        self.cost.transactions += tx as u64;
        self.cost.bytes_read += (tx * self.device.cache_line) as u64;
        self.cost.mem_rounds += 1;
        self.cost.alu += 1;
    }

    /// Contiguous-write counterpart of
    /// [`read_contiguous`](Self::read_contiguous).
    pub fn write_contiguous(
        &mut self,
        region: Region,
        start: usize,
        lanes: usize,
        elem_bytes: usize,
    ) {
        if lanes == 0 {
            return;
        }
        let base = region.addr(start, elem_bytes);
        let tx = coalesce::transactions_contiguous(base, lanes, elem_bytes, self.device.cache_line);
        self.cost.transactions += tx as u64;
        self.cost.bytes_written += (tx * self.device.cache_line) as u64;
        self.cost.alu += 1;
    }

    /// `n` LDS operations (reads or writes; GCN prices them alike at this
    /// granularity).
    #[inline]
    pub fn lds(&mut self, n: u64) {
        self.cost.lds_ops += n;
    }

    /// Participate in one work-group barrier.
    #[inline]
    pub fn barrier(&mut self) {
        self.cost.barriers += 1;
    }

    /// Finish the wavefront and return its cost.
    pub fn finish(self) -> WaveCost {
        self.cost
    }
}

/// Records one work-group. Create through [`LaunchTracer::workgroup`].
pub struct WorkgroupTracer<'a> {
    device: &'a GpuDevice,
    cost: WorkgroupCost,
}

impl<'a> WorkgroupTracer<'a> {
    fn new(device: &'a GpuDevice, lds_bytes: usize) -> Self {
        Self {
            device,
            cost: WorkgroupCost {
                waves: Vec::with_capacity(device.max_workgroup / device.wavefront),
                lds_bytes,
            },
        }
    }

    /// Start tracing one wavefront of this work-group.
    pub fn wave(&self) -> WaveTracer<'a> {
        WaveTracer::new(self.device)
    }

    /// Attach a finished wavefront.
    pub fn push_wave(&mut self, cost: WaveCost) {
        self.cost.waves.push(cost);
    }

    /// Finish the work-group.
    pub fn finish(self) -> WorkgroupCost {
        self.cost
    }
}

/// Accumulates the work-groups of one kernel launch.
pub struct LaunchTracer<'a> {
    device: &'a GpuDevice,
    workgroups: Vec<WorkgroupCost>,
}

impl<'a> LaunchTracer<'a> {
    /// Start tracing a launch on `device`.
    pub fn new(device: &'a GpuDevice) -> Self {
        Self {
            device,
            workgroups: Vec::new(),
        }
    }

    /// The device this launch runs on.
    pub fn device(&self) -> &'a GpuDevice {
        self.device
    }

    /// Start tracing a work-group that keeps `lds_bytes` of LDS resident.
    pub fn workgroup(&self, lds_bytes: usize) -> WorkgroupTracer<'a> {
        WorkgroupTracer::new(self.device, lds_bytes)
    }

    /// Attach a finished work-group.
    pub fn push_workgroup(&mut self, wg: WorkgroupCost) {
        self.workgroups.push(wg);
    }

    /// Attach many finished work-groups (used by parallel tracing).
    pub fn extend_workgroups(&mut self, wgs: impl IntoIterator<Item = WorkgroupCost>) {
        self.workgroups.extend(wgs);
    }

    /// Number of work-groups traced so far.
    pub fn n_workgroups(&self) -> usize {
        self.workgroups.len()
    }

    /// Hand the trace to the engine for pricing.
    pub fn into_parts(self) -> (&'a GpuDevice, Vec<WorkgroupCost>) {
        (self.device, self.workgroups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> GpuDevice {
        GpuDevice::kaveri()
    }

    #[test]
    fn gather_prices_coalescing() {
        let d = device();
        let lt = LaunchTracer::new(&d);
        let wg = lt.workgroup(0);
        let mut w = wg.wave();
        // 64 contiguous f32 lanes → 4 transactions.
        w.begin_access();
        for i in 0..64 {
            w.lane_addr(Region::Val, i, 4);
        }
        w.commit_read();
        let c = w.finish();
        assert_eq!(c.transactions, 4);
        assert_eq!(c.bytes_read, 4 * 64);
        assert_eq!(c.mem_rounds, 1);
    }

    #[test]
    fn scattered_gather_costs_more() {
        let d = device();
        let lt = LaunchTracer::new(&d);
        let wg = lt.workgroup(0);
        let mut w = wg.wave();
        w.begin_access();
        for i in 0..64 {
            w.lane_addr(Region::VecIn, i * 1000, 4);
        }
        w.commit_read();
        assert_eq!(w.finish().transactions, 64);
    }

    #[test]
    fn contiguous_fast_path_matches_gather() {
        let d = device();
        let lt = LaunchTracer::new(&d);
        let wg = lt.workgroup(0);
        let mut a = wg.wave();
        a.begin_access();
        for i in 100..164 {
            a.lane_addr(Region::ColIdx, i, 4);
        }
        a.commit_read();
        let mut b = wg.wave();
        b.read_contiguous(Region::ColIdx, 100, 64, 4);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn writes_do_not_add_latency_rounds() {
        let d = device();
        let lt = LaunchTracer::new(&d);
        let wg = lt.workgroup(0);
        let mut w = wg.wave();
        w.write_contiguous(Region::VecOut, 0, 64, 4);
        let c = w.finish();
        assert_eq!(c.mem_rounds, 0);
        assert!(c.bytes_written > 0);
        assert_eq!(c.bytes_read, 0);
    }

    #[test]
    fn empty_contiguous_access_is_free() {
        let d = device();
        let lt = LaunchTracer::new(&d);
        let wg = lt.workgroup(0);
        let mut w = wg.wave();
        w.read_contiguous(Region::Val, 0, 0, 4);
        assert_eq!(w.finish(), WaveCost::default());
    }

    #[test]
    fn launch_accumulates_workgroups() {
        let d = device();
        let mut lt = LaunchTracer::new(&d);
        for _ in 0..3 {
            let mut wg = lt.workgroup(1024);
            let mut w = wg.wave();
            w.alu(10);
            wg.push_wave(w.finish());
            lt.push_workgroup(wg.finish());
        }
        assert_eq!(lt.n_workgroups(), 3);
        let (_, wgs) = lt.into_parts();
        assert!(wgs
            .iter()
            .all(|wg| wg.lds_bytes == 1024 && wg.waves.len() == 1));
    }
}
