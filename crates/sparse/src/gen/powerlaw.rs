//! Power-law (scale-free) degree distributions: web/social-style graphs
//! where most rows are very short and a few are very long — the regime
//! where binning pays off most.

use super::{gen_value, sample_distinct_columns, seeded_rng, RowsBuilder};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// Generate an `n × n` adjacency-like matrix whose row degrees follow a
/// truncated discrete power law: `P(deg = d) ∝ d^(-alpha)` for
/// `d ∈ [min_deg, max_deg]`.
///
/// Sampling uses the inverse-CDF of the (continuous) Pareto distribution
/// rounded to integers, which is accurate enough for workload shaping.
pub fn powerlaw<T: Scalar>(
    n: usize,
    min_deg: usize,
    max_deg: usize,
    alpha: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(min_deg >= 1 && min_deg <= max_deg);
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    let mut rng = seeded_rng(seed);
    let mut b = RowsBuilder::with_capacity(n, n, n * min_deg * 2);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let (lo, hi) = (min_deg as f64, max_deg as f64 + 1.0);
    let a1 = 1.0 - alpha;
    let (lo_p, hi_p) = (lo.powf(a1), hi.powf(a1));
    for _ in 0..n {
        // Inverse CDF of truncated Pareto.
        let u: f64 = rng.gen();
        let x = (lo_p + u * (hi_p - lo_p)).powf(1.0 / a1);
        let deg = (x.floor() as usize).clamp(min_deg, max_deg).min(n);
        sample_distinct_columns(&mut rng, n, deg, &mut cols);
        vals.clear();
        vals.extend(cols.iter().map(|_| gen_value::<T>(&mut rng)));
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_within_bounds() {
        let a = powerlaw::<f64>(500, 1, 100, 2.2, 9);
        for i in 0..a.n_rows() {
            let d = a.row_nnz(i);
            assert!((1..=100).contains(&d));
        }
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let a = powerlaw::<f64>(5000, 1, 200, 2.0, 10);
        let short = (0..a.n_rows()).filter(|&i| a.row_nnz(i) <= 4).count();
        let long = (0..a.n_rows()).filter(|&i| a.row_nnz(i) >= 50).count();
        // Most rows are short, but a non-trivial tail of long rows exists.
        assert!(short > a.n_rows() / 2, "short = {short}");
        assert!(long > 0, "expected a heavy tail");
        assert!(short > 10 * long);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = powerlaw::<f32>(100, 1, 50, 2.5, 3);
        let b = powerlaw::<f32>(100, 1, 50, 2.5, 3);
        assert_eq!(a, b);
    }
}
