//! Native CPU SpMV kernels on the `spmv-parallel` substrate.
//!
//! These are real multithreaded implementations (not simulations) used by
//! the examples, the CPU side of the heterogeneous scheduling sketch
//! (§VI future work), and the Criterion microbenches. The two variants
//! mirror the load-balancing split the paper's binning addresses:
//! row-parallel (cheap, imbalanced) versus NNZ-balanced partitioning.

use crate::kernels::table::{self, BatchArgs, BatchKernelFn, KernelKey};
use crate::plan::{rhs_blocks, BinDispatch, BinPayload, ShardedTiles, Tile};
use spmv_parallel::{
    fused_for_each_scratch, fused_for_each_with, parallel_for, sharded_for_each_scratch,
};
use spmv_sparse::{CsrMatrix, DenseBlock, Scalar, SparseError};

/// Row-parallel SpMV: rows are distributed in fixed-size chunks. The CPU
/// analogue of `Kernel-Serial`.
pub fn spmv_row_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    check_dims(a, v, u)?;
    let out = SliceWriter::new(u);
    parallel_for(a.n_rows(), 256, |start, end| {
        for i in start..end {
            let (cols, vals) = a.row(i);
            let mut sum = T::ZERO;
            for (&c, &x) in cols.iter().zip(vals) {
                sum = x.mul_add_(v[c as usize], sum);
            }
            // SAFETY: `parallel_for` hands out disjoint row ranges and
            // joins before returning; `u` outlives the call.
            unsafe { out.write(i, sum) };
        }
    });
    Ok(())
}

/// NNZ-balanced SpMV: the row space is cut at (roughly) equal non-zero
/// counts via binary search on `rowPtr`, so one dense row cannot
/// serialise the loop. The CPU analogue of what binning buys the GPU.
///
/// Recomputes the cut positions every call. Repeated callers (iterative
/// solvers, benches) should compute [`nnz_balanced_cuts`] once per
/// pattern and call [`spmv_nnz_balanced_with_cuts`] — the compiled-plan
/// path does exactly that by freezing its cuts into the tile queue at
/// compile time.
pub fn spmv_nnz_balanced<T: Scalar>(
    a: &CsrMatrix<T>,
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    let parts = spmv_parallel::num_threads() * 4;
    let cuts = nnz_balanced_cuts(a, parts);
    spmv_nnz_balanced_with_cuts(a, &cuts, v, u)
}

/// [`spmv_nnz_balanced`] with the cut positions hoisted out: `cuts` must
/// come from [`nnz_balanced_cuts`] on the same pattern (monotone, first
/// 0, last `n_rows`), computed once and reused across value-only
/// updates.
pub fn spmv_nnz_balanced_with_cuts<T: Scalar>(
    a: &CsrMatrix<T>,
    cuts: &[usize],
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    check_dims(a, v, u)?;
    assert!(
        cuts.first() == Some(&0) && cuts.last() == Some(&a.n_rows()),
        "cuts must span [0, n_rows]"
    );
    let out = SliceWriter::new(u);
    parallel_for(cuts.len() - 1, 1, |p0, p1| {
        for p in p0..p1 {
            for i in cuts[p]..cuts[p + 1] {
                let (cols, vals) = a.row(i);
                let mut sum = T::ZERO;
                for (&c, &x) in cols.iter().zip(vals) {
                    sum = x.mul_add_(v[c as usize], sum);
                }
                // SAFETY: cut ranges are disjoint; see above.
                unsafe { out.write(i, sum) };
            }
        }
    });
    Ok(())
}

/// SpMV over an explicit row subset, rows distributed in fixed-size
/// chunks of the `rows` list. Backs [`KernelId::Serial`] on the native
/// CPU backend: cheap scheduling, no balancing — right for bins of
/// uniformly short rows.
///
/// [`KernelId::Serial`]: crate::kernels::KernelId::Serial
pub fn spmv_rows_chunked<T: Scalar>(
    a: &CsrMatrix<T>,
    rows: &[u32],
    grain: usize,
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    check_dims(a, v, u)?;
    let out = SliceWriter::new(u);
    parallel_for(rows.len(), grain.max(1), |start, end| {
        for &r in &rows[start..end] {
            let (cols, vals) = a.row(r as usize);
            let mut sum = T::ZERO;
            for (&c, &x) in cols.iter().zip(vals) {
                sum = x.mul_add_(v[c as usize], sum);
            }
            // SAFETY: each row id appears once in `rows`, so writes are
            // disjoint; `parallel_for` joins before returning.
            unsafe { out.write(r as usize, sum) };
        }
    });
    Ok(())
}

/// SpMV over an explicit row subset with NNZ-balanced partitioning: the
/// `rows` list is cut into `parts` spans of roughly equal non-zero count
/// in one O(|rows|) scan, so one heavy row cannot serialise the launch.
/// Backs the subvector/vector kernels on the native CPU backend.
pub fn spmv_rows_nnz_balanced<T: Scalar>(
    a: &CsrMatrix<T>,
    rows: &[u32],
    parts: usize,
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    check_dims(a, v, u)?;
    let cuts = rows_nnz_cuts(a, rows, parts);
    let out = SliceWriter::new(u);
    parallel_for(cuts.len() - 1, 1, |p0, p1| {
        for p in p0..p1 {
            for &r in &rows[cuts[p]..cuts[p + 1]] {
                let (cols, vals) = a.row(r as usize);
                let mut sum = T::ZERO;
                for (&c, &x) in cols.iter().zip(vals) {
                    sum = x.mul_add_(v[c as usize], sum);
                }
                // SAFETY: cut spans are disjoint; see above.
                unsafe { out.write(r as usize, sum) };
            }
        }
    });
    Ok(())
}

/// Execute a compiled plan's whole dispatch in **one** scoped parallel
/// region over its precompiled tile queue — the fused path behind
/// [`NativeCpuBackend::launch_plan`].
///
/// Per-bin launches pay one pool/scope barrier per bin; here workers
/// claim `(bin, range)` tiles from a single shared queue, so a thread
/// finishing one bin's tiles immediately steals the next bin's. CSR
/// tiles walk their span of the dispatch row list exactly like the
/// per-bin kernels (bit-identical per-row sums); packed tiles stream
/// their SELL chunk range; cache-blocked tiles walk the same row span
/// strip-by-strip with worker-private cursors and partial sums
/// (`blocked_rows_spmv` — bit-identical too, the strips only reorder
/// *when* entries are consumed across rows, never within one). Packed
/// value slabs are refreshed from `a` up front, single-threaded, so the
/// parallel region only ever takes read locks.
///
/// Write soundness: each row of the matrix appears in exactly one bin
/// (binning invariant, proven by `check_dispatch`), each bin's tiles
/// partition its work (proven by `check_payloads`), and a packed bin's
/// rows are the bin's rows (ditto) — so across the whole queue every
/// output index is written by exactly one tile.
///
/// `workers` caps the parallel region (`0` = pool default).
///
/// [`NativeCpuBackend::launch_plan`]: crate::exec::NativeCpuBackend
pub fn run_plan_fused<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tiles: &[Tile],
    workers: usize,
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    check_dims(a, v, u)?;
    assert_eq!(dispatch.len(), payloads.len(), "payload table misaligned");
    for p in payloads {
        if let BinPayload::Packed(packed) = p {
            packed.ensure_values(a);
        }
    }
    let out = SliceWriter::new(u);
    let kernels = resolve_tile_kernels(payloads);
    fused_for_each_scratch(
        workers,
        tiles.len(),
        BlockedScratch::<T>::default,
        |scratch, t| exec_tile(a, dispatch, payloads, &kernels, &tiles[t], v, out, scratch),
    );
    Ok(())
}

/// Resolve each bin's single-vector (`KB = 1`) table kernel once, before
/// the parallel region opens. `None` for the formats whose single-vector
/// tile body is bespoke (CSR row walk, packed chunk stream, cache-blocked
/// strips); the specialized families execute through the same registry
/// entries as the batched path, over a stride-1 output view.
fn resolve_tile_kernels<T: Scalar>(payloads: &[BinPayload<T>]) -> Vec<Option<BatchKernelFn<T>>> {
    payloads
        .iter()
        .map(|p| match p {
            BinPayload::DenseRun(_) | BinPayload::Banded(_) | BinPayload::RowRun(_) => {
                let key = KernelKey {
                    family: table::payload_family(p),
                    kb: 1,
                };
                Some(
                    table::lookup::<T>(key)
                        .unwrap_or_else(|| panic!("kernel table missing entry {key}")),
                )
            }
            BinPayload::Csr | BinPayload::Packed(_) | BinPayload::Blocked { .. } => None,
        })
        .collect()
}

/// Execute one tile of the queue — the shared per-item body of the flat
/// ([`run_plan_fused`]) and sharded ([`run_plan_sharded`]) executors.
/// Which worker runs a tile cannot change a bit of the result: the
/// per-row FMA chains below depend only on the tile, never on the
/// schedule.
#[allow(clippy::too_many_arguments)]
fn exec_tile<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    kernels: &[Option<BatchKernelFn<T>>],
    tile: &Tile,
    v: &[T],
    out: SliceWriter<T>,
    scratch: &mut BlockedScratch<T>,
) {
    let d = &dispatch[tile.bin];
    match &payloads[tile.bin] {
        BinPayload::Csr => {
            for &r in &d.rows[tile.start..tile.end] {
                let (cols, vals) = a.row(r as usize);
                let mut sum = T::ZERO;
                for (&c, &x) in cols.iter().zip(vals) {
                    sum = x.mul_add_(v[c as usize], sum);
                }
                // SAFETY: tiles of one bin cover disjoint spans of its
                // row list, bins own disjoint rows, and the enclosing
                // scope joins before `u` is observable again.
                unsafe { out.write(r as usize, sum) };
            }
        }
        BinPayload::Packed(packed) => {
            packed.with_slab(|slab| {
                packed.spmv_chunks(slab, tile.start, tile.end, v, |r, sum| {
                    // SAFETY: chunk ranges of one bin are disjoint and
                    // each packed row belongs to exactly one chunk;
                    // same join argument as above.
                    unsafe { out.write(r, sum) };
                });
            });
        }
        BinPayload::Blocked { strip_cols } => {
            blocked_rows_spmv(
                a,
                &d.rows[tile.start..tile.end],
                *strip_cols,
                v,
                &out,
                scratch,
            );
        }
        // Structure-specialized bins run their registry kernel at
        // `KB = 1` over a stride-1 view of `u`: one kernel body per
        // family serves both the single-vector and the batched path.
        // Write soundness is the CSR arm's argument — these payloads
        // tile the bin's row list, so tiles still own disjoint rows.
        BinPayload::DenseRun(_) | BinPayload::Banded(_) | BinPayload::RowRun(_) => {
            let args = BatchArgs {
                a,
                bin_rows: &d.rows,
                payload: &payloads[tile.bin],
                start: tile.start,
                end: tile.end,
                xs: v,
                x_stride: 1,
                c0: 0,
                out: out.as_block(),
            };
            (kernels[tile.bin].expect("specialized bin without a resolved kernel"))(&args);
        }
    }
}

/// Execute a sharded plan's tile queue through its per-shard sub-queues
/// — the topology-aware sibling of [`run_plan_fused`], behind
/// `NativeCpuBackend::launch_plan` for plans compiled with more than one
/// shard.
///
/// Workers drain their home shard's queue first and steal cross-shard in
/// ring order only when it is empty (`spmv_parallel::shard`). On the
/// **first** execution of a plan, a barrier-separated first-touch phase
/// runs before any tile: each shard's owner zeroes the shard's output
/// rows and streams its `x` column window, so those pages fault in near
/// the worker that will write/read them. The zeroes are dead stores
/// semantically — every shard row is overwritten by exactly one tile —
/// and the barrier orders them before all real writes, so results stay
/// bit-for-bit identical to [`run_plan_fused`] and to sequential
/// execution on every format tier.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_sharded<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tiles: &[Tile],
    shards: &ShardedTiles,
    workers: usize,
    v: &[T],
    u: &mut [T],
) -> Result<(), SparseError> {
    check_dims(a, v, u)?;
    assert_eq!(dispatch.len(), payloads.len(), "payload table misaligned");
    for p in payloads {
        if let BinPayload::Packed(packed) = p {
            packed.ensure_values(a);
        }
    }
    let out = SliceWriter::new(u);
    let kernels = resolve_tile_kernels(payloads);
    let do_touch = shards.begin_first_touch();
    sharded_for_each_scratch(
        workers,
        shards.queues(),
        do_touch,
        |s| first_touch_shard(shards, s, v, out),
        BlockedScratch::<T>::default,
        |scratch, t| {
            exec_tile(
                a,
                dispatch,
                payloads,
                &kernels,
                &tiles[t as usize],
                v,
                out,
                scratch,
            )
        },
    );
    Ok(())
}

/// First-touch one shard's working set: zero its output rows and stream
/// its `x` window. Placement only — the zeroes are overwritten by the
/// shard's tiles and the reads are discarded (kept live via
/// `black_box`).
fn first_touch_shard<T: Scalar>(shards: &ShardedTiles, s: usize, v: &[T], out: SliceWriter<T>) {
    for &r in &shards.shard_rows()[s] {
        // SAFETY: shard row sets are disjoint across shards (proven by
        // `check_shards`, enforced structurally by tile disjointness),
        // the touch phase is barrier-ordered before every tile write,
        // and the sharded scope joins before `u` is observable again.
        unsafe { out.write(r as usize, T::ZERO) };
    }
    let (lo, hi) = shards.x_ranges()[s];
    let window = &v[lo as usize..(hi as usize).min(v.len())];
    let mut acc = T::ZERO;
    for &x in window {
        acc += x;
    }
    std::hint::black_box(acc);
}

/// Worker-private cursor/partial-sum buffers for the cache-blocked
/// executor — reused across tiles so the hot path never allocates after
/// the first tile a worker claims.
struct BlockedScratch<T: Scalar> {
    cursors: Vec<usize>,
    sums: Vec<T>,
}

impl<T: Scalar> Default for BlockedScratch<T> {
    fn default() -> Self {
        Self {
            cursors: Vec::new(),
            sums: Vec::new(),
        }
    }
}

/// Cache-blocked SpMV over one tile's row span: the gather vector `v` is
/// walked in vertical strips of `strip_cols` columns, and every row's
/// cursor pauses at the strip boundary, carrying its partial sum to the
/// next strip. Within one strip the working set of `v` is at most
/// `strip_cols` elements, so scatter-heavy rows stop thrashing the cache
/// across the full width of `v`.
///
/// **Deterministic reduction order.** Each row's entries are consumed in
/// exact CSR storage position order: the strip loop only ever *pauses* a
/// row's cursor (`cols[j] < strip_end` fails) and later resumes it, never
/// reorders it, and the final strip ends at `n_cols`, so every cursor
/// reaches its row's end. The per-row FMA chain is therefore identical —
/// operation for operation — to the sequential CSR reference, making the
/// blocked path bit-for-bit regardless of strip width or column
/// sortedness (unsorted rows merely pause early and lose the locality
/// win, they cannot lose entries: a column below an earlier strip's end
/// still satisfies `cols[j] < strip_end` for every later strip).
fn blocked_rows_spmv<T: Scalar>(
    a: &CsrMatrix<T>,
    rows: &[u32],
    strip_cols: usize,
    v: &[T],
    out: &SliceWriter<T>,
    scratch: &mut BlockedScratch<T>,
) {
    let strip_cols = strip_cols.max(1);
    let n = rows.len();
    scratch.cursors.clear();
    scratch.cursors.resize(n, 0);
    scratch.sums.clear();
    scratch.sums.resize(n, T::ZERO);
    let n_cols = a.n_cols();
    let mut strip_end = strip_cols.min(n_cols);
    loop {
        for (i, &r) in rows.iter().enumerate() {
            let (cols, vals) = a.row(r as usize);
            let mut j = scratch.cursors[i];
            let mut sum = scratch.sums[i];
            while j < cols.len() && (cols[j] as usize) < strip_end {
                sum = vals[j].mul_add_(v[cols[j] as usize], sum);
                j += 1;
            }
            scratch.cursors[i] = j;
            scratch.sums[i] = sum;
        }
        if strip_end >= n_cols {
            break;
        }
        strip_end = (strip_end + strip_cols).min(n_cols);
    }
    for (i, &r) in rows.iter().enumerate() {
        // SAFETY: the same tile-disjointness argument as the CSR arm —
        // this tile owns `rows`, every strip of a row was accumulated
        // into this tile's scratch, and the fused scope joins before `u`
        // is observable again.
        unsafe { out.write(r as usize, scratch.sums[i]) };
    }
}

/// Batched (multi-RHS) plan execution: the SpMM analogue of
/// [`run_plan_fused`], behind `NativeCpuBackend::launch_plan_batch`.
///
/// The RHS width `K` is decomposed into register-blocked widths by
/// [`rhs_blocks`] (greedy 8/4/2/1), and the work queue becomes the cross
/// product *(tile, RHS block)*: each item runs one tile's rows against
/// one contiguous column block of `x`/`y`, gathering every matrix element
/// once and broadcasting it against the block's contiguous x-lanes. Items
/// are ordered heaviest first with weight `tile_nnz × block_width`, so
/// the LPT discipline of the single-vector queue extends to `K`.
///
/// Write soundness extends the single-vector argument by one axis: tiles
/// write disjoint **row** sets (proven by `check_dispatch` +
/// `check_payloads`), RHS blocks write disjoint **column** ranges
/// (`rhs_blocks` partitions `[0, K)`, proven by `check_payloads`), so
/// every `(row, column)` output element is written by exactly one item.
///
/// Sharded plans route the (tile × block) items through the same
/// per-shard queues as the single-vector path: an item inherits the
/// shard that owns its tile, so a shard's workers touch only their own
/// `y` rows (all `K` columns of them) and `x` window. Plans compiled
/// with `fused: false` have no tile queue; whole-bin tiles are
/// synthesized on the fly (unsharded — there is no compile-time
/// partition to honour) so both configurations run the same kernels
/// (bit-identical results either way). `workers` caps the parallel
/// region (`0` = pool default).
#[allow(clippy::too_many_arguments)]
pub fn run_plan_fused_batch<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tiles: &[Tile],
    tile_weights: &[usize],
    shards: Option<&ShardedTiles>,
    workers: usize,
    x: &DenseBlock<T>,
    y: &mut DenseBlock<T>,
) -> Result<(), SparseError> {
    check_block_dims(a, x, y)?;
    assert_eq!(dispatch.len(), payloads.len(), "payload table misaligned");
    let k = x.k();
    if k == 0 {
        return Ok(());
    }
    for p in payloads {
        if let BinPayload::Packed(packed) = p {
            packed.ensure_values(a);
        }
    }
    // Unfused plans carry no tile queue: synthesize one whole-span tile
    // per bin so both configurations execute the same kernels.
    if tiles.is_empty() {
        let mut synth_tiles = Vec::with_capacity(dispatch.len());
        let mut synth_weights = Vec::with_capacity(dispatch.len());
        for (bin, (d, p)) in dispatch.iter().zip(payloads).enumerate() {
            let span = match p {
                BinPayload::Packed(packed) => packed.n_chunks(),
                BinPayload::Csr
                | BinPayload::Blocked { .. }
                | BinPayload::DenseRun(_)
                | BinPayload::Banded(_)
                | BinPayload::RowRun(_) => d.rows.len(),
            };
            synth_tiles.push(Tile {
                bin,
                start: 0,
                end: span,
            });
            synth_weights.push(d.nnz);
        }
        return run_batch_queue(
            a,
            dispatch,
            payloads,
            &synth_tiles,
            &synth_weights,
            None,
            workers,
            x,
            y,
        );
    }
    run_batch_queue(
        a,
        dispatch,
        payloads,
        tiles,
        tile_weights,
        shards,
        workers,
        x,
        y,
    )
}

/// The shared (tile × RHS-block) queue executor behind
/// [`run_plan_fused_batch`]. Dimensions are already validated and packed
/// value slabs refreshed.
///
/// Sharded plans deal the LPT-sorted items onto per-shard queues — an
/// item belongs to the shard that owns its tile, so each shard queue
/// keeps the global LPT order among its own items — and drain them with
/// the same home-first/ring-steal protocol as the single-vector path.
#[allow(clippy::too_many_arguments)]
fn run_batch_queue<T: Scalar>(
    a: &CsrMatrix<T>,
    dispatch: &[BinDispatch],
    payloads: &[BinPayload<T>],
    tiles: &[Tile],
    tile_weights: &[usize],
    shards: Option<&ShardedTiles>,
    workers: usize,
    x: &DenseBlock<T>,
    y: &mut DenseBlock<T>,
) -> Result<(), SparseError> {
    debug_assert_eq!(tiles.len(), tile_weights.len(), "tile weights misaligned");
    let blocks = rhs_blocks(x.k());
    let k = x.k();
    let mut items: Vec<(u32, u32)> = Vec::with_capacity(tiles.len() * blocks.len());
    for bi in 0..blocks.len() {
        for ti in 0..tiles.len() {
            items.push((ti as u32, bi as u32));
        }
    }
    // LPT accounting for K: heaviest (tile, block) first. The sort is
    // stable, so equal weights keep the tile queue's own LPT order.
    items.sort_by_key(|&(ti, bi)| {
        let w = tile_weights.get(ti as usize).copied().unwrap_or(0);
        std::cmp::Reverse(w * blocks[bi as usize].1)
    });
    let xs = x.as_slice();
    let x_stride = x.stride();
    let out = BlockWriter::new(y);
    // Resolve every (bin, RHS-block) kernel from the generated table
    // before the parallel region: the hot loop below is one indirect
    // call per work item, no width `match` and no registry walk.
    // Cache-blocked bins resolve to the CSR family — the strip schedule
    // is a single-vector locality optimisation (the register-blocked
    // walk already amortises gathers across RHS lanes), and both walks
    // consume storage order, so the results are bit-identical either
    // way.
    let resolved: Vec<Vec<BatchKernelFn<T>>> = payloads
        .iter()
        .map(|p| {
            let family = table::payload_family(p);
            blocks
                .iter()
                .map(|&(_, width)| {
                    let key = KernelKey { family, kb: width };
                    table::lookup::<T>(key)
                        .unwrap_or_else(|| panic!("kernel table missing entry {key}"))
                })
                .collect()
        })
        .collect();
    let exec_item = |it: usize| {
        let (ti, bi) = items[it];
        let tile = &tiles[ti as usize];
        let (c0, _) = blocks[bi as usize];
        let d = &dispatch[tile.bin];
        let args = BatchArgs {
            a,
            bin_rows: &d.rows,
            payload: &payloads[tile.bin],
            start: tile.start,
            end: tile.end,
            xs,
            x_stride,
            c0,
            out,
        };
        resolved[tile.bin][bi as usize](&args);
    };
    match shards {
        None => fused_for_each_with(workers, items.len(), exec_item),
        Some(sh) => {
            // Deal items onto the shard that owns their tile. Pushing in
            // the globally sorted order keeps each shard queue LPT-sorted
            // among its own items.
            let mut owner = vec![0u32; tiles.len()];
            for (s, queue) in sh.queues().iter().enumerate() {
                for &t in queue {
                    owner[t as usize] = s as u32;
                }
            }
            let mut item_queues: Vec<Vec<u32>> = vec![Vec::new(); sh.n_shards()];
            for (it, &(ti, _)) in items.iter().enumerate() {
                item_queues[owner[ti as usize] as usize].push(it as u32);
            }
            let do_touch = sh.begin_first_touch();
            sharded_for_each_scratch(
                workers,
                &item_queues,
                do_touch,
                |s| first_touch_shard_block(sh, s, xs, x_stride, k, &out),
                || (),
                |_, it| exec_item(it as usize),
            );
        }
    }
    Ok(())
}

/// Batched analogue of `first_touch_shard`: zero every RHS column of the
/// shard's output rows and stream its `x` window (all `K` lanes of the
/// gathered column range) from a worker homed on the shard. The zeroes
/// are dead stores — every `(row, block)` cell is overwritten by exactly
/// one queue item — so results stay bit-identical.
fn first_touch_shard_block<T: Scalar>(
    shards: &ShardedTiles,
    s: usize,
    xs: &[T],
    x_stride: usize,
    k: usize,
    out: &BlockWriter<T>,
) {
    for &r in &shards.shard_rows()[s] {
        for c in 0..k {
            // SAFETY: shard write sets are disjoint (proven by
            // `check_shards`) and the touch phase is barrier-ordered
            // before every drain, so no other write can race this one.
            unsafe { out.write_block(r as usize, c, [T::ZERO; 1]) };
        }
    }
    let (lo, hi) = shards.x_ranges()[s];
    let start = (lo as usize * x_stride).min(xs.len());
    let end = (hi as usize * x_stride).min(xs.len());
    let mut acc = T::ZERO;
    for &v in &xs[start..end] {
        acc += v;
    }
    std::hint::black_box(acc);
}

/// Positions into `rows` that split it into `parts` spans of roughly
/// equal NNZ (monotone, first 0, last `rows.len()`). One linear scan;
/// the result is O(parts), never O(m).
pub fn rows_nnz_cuts<T: Scalar>(a: &CsrMatrix<T>, rows: &[u32], parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let total: usize = rows.iter().map(|&r| a.row_nnz(r as usize)).sum();
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0);
    let mut acc = 0usize;
    let mut next_part = 1usize;
    for (i, &r) in rows.iter().enumerate() {
        if next_part >= parts {
            break;
        }
        acc += a.row_nnz(r as usize);
        while next_part < parts && acc >= total * next_part / parts {
            cuts.push(i + 1);
            next_part += 1;
        }
    }
    while cuts.len() < parts {
        cuts.push(rows.len());
    }
    cuts.push(rows.len());
    cuts
}

/// Row boundaries that split the matrix into `parts` spans of roughly
/// equal NNZ (monotone, first 0, last `n_rows`).
pub fn nnz_balanced_cuts<T: Scalar>(a: &CsrMatrix<T>, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let nnz = a.nnz();
    let row_ptr = a.row_ptr();
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0);
    for p in 1..parts {
        let target = nnz * p / parts;
        let i = row_ptr.partition_point(|&x| x < target);
        cuts.push(i.min(a.n_rows()).max(*cuts.last().unwrap()));
    }
    cuts.push(a.n_rows());
    cuts
}

/// Dimension checks for the batched path: input rows match the column
/// count, output rows match the row count, and both blocks carry the
/// same number of vectors.
fn check_block_dims<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseBlock<T>,
    y: &DenseBlock<T>,
) -> Result<(), SparseError> {
    if x.n_rows() != a.n_cols() {
        return Err(SparseError::DimensionMismatch {
            context: "cpu spmm input block".into(),
            expected: a.n_cols(),
            got: x.n_rows(),
        });
    }
    if y.n_rows() != a.n_rows() {
        return Err(SparseError::DimensionMismatch {
            context: "cpu spmm output block".into(),
            expected: a.n_rows(),
            got: y.n_rows(),
        });
    }
    if y.k() != x.k() {
        return Err(SparseError::DimensionMismatch {
            context: "cpu spmm block width".into(),
            expected: x.k(),
            got: y.k(),
        });
    }
    Ok(())
}

fn check_dims<T: Scalar>(a: &CsrMatrix<T>, v: &[T], u: &[T]) -> Result<(), SparseError> {
    if v.len() != a.n_cols() {
        return Err(SparseError::DimensionMismatch {
            context: "cpu spmv input".into(),
            expected: a.n_cols(),
            got: v.len(),
        });
    }
    if u.len() != a.n_rows() {
        return Err(SparseError::DimensionMismatch {
            context: "cpu spmv output".into(),
            expected: a.n_rows(),
            got: u.len(),
        });
    }
    Ok(())
}

/// Raw shared-write window over an output slice. Debug builds assert
/// every write is in bounds; release builds compile the check out — the
/// static proof in `spmv_autotune::verify` (write-set disjointness +
/// in-bounds over a plan's whole dispatch table) is what justifies
/// removing it from the hot path.
#[derive(Clone, Copy)]
struct SliceWriter<T> {
    ptr: *mut T,
    #[cfg(debug_assertions)]
    len: usize,
}
// SAFETY: used only for disjoint-index writes inside a joined scope.
unsafe impl<T: Send> Send for SliceWriter<T> {}
// SAFETY: same restriction — disjoint indices, scope joins before use.
unsafe impl<T: Send> Sync for SliceWriter<T> {}

impl<T> SliceWriter<T> {
    fn new(u: &mut [T]) -> Self {
        Self {
            ptr: u.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: u.len(),
        }
    }

    /// # Safety
    ///
    /// `i` must be in bounds of the wrapped slice and no other thread may
    /// write index `i` concurrently.
    unsafe fn write(&self, i: usize, val: T) {
        #[cfg(debug_assertions)]
        debug_assert!(
            i < self.len,
            "SliceWriter: index {i} out of bounds ({})",
            self.len
        );
        // SAFETY: caller guarantees `i < len` and exclusive ownership of
        // index `i` for the duration of the enclosing parallel scope.
        unsafe { *self.ptr.add(i) = val };
    }

    /// Reinterpret the wrapped vector as a stride-1 single-column block,
    /// so the `KB = 1` table kernels can serve single-vector execution:
    /// `write_block(r, 0, [sum])` lands at index `r`, exactly where
    /// [`write`](Self::write) would put it.
    fn as_block(&self) -> BlockWriter<T> {
        BlockWriter {
            ptr: self.ptr,
            stride: 1,
            #[cfg(debug_assertions)]
            len: self.len,
        }
    }
}

/// Raw shared-write window over a row-major output block: the batched
/// counterpart of [`SliceWriter`]. Writes land at `row * stride + col`;
/// soundness comes from the (tile × RHS-block) disjointness proof — each
/// work item owns a disjoint (row set × column range) rectangle.
///
/// Public only because it appears in [`crate::kernels::table::BatchArgs`]
/// (so the registry's fn-pointer type is nameable outside the crate);
/// the fields and both constructors ([`BlockWriter::new`] /
/// `SliceWriter::as_block`) stay crate-private, so every instance is
/// born inside an executor that owns the disjointness argument —
/// external code can inspect the registry but never invoke a kernel.
#[derive(Clone, Copy)]
pub struct BlockWriter<T> {
    ptr: *mut T,
    stride: usize,
    #[cfg(debug_assertions)]
    len: usize,
}
// SAFETY: used only for disjoint (row, column) writes inside a joined
// fused scope.
unsafe impl<T: Send> Send for BlockWriter<T> {}
// SAFETY: same restriction — disjoint output rectangles, scope joins
// before the block is read.
unsafe impl<T: Send> Sync for BlockWriter<T> {}

impl<T: Scalar> BlockWriter<T> {
    fn new(y: &mut DenseBlock<T>) -> Self {
        Self {
            ptr: y.as_mut_slice().as_mut_ptr(),
            stride: y.stride(),
            #[cfg(debug_assertions)]
            len: y.as_slice().len(),
        }
    }

    /// Store `sums` at `(row, c0..c0 + KB)`.
    ///
    /// # Safety
    ///
    /// Every target index must be in bounds of the wrapped block and no
    /// other thread may write the same `(row, column)` concurrently.
    pub(crate) unsafe fn write_block<const KB: usize>(&self, row: usize, c0: usize, sums: [T; KB]) {
        let base = row * self.stride + c0;
        #[cfg(debug_assertions)]
        debug_assert!(
            base + KB <= self.len,
            "BlockWriter: rectangle ({row}, {c0}..{}) out of bounds",
            c0 + KB
        );
        for (kk, &s) in sums.iter().enumerate() {
            // SAFETY: caller guarantees the rectangle is in bounds and
            // exclusively owned for the duration of the fused scope.
            unsafe { *self.ptr.add(base + kk) = s };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::csr::figure1_example;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;
    use spmv_sparse::scalar::approx_eq;

    #[test]
    fn both_variants_match_reference() {
        let a = gen::mixture::<f64>(
            1000,
            1500,
            &[RowRegime::new(1, 4, 0.7), RowRegime::new(50, 200, 0.3)],
            true,
            5,
        );
        let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i * 13) % 17) as f64).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for f in [spmv_row_parallel::<f64>, spmv_nnz_balanced::<f64>] {
            let mut u = vec![0.0; a.n_rows()];
            f(&a, &v, &mut u).unwrap();
            for i in 0..a.n_rows() {
                assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "row {i}");
            }
        }
    }

    #[test]
    fn dimension_errors_are_reported() {
        let a = figure1_example::<f64>();
        let mut u = vec![0.0; 4];
        assert!(spmv_row_parallel(&a, &[1.0; 3], &mut u).is_err());
        assert!(spmv_nnz_balanced(&a, &[1.0; 4], &mut [0.0; 2]).is_err());
    }

    #[test]
    fn cuts_are_monotone_and_cover() {
        let a = gen::powerlaw::<f32>(5000, 1, 500, 2.0, 7);
        for parts in [1, 3, 8, 64] {
            let cuts = nnz_balanced_cuts(&a, parts);
            assert_eq!(*cuts.first().unwrap(), 0);
            assert_eq!(*cuts.last().unwrap(), a.n_rows());
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn cuts_balance_nnz() {
        let a = gen::random_uniform::<f64>(10_000, 10_000, 1, 9, 8);
        let cuts = nnz_balanced_cuts(&a, 8);
        let per_part: Vec<usize> = cuts.windows(2).map(|w| a.range_nnz(w[0], w[1])).collect();
        let avg = a.nnz() / 8;
        for (p, &n) in per_part.iter().enumerate() {
            assert!(
                n < avg * 2 + 100,
                "part {p} has {n} nnz (avg {avg}) — unbalanced"
            );
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = CsrMatrix::<f32>::zeros(0, 0);
        let mut u: Vec<f32> = vec![];
        spmv_row_parallel(&a, &[], &mut u).unwrap();
        spmv_nnz_balanced(&a, &[], &mut u).unwrap();
    }
}
