//! # spmv-gpusim
//!
//! A deterministic, trace-based simulator of a GCN-class integrated GPU —
//! the stand-in for the paper's AMD A10-7850K APU (8 compute units of
//! 4×16-lane SIMDs, 64-wide wavefronts, 256-work-item work-groups, LDS,
//! shared DDR3 memory).
//!
//! ## Why trace-based simulation reproduces the paper
//!
//! The performance differences between the paper's nine SpMV kernels are
//! architectural, not numerical:
//!
//! * **memory coalescing** — a wavefront's 64 lane addresses collapse
//!   into one memory transaction per distinct 64-byte line;
//! * **SIMD divergence** — a wavefront loops as long as its *longest*
//!   active row, wasting lanes on shorter rows;
//! * **LDS staging and reduction cost** — the subvector/vector kernels
//!   pay local-memory traffic and barriers to buy coalescing;
//! * **lane under-utilisation** — a 256-thread work-group on a 3-NNZ row
//!   does almost no useful work;
//! * **occupancy** — resident wavefronts hide memory latency;
//! * **the DRAM roofline** — SpMV is bandwidth-bound at the end of the
//!   day, so no kernel beats `bytes / bandwidth`.
//!
//! Kernels in `spmv-autotune` execute *functionally* in plain Rust (so
//! results are real and testable) while recording, per wavefront, exactly
//! these events through [`trace::WaveTracer`]. The [`engine`] then turns
//! the trace into cycles on a parameterised [`device::GpuDevice`].
//!
//! Everything is deterministic: the same kernel on the same matrix
//! produces bit-identical cost reports, which is what lets the auto-tuner
//! and the ML training pipeline run reproducibly in CI.

#![warn(missing_docs)]

pub mod coalesce;
pub mod device;
pub mod engine;
pub mod trace;

pub use device::GpuDevice;
pub use engine::LaunchStats;
pub use trace::{LaunchTracer, WaveTracer, WorkgroupTracer};

/// Synthetic address spaces ("regions") used by kernels to describe which
/// array a lane touches. Address = `region tag | byte offset`, giving each
/// array its own non-overlapping 1-TiB window so cross-array accesses never
/// alias into the same cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// The CSR `rowPtr` array.
    RowPtr,
    /// The CSR `colIdx` array.
    ColIdx,
    /// The CSR `val` array.
    Val,
    /// The dense input vector `v`.
    VecIn,
    /// The dense output vector `u`.
    VecOut,
    /// A bin's row-index list.
    BinRows,
    /// Anything else (scratch, block descriptors, …).
    Aux,
}

impl Region {
    #[inline]
    fn tag(self) -> u64 {
        let t = match self {
            Region::RowPtr => 1u64,
            Region::ColIdx => 2,
            Region::Val => 3,
            Region::VecIn => 4,
            Region::VecOut => 5,
            Region::BinRows => 6,
            Region::Aux => 7,
        };
        t << 40
    }

    /// Synthetic byte address of element `index` (each `elem_bytes` wide)
    /// in this region.
    #[inline]
    pub fn addr(self, index: usize, elem_bytes: usize) -> u64 {
        self.tag() + (index * elem_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_alias() {
        // Even the last byte of one region's 1-TiB window cannot share a
        // cache line with the next region's first element.
        let a = Region::ColIdx.addr((1usize << 38) - 1, 4);
        let b = Region::Val.addr(0, 4);
        assert!(a / 64 != b / 64);
    }

    #[test]
    fn addresses_scale_with_element_size() {
        assert_eq!(Region::Val.addr(10, 4) - Region::Val.addr(0, 4), 40);
        assert_eq!(Region::Val.addr(10, 8) - Region::Val.addr(0, 8), 80);
    }
}
