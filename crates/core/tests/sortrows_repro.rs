use spmv_autotune::prelude::*;
use spmv_sparse::CsrMatrix;

#[test]
fn sort_rows_after_compile_keeps_packed_correct() {
    // 8 rows, 2 entries each, columns deliberately unsorted within rows.
    let m = 8usize;
    let n = 8usize;
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for r in 0..m {
        // unsorted: larger column first
        cols.push(((r + 3) % n) as u32);
        cols.push((r % n) as u32);
        vals.push(10.0 + r as f64);
        vals.push(1.0 + r as f64);
        row_ptr.push(cols.len());
    }
    let mut a = CsrMatrix::<f64>::from_parts(m, n, row_ptr, cols, vals).unwrap();
    assert!(!a.rows_sorted());

    let strategy = Strategy::single_kernel(KernelId::Serial);
    let plan = SpmvPlan::compile(&a, strategy, Box::new(NativeCpuBackend::default()));
    assert!(plan.packed_bins() > 0, "need a packed bin for the repro");
    let plan = plan.verify(&a).unwrap();

    a.sort_rows();
    let v: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let mut u = vec![0.0f64; m];
    plan.execute(&a, &v, &mut u).unwrap();
    assert_eq!(u, reference, "packed payload went stale after sort_rows");
}
