//! The paper's Algorithm 2: coarse-grained binning over virtual rows.

use super::{Bins, MAX_BINS};
use spmv_parallel::parallel_map_collect;
use spmv_sparse::{CsrMatrix, Scalar};

/// Sequential coarse binning with granularity `u` (Algorithm 2).
///
/// Step 1 collects per-virtual-row workloads
/// (`wl[i] = rowPtr[min((i+1)·u, m)] − rowPtr[i·u]`); step 2 scatters the
/// virtual rows into bins by `binId = ⌊wl/u⌋`, clamping to the overflow
/// bin `MAX_BINS − 1`.
pub fn coarse_binning<T: Scalar>(a: &CsrMatrix<T>, u: usize) -> Bins {
    assert!(u >= 1, "granularity must be at least 1");
    let m = a.n_rows();
    let n_virtual = m.div_ceil(u);
    let row_ptr = a.row_ptr();
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); MAX_BINS];
    for i in 0..n_virtual {
        let start = i * u;
        let end = ((i + 1) * u).min(m);
        let wl = row_ptr[end] - row_ptr[start];
        let bin_id = (wl / u).min(MAX_BINS - 1);
        bins[bin_id].push(start as u32);
    }
    Bins { m, span: u, bins }
}

/// Parallel coarse binning: workloads and bin ids are computed with a
/// data-parallel pass, then scattered sequentially (the scatter is a tiny
/// fraction of the work at realistic granularities). Used by the
/// Figure 8 overhead study and by [`crate::framework::AutoSpmv`] on large
/// matrices.
pub fn coarse_binning_parallel<T: Scalar>(a: &CsrMatrix<T>, u: usize) -> Bins {
    assert!(u >= 1, "granularity must be at least 1");
    let m = a.n_rows();
    let n_virtual = m.div_ceil(u);
    let row_ptr = a.row_ptr();
    // Step 1+2a in parallel: per-virtual-row bin ids.
    let bin_ids: Vec<u32> = parallel_map_collect(n_virtual, 4096, |i| {
        let start = i * u;
        let end = ((i + 1) * u).min(m);
        let wl = row_ptr[end] - row_ptr[start];
        (wl / u).min(MAX_BINS - 1) as u32
    });
    // Step 2b: counting scatter (stable, deterministic).
    let mut counts = [0usize; MAX_BINS];
    for &b in &bin_ids {
        counts[b as usize] += 1;
    }
    let mut bins: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (i, &b) in bin_ids.iter().enumerate() {
        bins[b as usize].push((i * u) as u32);
    }
    Bins { m, span: u, bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;

    #[test]
    fn section2c_example_separates_short_and_medium_rows() {
        // The paper's motivating example: 10 rows, first 5 with 1 NNZ,
        // last 5 with 9 NNZ. With U = 5 the first virtual row (wl = 5)
        // goes to bin 1 and the second (wl = 45) to bin 9.
        let regimes = [RowRegime::new(1, 1, 0.5), RowRegime::new(9, 9, 0.5)];
        let a = gen::mixture::<f64>(10, 100, &regimes, false, 1);
        let bins = coarse_binning(&a, 5);
        assert!(bins.validate().is_ok());
        assert_eq!(bins.bins[1], vec![0]);
        assert_eq!(bins.bins[9], vec![5]);
        assert_eq!(bins.populated(), 2);
    }

    #[test]
    fn uniform_matrix_lands_in_one_bin() {
        let a = gen::random_uniform::<f64>(1000, 1000, 4, 4, 2);
        let bins = coarse_binning(&a, 10);
        // Every virtual row has wl = 40 → bin 4.
        assert_eq!(bins.populated(), 1);
        assert_eq!(bins.bins[4].len(), 100);
    }

    #[test]
    fn overflow_rows_go_to_the_last_bin() {
        // One row with far more NNZ than any bin boundary.
        let a = gen::mixture::<f64>(
            10,
            5000,
            &[RowRegime::new(1, 1, 0.9), RowRegime::new(2000, 2000, 0.1)],
            false,
            3,
        );
        let bins = coarse_binning(&a, 1);
        assert!(bins.validate().is_ok());
        assert!(!bins.bins[MAX_BINS - 1].is_empty());
    }

    #[test]
    fn granularity_one_is_per_row() {
        let a = gen::random_uniform::<f64>(64, 64, 1, 8, 4);
        let bins = coarse_binning(&a, 1);
        assert_eq!(bins.entries(), 64);
        assert_eq!(bins.span, 1);
        for i in 0..64 {
            let wl = a.row_nnz(i).min(MAX_BINS - 1);
            assert!(bins.bins[wl].contains(&(i as u32)), "row {i} (nnz {wl})");
        }
    }

    #[test]
    fn granularity_larger_than_m_gives_one_virtual_row() {
        let a = gen::random_uniform::<f64>(50, 50, 2, 2, 5);
        let bins = coarse_binning(&a, 1000);
        assert_eq!(bins.entries(), 1);
        assert!(bins.validate().is_ok());
        // wl = 100, binId = 100/1000 = 0.
        assert_eq!(bins.bins[0], vec![0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = gen::powerlaw::<f32>(5000, 1, 300, 2.1, 6);
        for u in [1usize, 7, 10, 100, 4096] {
            let s = coarse_binning(&a, u);
            let p = coarse_binning_parallel(&a, u);
            assert_eq!(s, p, "u = {u}");
        }
    }

    #[test]
    fn empty_matrix_produces_empty_bins() {
        let a = spmv_sparse::CsrMatrix::<f32>::zeros(0, 10);
        let bins = coarse_binning(&a, 10);
        assert_eq!(bins.populated(), 0);
        assert!(bins.validate().is_ok());
    }
}
