//! A persistent thread pool for `'static` jobs.
//!
//! The auto-tuning framework issues one kernel launch per bin; on the CPU
//! backend those launches are frequent and small, so respawning threads
//! per launch (as the scoped layer does) would dominate. The pool keeps
//! workers parked on a shared queue and hands out boxed jobs;
//! [`ThreadPool::run_batch`] submits a batch and blocks until all of it
//! completes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct BatchState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl BatchState {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: AtomicUsize::new(n),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.lock.lock().unwrap();
        while self.pending.load(Ordering::Acquire) != 0 {
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// A fixed-size pool of parked worker threads.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Spawn a pool with `size` workers (clamped to ≥ 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("spmv-pool-{i}"))
                    .spawn(move || {
                        // Hold the queue lock only while dequeuing, never
                        // while running the job.
                        while let Some(job) = next_job(&rx) {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            size,
        }
    }

    /// Pool with one worker per available core (or `SPMV_NUM_THREADS`).
    pub fn with_default_size() -> Self {
        Self::new(crate::scope::num_threads())
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit one fire-and-forget job.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(f))
            .expect("pool workers exited early");
    }

    /// Submit a batch of jobs and block until every one has finished.
    pub fn run_batch<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        let jobs: Vec<I::Item> = jobs.into_iter().collect();
        if jobs.is_empty() {
            return;
        }
        let state = BatchState::new(jobs.len());
        for job in jobs {
            let st = Arc::clone(&state);
            self.submit(move || {
                job();
                st.complete_one();
            });
        }
        state.wait();
    }
}

fn next_job(rx: &Mutex<Receiver<Job>>) -> Option<Job> {
    rx.lock().unwrap().recv().ok()
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn batch_completes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|i| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(i, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.run_batch(Vec::<fn()>::new());
    }

    #[test]
    fn sequential_batches_are_ordered() {
        let pool = ThreadPool::new(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        for round in 0..5 {
            let jobs: Vec<_> = (0..10)
                .map(|_| {
                    let log = Arc::clone(&log);
                    move || log.lock().unwrap().push(round)
                })
                .collect();
            pool.run_batch(jobs);
        }
        let log = log.lock().unwrap();
        // Each round's 10 entries appear before any later round's.
        for (i, w) in log.windows(2).enumerate() {
            assert!(w[0] <= w[1], "out of order at {i}: {:?}", &log[..]);
        }
        assert_eq!(log.len(), 50);
    }

    #[test]
    fn size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        pool.run_batch([move || {
            h.store(7, Ordering::Relaxed);
        }]);
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // must drain and join without hanging
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
