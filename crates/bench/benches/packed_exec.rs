//! Criterion bench for bin-specialized packed formats: a fused
//! SELL-packed plan versus the same plan with packing disabled versus
//! the plain row-parallel CSR kernel, on low-NNZ-variance matrices
//! (where SELL should win) and a skewed power-law matrix (where the
//! padding gate keeps most bins CSR and fused dispatch is the only
//! lever).
//!
//! Acceptance target: on the low-variance inputs, the packed plan beats
//! the row-parallel CSR kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_autotune::kernels::cpu::spmv_row_parallel;
use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::CsrMatrix;

fn strategy() -> Strategy {
    Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    }
}

fn bench_matrix(c: &mut Criterion, name: &str, a: &CsrMatrix<f32>) {
    let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
    let mut group = c.benchmark_group("packed_exec");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(a.nnz() as u64));

    // Both plan variants are verified once up front and timed through
    // the unchecked fast path — the steady-state solver hot loop.
    let packed = SpmvPlan::compile(a, strategy(), Box::new(NativeCpuBackend::new()))
        .verify(a)
        .expect("packed plan must verify");
    let unpacked = SpmvPlan::compile_with(
        a,
        strategy(),
        Box::new(NativeCpuBackend::new()),
        PlanConfig {
            pack: false,
            fused: false,
            ..PlanConfig::default()
        },
    )
    .verify(a)
    .expect("csr plan must verify");

    group.bench_with_input(BenchmarkId::new("packed-fused", name), a, |b, a| {
        let mut u = vec![0.0f32; a.n_rows()];
        b.iter(|| packed.execute_unchecked(a, &v, &mut u).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("csr-per-bin", name), a, |b, a| {
        let mut u = vec![0.0f32; a.n_rows()];
        b.iter(|| unpacked.execute_unchecked(a, &v, &mut u).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("csr-row-parallel", name), a, |b, a| {
        let mut u = vec![0.0f32; a.n_rows()];
        b.iter(|| spmv_row_parallel(a, &v, &mut u).unwrap())
    });
    group.finish();
}

fn bench_packed(c: &mut Criterion) {
    // bfly-style: exactly 4 NNZ per row — zero padding, pure SELL win.
    bench_matrix(
        c,
        "uniform4-60k",
        &gen::random_uniform::<f32>(60_000, 60_000, 4, 4, 1),
    );
    // apache1-style banded ~7 NNZ rows.
    bench_matrix(c, "banded7-60k", &gen::banded::<f32>(60_000, 3, 2));
    // Skewed: the padding gate forces dense bins back to CSR.
    bench_matrix(
        c,
        "powerlaw-30k",
        &gen::powerlaw::<f32>(30_000, 1, 600, 2.0, 7),
    );
}

criterion_group!(benches, bench_packed);
criterion_main!(benches);
