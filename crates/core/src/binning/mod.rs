//! Binning (steps 1–2 of the framework, Algorithm 2): group rows of
//! similar workload so each group can get its own kernel.
//!
//! The paper's scheme is *coarse-grained*: every `U` adjacent rows form
//! one "virtual" row whose workload is its total NNZ
//! (`wl[i] = rowPtr[min((i+1)·U, m)] − rowPtr[i·U]`); virtual row `i`
//! lands in bin `⌊wl[i]/U⌋`, clamped to [`MAX_BINS`] with an overflow
//! bin for extremely long rows. Only the *first* row index of a virtual
//! row is stored, which is what keeps the scheme's space and time
//! overhead negligible (Figure 8).
//!
//! Alternative schemes from §III-B/§IV-C are also provided: fine-grained
//! (per-row), hybrid (fine for short rows, coarse for long), and
//! single-bin.

mod coarse;
mod schemes;

pub use coarse::{coarse_binning, coarse_binning_parallel};
pub use schemes::{bin_matrix, fine_binning, hybrid_binning, single_binning};

/// Maximum number of bins (the paper: "there are up to 100 bins").
pub const MAX_BINS: usize = 100;

/// How rows are grouped into bins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinningScheme {
    /// The paper's coarse-grained virtual-row scheme with granularity `u`.
    Coarse {
        /// Number of adjacent rows per virtual row (`U`).
        u: usize,
    },
    /// Per-row binning (`U = 1` — high overhead; kept for the Figure 8
    /// overhead study and as a tuner candidate).
    Fine,
    /// Fine binning for rows under `threshold` NNZ, coarse (with `u`) for
    /// the rest.
    Hybrid {
        /// NNZ boundary between the fine and coarse regimes.
        threshold: usize,
        /// Coarse granularity used above the threshold.
        u: usize,
    },
    /// Everything in one bin (the §IV-C fallback that beats binning on
    /// several matrices).
    Single,
}

impl BinningScheme {
    /// The granularities the paper presets: "U is preset to be 10, 20,
    /// 50, 100, …, 10^6" (decade steps of 1/2/5).
    pub fn paper_granularities() -> Vec<usize> {
        let mut out = Vec::new();
        let mut base = 10usize;
        while base <= 1_000_000 {
            for m in [1, 2, 5] {
                let u = base * m;
                if u <= 1_000_000 {
                    out.push(u);
                }
            }
            base *= 10;
        }
        out.push(1_000_000);
        out.dedup();
        out
    }

    /// Short human-readable form.
    pub fn describe(&self) -> String {
        match self {
            BinningScheme::Coarse { u } => format!("coarse U={u}"),
            BinningScheme::Fine => "fine U=1".into(),
            BinningScheme::Hybrid { threshold, u } => {
                format!("hybrid <{threshold} fine, else U={u}")
            }
            BinningScheme::Single => "single-bin".into(),
        }
    }
}

/// The result of binning: per bin, the starting row index of each group
/// of `span` adjacent rows it contains.
///
/// For coarse binning every entry covers up to `u` rows; for fine and
/// single binning every entry covers exactly one row.
#[derive(Clone, Debug, PartialEq)]
pub struct Bins {
    /// Rows of the binned matrix.
    pub m: usize,
    /// Rows covered per stored entry (the granularity `U`; 1 for fine).
    pub span: usize,
    /// `bins[binId]` = starting row indices of the virtual rows in the
    /// bin.
    pub bins: Vec<Vec<u32>>,
}

impl Bins {
    /// Number of non-empty bins (each costs one kernel launch).
    pub fn populated(&self) -> usize {
        self.bins.iter().filter(|b| !b.is_empty()).count()
    }

    /// Total virtual-row entries across bins.
    pub fn entries(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Expand bin `bin_id` into the actual row indices it covers, in
    /// ascending order within each virtual row (kernels consume this).
    pub fn expand(&self, bin_id: usize) -> Vec<u32> {
        let mut rows = Vec::with_capacity(self.bins[bin_id].len() * self.span);
        for &start in &self.bins[bin_id] {
            let end = ((start as usize) + self.span).min(self.m);
            rows.extend(start..end as u32);
        }
        rows
    }

    /// Heap bytes consumed by the bin index lists — the space-overhead
    /// side of the coarse-vs-fine trade-off (§II-C).
    pub fn storage_bytes(&self) -> usize {
        self.entries() * std::mem::size_of::<u32>()
            + self.bins.capacity() * std::mem::size_of::<Vec<u32>>()
    }

    /// Check the structural invariants: every row appears in exactly one
    /// bin, exactly once. (Test/diagnostic helper; O(m).)
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.m];
        for (b, bin) in self.bins.iter().enumerate() {
            for &start in bin {
                let start = start as usize;
                if !start.is_multiple_of(self.span) && self.span > 1 {
                    return Err(format!(
                        "bin {b}: start {start} not aligned to span {}",
                        self.span
                    ));
                }
                let end = (start + self.span).min(self.m);
                for (r, s) in seen.iter_mut().enumerate().take(end).skip(start) {
                    if *s {
                        return Err(format!("row {r} appears twice"));
                    }
                    *s = true;
                }
            }
        }
        if let Some(r) = seen.iter().position(|&s| !s) {
            return Err(format!("row {r} missing from all bins"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_granularities_span_10_to_1e6() {
        let g = BinningScheme::paper_granularities();
        assert_eq!(g.first(), Some(&10));
        assert_eq!(g.last(), Some(&1_000_000));
        assert!(g.contains(&50));
        assert!(g.contains(&100));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn expand_covers_span_rows_clipped_to_m() {
        let bins = Bins {
            m: 25,
            span: 10,
            bins: vec![vec![0, 20], vec![10]],
        };
        assert_eq!(bins.expand(0), (0..10).chain(20..25).collect::<Vec<u32>>());
        assert_eq!(bins.expand(1), (10..20).collect::<Vec<u32>>());
        assert!(bins.validate().is_ok());
    }

    #[test]
    fn validate_catches_missing_and_duplicate_rows() {
        let missing = Bins {
            m: 5,
            span: 1,
            bins: vec![vec![0, 1, 3, 4]],
        };
        assert!(missing.validate().is_err());
        let dup = Bins {
            m: 3,
            span: 1,
            bins: vec![vec![0, 1], vec![1, 2]],
        };
        assert!(dup.validate().is_err());
    }

    #[test]
    fn describe_names_each_scheme() {
        assert!(BinningScheme::Coarse { u: 50 }.describe().contains("U=50"));
        assert!(BinningScheme::Fine.describe().contains("fine"));
        assert!(BinningScheme::Single.describe().contains("single"));
        assert!(BinningScheme::Hybrid {
            threshold: 8,
            u: 100
        }
        .describe()
        .contains("hybrid"));
    }
}
