//! Criterion microbench: binning throughput versus granularity — the
//! quantitative backing of Figure 8 at microbench precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_autotune::binning::{coarse_binning, coarse_binning_parallel};
use spmv_sparse::gen;

fn bench_binning(c: &mut Criterion) {
    let a = gen::random_uniform::<f32>(200_000, 200_000, 1, 1, 8);
    let mut group = c.benchmark_group("coarse_binning");
    group.sample_size(20);
    for u in [1usize, 10, 100, 10_000] {
        group.bench_with_input(BenchmarkId::new("seq", u), &u, |b, &u| {
            b.iter(|| coarse_binning(&a, u))
        });
        group.bench_with_input(BenchmarkId::new("par", u), &u, |b, &u| {
            b.iter(|| coarse_binning_parallel(&a, u))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);
