//! Criterion bench for the verified-plan fast path: `execute` (per-call
//! O(m) fingerprint scan) versus `execute_unchecked` (O(1) shape check,
//! justified by the one-time write-set proof of `SpmvPlan::verify`).
//!
//! Matrices come from the paper's evaluation suite (the Figure 5/6
//! inputs); both paths run on the native CPU backend so the measured
//! difference is exactly the validation cost the proof removes.
//!
//! The `telemetry_*` arms bound the cost of the PR 10 execute
//! telemetry, which both paths above already include (every execute
//! folds its wall time into the plan's EWMA — a handful of relaxed
//! atomics reusing the `LaunchCost` clock read, no extra timing call):
//!
//! * `telemetry_record` times `PlanTelemetry::record` in isolation
//!   (nanoseconds per call, against multi-microsecond executes);
//! * `telemetry_x10` runs `execute_unchecked` plus nine redundant
//!   `record` calls — its delta over the plain `execute_unchecked` arm
//!   is nine extra telemetry hits, so even that amplified arm staying
//!   within a few percent pins the single built-in hit well under the
//!   ≤ 2% overhead budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_autotune::prelude::*;
use spmv_sparse::suite;

const MATRICES: [&str; 2] = ["cryg10000", "whitaker3_dual"];

fn auto() -> AutoSpmv {
    AutoSpmv::with_tuner(Tuner::with_config(
        GpuDevice::kaveri(),
        TunerConfig {
            granularities: vec![100, 1_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: false,
        },
    ))
}

fn bench_verified_exec(c: &mut Criterion) {
    let auto = auto();
    let mut group = c.benchmark_group("verified_exec");
    group.sample_size(10);
    for name in MATRICES {
        let a = suite::by_name(name)
            .unwrap_or_else(|| panic!("{name} not in suite"))
            .generate();
        let v: Vec<f32> = (0..a.n_cols()).map(|i| (i % 9) as f32).collect();

        let checked = auto.plan_native(&a);
        group.bench_with_input(BenchmarkId::new("execute", name), &a, |b, a| {
            let mut u = vec![0.0f32; a.n_rows()];
            b.iter(|| checked.execute(a, &v, &mut u).unwrap())
        });

        let verified = auto
            .plan_native(&a)
            .verify(&a)
            .expect("compiled plan must verify");
        group.bench_with_input(BenchmarkId::new("execute_unchecked", name), &a, |b, a| {
            let mut u = vec![0.0f32; a.n_rows()];
            b.iter(|| verified.execute_unchecked(a, &v, &mut u).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("telemetry_record", name), &a, |b, _a| {
            let telemetry = verified.telemetry();
            b.iter(|| telemetry.record(std::hint::black_box(1_000), 1))
        });

        group.bench_with_input(BenchmarkId::new("telemetry_x10", name), &a, |b, a| {
            let mut u = vec![0.0f32; a.n_rows()];
            b.iter(|| {
                let cost = verified.execute_unchecked(a, &v, &mut u).unwrap();
                let wall = cost.wall.as_nanos() as u64;
                for _ in 0..9 {
                    verified.telemetry().record(wall, 1);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verified_exec);
criterion_main!(benches);
