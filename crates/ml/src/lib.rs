//! # spmv-ml
//!
//! A from-scratch decision-tree learner in the C4.5/C5.0 family — the
//! stand-in for the proprietary C5.0 tool the paper uses for its
//! two-stage strategy model (§III-C).
//!
//! What is implemented, mirroring the published C4.5/C5.0 algorithm:
//!
//! * gain-ratio splits on numeric attributes (binary `≤ t` thresholds
//!   chosen at class boundaries) and categorical attributes (multiway);
//! * the "gain must be at least average" attribute pre-filter;
//! * pessimistic error-based pruning with the standard confidence-factor
//!   upper bound (CF = 0.25 by default);
//! * rule-set extraction from root-to-leaf paths with greedy condition
//!   dropping (the C5.0 "ruleset" mode the paper consumes);
//! * AdaBoost.M1-style boosting over weighted trees (C5.0's `-b`);
//! * evaluation utilities: confusion matrices, error rates, k-fold
//!   cross-validation, stratified train/test splits.
//!
//! The paper reports ≈5% test error for its stage-1 model (binning
//! granularity) and ≈15% for stage-2 (per-bin kernel); the `mlerr`
//! experiment binary reproduces those numbers with this learner.

#![warn(missing_docs)]

pub mod boost;
pub mod cv;
pub mod dataset;
pub mod entropy;
pub mod io;
pub mod lint;
pub mod metrics;
pub mod online;
pub mod prune;
pub mod rules;
pub mod tree;

pub use boost::BoostedTrees;
pub use dataset::{AttrKind, AttrSpec, Dataset};
pub use lint::{lint_ruleset, lint_tree, Finding, LintOptions, Severity};
pub use metrics::ConfusionMatrix;
pub use online::{IncrementalLearner, OnlineConfig, RetrainOutcome};
pub use rules::{Rule, RuleSet};
pub use tree::{DecisionTree, TreeConfig};
