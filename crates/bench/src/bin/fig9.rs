//! Figure 9 — the single-bin fallback on the six matrices where the
//! framework loses to CSR-Adaptive.
//!
//! §IV-C shows that for crankseg_2, D6-6, dictionary28, europe_osm,
//! Ga3As3H12 and roadNet-CA, simply putting all rows into one bin and
//! manually picking the right kernel recovers (most of) the gap: four of
//! the six reach or beat the CSR-Adaptive line. Regenerate with
//! `cargo run --release -p spmv-bench --bin fig9`.

use spmv_autotune::kernels::ALL_KERNELS;
use spmv_autotune::prelude::*;
use spmv_bench::table::{f3, Table};
use spmv_sparse::suite::{by_name, SINGLE_BIN_CASES};

fn main() {
    let device = GpuDevice::kaveri();
    let baseline = CsrAdaptive::new();

    println!("== Figure 9: single-bin strategy, each kernel, vs CSR-Adaptive (= 1.0) ==");
    println!("(values are execution time normalised to CSR-Adaptive; lower is better)\n");
    let mut headers = vec!["matrix".to_string()];
    headers.extend(ALL_KERNELS.iter().map(|k| k.label()));
    headers.push("best".into());
    let mut t = Table::new(headers);
    let mut reach = 0usize;
    for name in SINGLE_BIN_CASES {
        let meta = by_name(name).expect("suite entry");
        eprintln!("  {} …", name);
        let a = meta.generate();
        let v = vec![1.0f32; a.n_cols()];
        let mut u = vec![0.0f32; a.n_rows()];
        let ca = baseline.run(&device, &a, &v, &mut u).cycles;
        let mut row = vec![name.to_string()];
        let mut best = f64::INFINITY;
        let mut best_k = KernelId::Serial;
        for k in ALL_KERNELS {
            let c = run_single_kernel(&device, &a, k, &v, &mut u).cycles;
            let norm = c / ca;
            if norm < best {
                best = norm;
                best_k = k;
            }
            row.push(f3(norm));
        }
        if best <= 1.05 {
            reach += 1;
        }
        row.push(format!("{best_k} ({})", f3(best)));
        t.row(row);
    }
    t.print();
    println!(
        "\nmatrices where some single-bin kernel reaches (<=1.05x) the CSR-Adaptive line: \
         {reach}/6   (paper: 4/6)"
    );
    println!(
        "paper conclusion: the framework should include the single-bin strategy as a\n\
         candidate — our tuner does (TunerConfig::include_single_bin, see the ablation)."
    );
}
