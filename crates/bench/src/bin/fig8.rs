//! Figure 8 — binning overhead versus granularity `U`.
//!
//! The paper bins a matrix of 10^7 rows, each with one non-zero, and
//! shows that `U = 1` costs far more than coarser granularities, with the
//! overhead becoming negligible from `U = 100` on. This is host-side wall
//! time in the paper, so here too we measure real time. Regenerate with
//! `cargo run --release -p spmv-bench --bin fig8`
//! (`SPMV_FIG8_ROWS` overrides the row count; default 10^6 to stay
//! laptop-sized).

use spmv_autotune::binning::{coarse_binning, coarse_binning_parallel};
use spmv_bench::{env_usize, Table};
use spmv_sparse::gen;
use std::time::Instant;

fn main() {
    let rows = env_usize("SPMV_FIG8_ROWS", 1_000_000);
    eprintln!("generating {rows}-row matrix with 1 NNZ per row …");
    let a = gen::random_uniform::<f32>(rows, rows, 1, 1, 8);

    println!("== Figure 8: binning overhead vs granularity (matrix: {rows} rows x 1 NNZ) ==\n");
    let mut t = Table::new(vec![
        "U",
        "sequential ms",
        "parallel ms",
        "entries",
        "bins used",
        "vs U=100 (seq)",
    ]);
    let us = [1usize, 10, 100, 1_000, 10_000, 100_000];
    // Warm-up + reference at U = 100.
    let _ = coarse_binning(&a, 100);
    let reps = 5;
    let mut seq_times = Vec::new();
    let mut rows_out = Vec::new();
    for &u in &us {
        let t0 = Instant::now();
        let mut bins = None;
        for _ in 0..reps {
            bins = Some(coarse_binning(&a, u));
        }
        let seq_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = coarse_binning_parallel(&a, u);
        }
        let par_ms = t1.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let bins = bins.unwrap();
        seq_times.push(seq_ms);
        rows_out.push((u, seq_ms, par_ms, bins.entries(), bins.populated()));
    }
    let ref_ms = rows_out
        .iter()
        .find(|r| r.0 == 100)
        .map(|r| r.1)
        .unwrap_or(1.0);
    for (u, seq_ms, par_ms, entries, populated) in rows_out {
        t.row(vec![
            u.to_string(),
            format!("{seq_ms:.2}"),
            format!("{par_ms:.2}"),
            entries.to_string(),
            populated.to_string(),
            format!("{:.1}x", seq_ms / ref_ms),
        ]);
    }
    t.print();
    println!(
        "\npaper shape: U=1 costs an order of magnitude more than U>=100, where the\n\
         overhead becomes negligible — hence the framework prefers coarse granularities."
    );
}
