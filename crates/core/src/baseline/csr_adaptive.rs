//! CSR-Adaptive (Greathouse & Daga, SC'14) — the state-of-the-art GPU
//! SpMV the paper benchmarks against in Figure 7.
//!
//! CSR-Adaptive achieves *inter-bin* load balance: adjacent rows are
//! packed into "row blocks" of bounded total NNZ, and each block picks
//! its kernel by its own shape —
//!
//! * **CSR-Stream** for blocks of many short rows: the whole block's
//!   non-zeros are streamed into LDS with perfectly coalesced reads, then
//!   each row is reduced out of LDS;
//! * **CSR-Vector** for blocks that are a single long row: wavefronts
//!   iterate the row cooperatively with a tree reduction.
//!
//! Unlike the paper's framework the strategy is fixed (hard-coded block
//! size and kernel choice) and everything runs in **one** kernel launch.

use crate::kernels::WORKGROUP_SIZE;
use spmv_gpusim::engine::price_workgroups;
use spmv_gpusim::trace::WorkgroupCost;
use spmv_gpusim::{GpuDevice, LaunchStats, LaunchTracer, Region};
use spmv_sparse::{CsrMatrix, Scalar};

/// One row block: rows `[start, end)` processed by one work-group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowBlock {
    /// First row of the block.
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl RowBlock {
    /// Number of rows in the block.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }
}

/// The CSR-Adaptive SpMV baseline.
#[derive(Clone, Debug)]
pub struct CsrAdaptive {
    /// NNZ capacity of one row block (the LDS budget; the published
    /// implementation uses 1024–2048 entries).
    pub block_nnz: usize,
    /// Maximum rows per block (bounded by the work-group size so each
    /// row gets a reducing thread).
    pub max_rows_per_block: usize,
}

impl Default for CsrAdaptive {
    fn default() -> Self {
        Self {
            block_nnz: 1024,
            max_rows_per_block: WORKGROUP_SIZE,
        }
    }
}

impl CsrAdaptive {
    /// Baseline with default (published) parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Greedy adjacent-row packing: a block closes when adding the next
    /// row would exceed `block_nnz` non-zeros or `max_rows_per_block`
    /// rows; a row that alone exceeds the budget becomes its own
    /// CSR-Vector block.
    pub fn blocks<T: Scalar>(&self, a: &CsrMatrix<T>) -> Vec<RowBlock> {
        let m = a.n_rows();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < m {
            let first_len = a.row_nnz(start);
            if first_len > self.block_nnz {
                out.push(RowBlock {
                    start,
                    end: start + 1,
                });
                start += 1;
                continue;
            }
            let mut end = start + 1;
            while end < m
                && end - start < self.max_rows_per_block
                && a.range_nnz(start, end + 1) <= self.block_nnz
            {
                end += 1;
            }
            out.push(RowBlock { start, end });
            start = end;
        }
        out
    }

    /// Run the baseline over the whole matrix (one launch), computing
    /// `u = A·v` and returning the priced launch.
    pub fn run<T: Scalar>(
        &self,
        device: &GpuDevice,
        a: &CsrMatrix<T>,
        v: &[T],
        u: &mut [T],
    ) -> LaunchStats {
        assert_eq!(v.len(), a.n_cols());
        assert_eq!(u.len(), a.n_rows());
        let blocks = self.blocks(a);
        let tracer = LaunchTracer::new(device);
        let lds_bytes = self.block_nnz * T::BYTES;
        let mut wgs: Vec<WorkgroupCost> = Vec::with_capacity(blocks.len());
        for b in &blocks {
            let wg = if b.rows() == 1 {
                self.trace_vector_block(device, &tracer, a, b.start, v, u)
            } else {
                self.trace_stream_block(device, &tracer, a, b, v, u, lds_bytes)
            };
            wgs.push(wg);
        }
        if wgs.is_empty() {
            return LaunchStats::default();
        }
        price_workgroups(device, &wgs)
    }

    /// CSR-Stream: coalesced block load into LDS, then per-row reduction.
    #[allow(clippy::too_many_arguments)]
    fn trace_stream_block<T: Scalar>(
        &self,
        device: &GpuDevice,
        tracer: &LaunchTracer<'_>,
        a: &CsrMatrix<T>,
        b: &RowBlock,
        v: &[T],
        u: &mut [T],
        lds_bytes: usize,
    ) -> WorkgroupCost {
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        let (lo, hi) = (row_ptr[b.start], row_ptr[b.end]);
        let nnz = hi - lo;
        let mut wg = tracer.workgroup(lds_bytes);
        let n_waves = WORKGROUP_SIZE / device.wavefront;

        // Phase 1: stream val/colIdx into LDS, fully coalesced; v is a
        // gather. Work-items stride the block; wave w takes lanes
        // [it·256 + w·64, +64).
        let mut waves: Vec<_> = (0..n_waves).map(|_| wg.wave()).collect();
        let load_iters = nnz.div_ceil(WORKGROUP_SIZE);
        for (wi, w) in waves.iter_mut().enumerate() {
            // Block descriptor / rowPtr reads for this block.
            w.read_contiguous(Region::Aux, b.start, 2, 4);
            w.read_contiguous(Region::RowPtr, b.start, b.rows() + 1, 4);
            w.alu(4);
            for it in 0..load_iters {
                let seg = lo + it * WORKGROUP_SIZE + wi * device.wavefront;
                let n = device.wavefront.min(hi.saturating_sub(seg));
                if n == 0 {
                    w.alu(1);
                    continue;
                }
                w.read_contiguous(Region::ColIdx, seg, n, 4);
                w.read_contiguous(Region::Val, seg, n, T::BYTES);
                w.begin_access();
                for &c in &col_idx[seg..seg + n] {
                    w.lane_addr(Region::VecIn, c as usize, T::BYTES);
                }
                w.commit_read();
                w.lds(1);
                w.alu(2);
            }
            w.barrier();
        }

        // Phase 2: one thread reduces each row out of LDS; waves diverge
        // on the longest row they own.
        for (wi, w) in waves.iter_mut().enumerate() {
            let rows: Vec<usize> = (b.start..b.end)
                .skip(wi * device.wavefront)
                .take(device.wavefront)
                .collect();
            if rows.is_empty() {
                w.alu(1);
                continue;
            }
            let max_len = rows.iter().map(|&r| a.row_nnz(r)).max().unwrap();
            w.lds(max_len as u64);
            w.alu(max_len as u64);
            // Coalesced store of the row results.
            w.write_contiguous(Region::VecOut, rows[0], rows.len(), T::BYTES);
        }

        // Functional execution.
        for r in b.start..b.end {
            let mut sum = T::ZERO;
            for idx in row_ptr[r]..row_ptr[r + 1] {
                sum = values[idx].mul_add_(v[col_idx[idx] as usize], sum);
            }
            u[r] = sum;
        }

        for w in waves {
            wg.push_wave(w.finish());
        }
        wg.finish()
    }

    /// CSR-Vector: the work-group iterates one long row cooperatively.
    fn trace_vector_block<T: Scalar>(
        &self,
        device: &GpuDevice,
        tracer: &LaunchTracer<'_>,
        a: &CsrMatrix<T>,
        row: usize,
        v: &[T],
        u: &mut [T],
    ) -> WorkgroupCost {
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        let (lo, hi) = (row_ptr[row], row_ptr[row + 1]);
        let mut wg = tracer.workgroup(WORKGROUP_SIZE * T::BYTES);
        let n_waves = WORKGROUP_SIZE / device.wavefront;
        let iters = (hi - lo).div_ceil(WORKGROUP_SIZE);
        for wi in 0..n_waves {
            let mut w = wg.wave();
            w.read_contiguous(Region::RowPtr, row, 2, 4);
            w.alu(4);
            for it in 0..iters {
                let seg = lo + it * WORKGROUP_SIZE + wi * device.wavefront;
                let n = device.wavefront.min(hi.saturating_sub(seg));
                if n == 0 {
                    w.alu(1);
                    continue;
                }
                w.read_contiguous(Region::ColIdx, seg, n, 4);
                w.read_contiguous(Region::Val, seg, n, T::BYTES);
                w.begin_access();
                for &c in &col_idx[seg..seg + n] {
                    w.lane_addr(Region::VecIn, c as usize, T::BYTES);
                }
                w.commit_read();
                w.alu(2);
            }
            // Tree reduction across the work-group.
            let steps = (WORKGROUP_SIZE.trailing_zeros()) as u64;
            w.lds(2 * steps);
            w.alu(steps);
            w.barrier();
            w.barrier();
            if wi == 0 {
                w.begin_access();
                w.lane_addr(Region::VecOut, row, T::BYTES);
                w.commit_write();
            }
            wg.push_wave(w.finish());
        }
        let mut sum = T::ZERO;
        for idx in lo..hi {
            sum = values[idx].mul_add_(v[col_idx[idx] as usize], sum);
        }
        u[row] = sum;
        wg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;
    use spmv_sparse::scalar::approx_eq;

    #[test]
    fn blocks_partition_all_rows() {
        let a = gen::mixture::<f32>(
            2000,
            4000,
            &[
                RowRegime::new(1, 4, 0.7),
                RowRegime::new(50, 200, 0.25),
                RowRegime::new(1500, 2500, 0.05),
            ],
            true,
            11,
        );
        let ca = CsrAdaptive::new();
        let blocks = ca.blocks(&a);
        let mut cursor = 0;
        for b in &blocks {
            assert_eq!(b.start, cursor);
            assert!(b.end > b.start);
            cursor = b.end;
            if b.rows() > 1 {
                assert!(a.range_nnz(b.start, b.end) <= ca.block_nnz);
                assert!(b.rows() <= ca.max_rows_per_block);
            }
        }
        assert_eq!(cursor, a.n_rows());
    }

    #[test]
    fn oversize_rows_get_their_own_vector_block() {
        let a = gen::mixture::<f64>(
            100,
            8000,
            &[RowRegime::new(1, 2, 0.9), RowRegime::new(3000, 4000, 0.1)],
            true,
            3,
        );
        let ca = CsrAdaptive::new();
        for b in ca.blocks(&a) {
            if a.range_nnz(b.start, b.end) > ca.block_nnz {
                assert_eq!(b.rows(), 1, "oversize block with {} rows", b.rows());
            }
        }
    }

    #[test]
    fn result_matches_reference() {
        let a = gen::mixture::<f32>(
            1500,
            3000,
            &[
                RowRegime::new(1, 5, 0.6),
                RowRegime::new(30, 120, 0.3),
                RowRegime::new(1200, 2000, 0.1),
            ],
            true,
            5,
        );
        let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 11) as f32) - 5.0).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let device = GpuDevice::kaveri();
        let mut u = vec![0.0f32; a.n_rows()];
        let stats = CsrAdaptive::new().run(&device, &a, &v, &mut u);
        assert!(stats.cycles > 0.0);
        assert_eq!(stats.workgroups, CsrAdaptive::new().blocks(&a).len());
        for i in 0..a.n_rows() {
            assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "row {i}");
        }
    }

    #[test]
    fn single_launch_overhead() {
        // CSR-Adaptive runs in one launch: overhead appears once no
        // matter how many blocks exist.
        let a = gen::random_uniform::<f32>(10_000, 10_000, 2, 2, 7);
        let device = GpuDevice::kaveri();
        let v = vec![1.0f32; a.n_cols()];
        let mut u = vec![0.0f32; a.n_rows()];
        let stats = CsrAdaptive::new().run(&device, &a, &v, &mut u);
        // Many blocks, but cycles only include one launch overhead: the
        // per-byte floor dominates; sanity-check against the roofline.
        let floor = (stats.bytes_read + stats.bytes_written) as f64 / device.bytes_per_cycle();
        assert!(stats.cycles >= floor);
        assert!(stats.workgroups > 10);
    }

    #[test]
    fn stream_blocks_are_bandwidth_friendly_on_tiny_rows() {
        // On a road-network-like matrix CSR-Adaptive's coalesced stream
        // load should beat Kernel-Serial's strided walks.
        let a = gen::road_network::<f32>(120, 120, 0.7, 13);
        let device = GpuDevice::kaveri();
        let v = vec![1.0f32; a.n_cols()];
        let mut u1 = vec![0.0f32; a.n_rows()];
        let ca = CsrAdaptive::new().run(&device, &a, &v, &mut u1);
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let mut u2 = vec![0.0f32; a.n_rows()];
        let serial = crate::kernels::run_kernel(
            &device,
            &a,
            &rows,
            crate::kernels::KernelId::Serial,
            &v,
            &mut u2,
        );
        assert!(
            ca.transactions < serial.transactions,
            "stream tx {} !< serial tx {}",
            ca.transactions,
            serial.transactions
        );
    }

    #[test]
    fn empty_matrix_runs() {
        let a = CsrMatrix::<f32>::zeros(0, 5);
        let device = GpuDevice::kaveri();
        let mut u: Vec<f32> = vec![];
        let stats = CsrAdaptive::new().run(&device, &a, &[1.0; 5], &mut u);
        assert_eq!(stats.workgroups, 0);
    }
}
