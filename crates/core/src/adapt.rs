//! Online bottleneck classification: the decision half of the
//! measured-feedback loop (the observation half is [`crate::telemetry`]).
//!
//! Offline tuning predicts a plan from static features; this module asks
//! the complementary question *after* the plan has run: is the plan
//! performing the way its own traffic model says it should, and if not,
//! which resource is it actually limited by? The answer — a
//! [`Bottleneck`] — maps directly onto a compile-time knob the
//! refinement layer can turn:
//!
//! | class | evidence | suggested move |
//! |---|---|---|
//! | [`Imbalanced`](Bottleneck::Imbalanced) | static shard-load skew above threshold | cut finer tiles so the LPT deal can even out |
//! | [`LatencyBound`](Bottleneck::LatencyBound) | scatter-heavy rows with cache blocking off | enable column blocking |
//! | [`MemoryBound`](Bottleneck::MemoryBound) | full-width index stream with compression headroom, or measured time far above the traffic-model roofline | re-open the pack/specialize/index gates |
//! | [`OnModel`](Bottleneck::OnModel) | none of the above | leave the plan alone |
//!
//! The checks run in that order and the *structural* signals come first,
//! deliberately: they are computed from the compiled plan, so a CI gate
//! exercising the refinement loop classifies deterministically — timing
//! noise on a loaded runner cannot flip a forced-CSR plan's verdict.
//! The measured-divergence check is the catch-all for plans whose
//! structure looks fine but whose observed rate says otherwise.
//!
//! Thresholds default to the same gate priors plan compilation uses
//! ([`PlanConfig::scatter_lines_per_row`] for scatter, the 4-bytes-per-
//! non-zero `u32` index stream the CSR fallback is charged) — the
//! classifier and the compiler must agree on what "scatter-heavy" or
//! "uncompressed" mean, or refinement would oscillate.

use crate::plan::{IndexPolicy, PlanConfig, TrafficStats};
use crate::telemetry::TelemetrySnapshot;
use spmv_sparse::IndexKind;

/// What is limiting a running plan, per the classifier's evidence order
/// (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// Moving more bytes than it needs to: an uncompressed index stream
    /// with compression headroom, or measured time far above the
    /// traffic-model roofline.
    MemoryBound,
    /// The compiled shard deal loads one shard markedly heavier than the
    /// mean — workers idle at the join.
    Imbalanced,
    /// Scatter-heavy gathers of `x` with column blocking disabled —
    /// rows stall on cache-line latency, not bandwidth.
    LatencyBound,
    /// Performing as the traffic model predicts (or too few samples to
    /// say otherwise); no refinement warranted.
    OnModel,
}

impl Bottleneck {
    /// Stable lower-case name (report keys, bench JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Bottleneck::MemoryBound => "memory_bound",
            Bottleneck::Imbalanced => "imbalanced",
            Bottleneck::LatencyBound => "latency_bound",
            Bottleneck::OnModel => "on_model",
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Classifier thresholds. Defaults inherit the format-gate priors the
/// compiler already uses, so classification agrees with compilation.
#[derive(Clone, Copy, Debug)]
pub struct AdaptConfig {
    /// No verdict before this many completed executes — the hysteresis
    /// floor that keeps one cold-cache launch from triggering a rebuild.
    pub min_executes: u64,
    /// Observed / predicted ns ratio above which a structurally clean
    /// plan is still declared off-model ([`Bottleneck::MemoryBound`]).
    pub divergence_ratio: f64,
    /// Static `max / mean` shard load at or above which the plan is
    /// [`Bottleneck::Imbalanced`].
    pub imbalance_threshold: f64,
    /// Index bytes per non-zero at or above which the stream counts as
    /// uncompressed (the CSR fallback is charged 4 — a full `u32` per
    /// non-zero).
    pub index_bytes_per_nnz: f64,
    /// Streaming rate (GB/s = bytes/ns) the roofline prediction assumes;
    /// [`predicted_ns`](AdaptConfig::predicted_ns) divides modelled
    /// traffic by it. Deliberately conservative: only plans *far* below
    /// even a modest rate trip the measured-divergence check.
    pub assumed_bandwidth_gbps: f64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            min_executes: 8,
            divergence_ratio: 1.5,
            imbalance_threshold: 1.25,
            index_bytes_per_nnz: 3.5,
            assumed_bandwidth_gbps: 10.0,
        }
    }
}

impl AdaptConfig {
    /// Roofline prediction: nanoseconds one execute should take if the
    /// modelled traffic streams at the assumed bandwidth.
    pub fn predicted_ns(&self, traffic: &TrafficStats) -> f64 {
        let bytes = (traffic.value_bytes + traffic.index_bytes + traffic.x_gather_bytes) as f64;
        bytes / self.assumed_bandwidth_gbps.max(1e-9)
    }

    /// Observed / predicted time ratio (0.0 with no samples): > 1 means
    /// slower than the traffic model's roofline.
    pub fn divergence(&self, snapshot: &TelemetrySnapshot, traffic: &TrafficStats) -> f64 {
        if snapshot.ewma_ns_per_column <= 0.0 {
            return 0.0;
        }
        snapshot.ewma_ns_per_column / self.predicted_ns(traffic).max(1e-9)
    }
}

/// Whether `config` still has traffic-shrinking gates closed that a
/// refinement could open (the "headroom" precondition for the structural
/// [`Bottleneck::MemoryBound`] verdict — with every gate already open,
/// a fat index stream is the matrix's fault, not the plan's).
fn compression_headroom(config: &PlanConfig) -> bool {
    !config.pack || !config.specialize || config.index == IndexPolicy::Fixed(IndexKind::U32)
}

/// Classify what limits a plan, from a telemetry snapshot plus the
/// plan's compile-time facts. Structural checks run before the measured
/// one (see the module docs for the order and why it is deterministic).
pub fn classify(
    snapshot: &TelemetrySnapshot,
    traffic: &TrafficStats,
    config: &PlanConfig,
    avg_lines_per_row: f64,
    cfg: &AdaptConfig,
) -> Bottleneck {
    if snapshot.executes < cfg.min_executes {
        return Bottleneck::OnModel;
    }
    if snapshot.static_imbalance >= cfg.imbalance_threshold {
        return Bottleneck::Imbalanced;
    }
    if avg_lines_per_row >= config.scatter_lines_per_row && !config.cache_block {
        return Bottleneck::LatencyBound;
    }
    if traffic.index_bytes_per_nnz() >= cfg.index_bytes_per_nnz && compression_headroom(config) {
        return Bottleneck::MemoryBound;
    }
    if cfg.divergence(snapshot, traffic) >= cfg.divergence_ratio {
        return Bottleneck::MemoryBound;
    }
    Bottleneck::OnModel
}

/// The compile-time move that addresses `bottleneck`, as a candidate
/// [`PlanConfig`] derived from the incumbent's. `None` when the verdict
/// needs no move ([`Bottleneck::OnModel`]) or every relevant knob is
/// already at its limit — the refinement layer treats `None` as "keep
/// the incumbent".
///
/// The suggestion is a *candidate*, not a decision: the refinement layer
/// compiles it, proves it ([`crate::plan::SpmvPlan::verify`]), A/B-times
/// it against the incumbent on live traffic, and only swaps if it
/// measures faster. A wrong suggestion therefore costs one background
/// compile, never a regression.
pub fn suggest(bottleneck: Bottleneck, incumbent: &PlanConfig) -> Option<PlanConfig> {
    match bottleneck {
        Bottleneck::MemoryBound => {
            if !compression_headroom(incumbent) {
                return None;
            }
            Some(PlanConfig {
                pack: true,
                specialize: true,
                index: IndexPolicy::Auto,
                cache_block: true,
                ..*incumbent
            })
        }
        Bottleneck::Imbalanced => {
            // Finer tiles give the LPT deal more pieces to even out.
            let finer = match incumbent.tile_nnz {
                0 => 2048,
                n if n > 256 => n / 2,
                _ => return None,
            };
            Some(PlanConfig {
                tile_nnz: finer,
                ..*incumbent
            })
        }
        Bottleneck::LatencyBound => {
            if incumbent.cache_block {
                return None;
            }
            Some(PlanConfig {
                cache_block: true,
                ..*incumbent
            })
        }
        Bottleneck::OnModel => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(executes: u64, ewma_ns: f64, imbalance: f64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            executes,
            columns: executes,
            ewma_ns_per_column: ewma_ns,
            last_ns_per_column: ewma_ns,
            flops_per_column: 2_000.0,
            model_bytes: 12_000,
            static_imbalance: imbalance,
        }
    }

    fn traffic(index_bytes: usize) -> TrafficStats {
        TrafficStats {
            value_bytes: 4_000,
            index_bytes,
            x_gather_bytes: 1_000,
            nnz: 1_000,
        }
    }

    fn forced_csr() -> PlanConfig {
        PlanConfig {
            pack: false,
            cache_block: false,
            specialize: false,
            ..PlanConfig::default()
        }
    }

    #[test]
    fn too_few_samples_is_on_model() {
        let cfg = AdaptConfig::default();
        let b = classify(
            &snap(3, 1e9, 9.0),
            &traffic(4_000),
            &forced_csr(),
            1.0,
            &cfg,
        );
        assert_eq!(b, Bottleneck::OnModel);
    }

    #[test]
    fn shard_skew_wins_over_everything() {
        let cfg = AdaptConfig::default();
        let b = classify(
            &snap(100, 1e9, 1.5),
            &traffic(4_000),
            &forced_csr(),
            9.0,
            &cfg,
        );
        assert_eq!(b, Bottleneck::Imbalanced);
    }

    #[test]
    fn scatter_without_blocking_is_latency_bound() {
        let cfg = AdaptConfig::default();
        let b = classify(
            &snap(100, 100.0, 1.0),
            &traffic(4_000),
            &forced_csr(),
            6.0,
            &cfg,
        );
        assert_eq!(b, Bottleneck::LatencyBound);
    }

    #[test]
    fn forced_csr_index_stream_is_memory_bound() {
        // 4 index bytes per nnz with pack/specialize off: structural
        // verdict, independent of the measured time.
        let cfg = AdaptConfig::default();
        let b = classify(
            &snap(100, 1.0, 1.0),
            &traffic(4_000),
            &forced_csr(),
            1.0,
            &cfg,
        );
        assert_eq!(b, Bottleneck::MemoryBound);
    }

    #[test]
    fn fat_index_without_headroom_is_not_structural() {
        // Every gate already open: the index stream is the matrix's
        // nature, and a fast plan stays on-model.
        let cfg = AdaptConfig::default();
        let open = PlanConfig::default();
        let b = classify(&snap(100, 1.0, 1.0), &traffic(4_000), &open, 1.0, &cfg);
        assert_eq!(b, Bottleneck::OnModel);
    }

    #[test]
    fn measured_divergence_is_the_catch_all() {
        let cfg = AdaptConfig::default();
        let open = PlanConfig::default();
        let t = traffic(1_000); // compressed: below the index prior
        let predicted = cfg.predicted_ns(&t);
        let slow = snap(100, predicted * 2.0, 1.0);
        assert_eq!(
            classify(&slow, &t, &open, 1.0, &cfg),
            Bottleneck::MemoryBound
        );
        let fine = snap(100, predicted * 1.2, 1.0);
        assert_eq!(classify(&fine, &t, &open, 1.0, &cfg), Bottleneck::OnModel);
    }

    #[test]
    fn suggestions_open_the_right_gate() {
        let csr = forced_csr();
        let s = suggest(Bottleneck::MemoryBound, &csr).expect("headroom exists");
        assert!(s.pack && s.specialize && s.cache_block);
        assert_eq!(s.index, IndexPolicy::Auto);

        let s = suggest(Bottleneck::LatencyBound, &csr).expect("blocking off");
        assert!(s.cache_block);
        assert!(!s.pack, "latency move must not touch unrelated knobs");

        let s = suggest(Bottleneck::Imbalanced, &PlanConfig::default()).expect("auto tiles");
        assert_eq!(s.tile_nnz, 2048);
        let s2 = suggest(Bottleneck::Imbalanced, &s).expect("still divisible");
        assert_eq!(s2.tile_nnz, 1024);
    }

    #[test]
    fn exhausted_knobs_suggest_nothing() {
        assert!(suggest(Bottleneck::OnModel, &PlanConfig::default()).is_none());
        assert!(suggest(Bottleneck::MemoryBound, &PlanConfig::default()).is_none());
        assert!(suggest(Bottleneck::LatencyBound, &PlanConfig::default()).is_none());
        let floor = PlanConfig {
            tile_nnz: 256,
            ..PlanConfig::default()
        };
        assert!(suggest(Bottleneck::Imbalanced, &floor).is_none());
    }

    #[test]
    fn divergence_is_zero_before_first_sample() {
        let cfg = AdaptConfig::default();
        assert_eq!(cfg.divergence(&snap(0, 0.0, 1.0), &traffic(4_000)), 0.0);
    }
}
