//! Serving-equivalence suite: every coalesced response must be
//! **bit-for-bit** identical to a standalone single-vector `execute`
//! through an identically-configured plan — across tenants, backend
//! worker counts {1, 2, 4}, and partial batch widths K ∈ {1, 3, 5, 8}.
//!
//! The test never asserts *how* requests were batched (that is a
//! timing outcome); it asserts that however they were batched, the
//! tenant cannot tell. Occupancy accounting (`Σ k·occupancy[k-1] =
//! completed`) is checked as a bookkeeping invariant.

use spmv_autotune::{
    BinningScheme, KernelId, NativeCpuBackend, PlanConfig, SpmvPlan, Strategy, VerifiedPlan,
};
use spmv_serve::{ServeConfig, SpmvServer};
use spmv_sparse::{gen, CsrMatrix};
use std::time::{Duration, Instant};

fn strategy() -> Strategy {
    Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    }
}

fn standalone_plan(a: &CsrMatrix<f64>, workers: usize) -> VerifiedPlan<f64> {
    SpmvPlan::compile_with(
        a,
        strategy(),
        Box::new(NativeCpuBackend::new().with_workers(workers)),
        PlanConfig::default(),
    )
    .verify(a)
    .expect("standalone plan must verify")
}

/// A deterministic request vector: varied magnitudes and signs so
/// accumulation-order differences would actually show up in the bits.
fn request_vector(n: usize, salt: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let v = ((i.wrapping_mul(2654435761) ^ salt.wrapping_mul(40503)) % 1000) as f64;
            (v - 500.0) / 64.0
        })
        .collect()
}

/// Submit `k` requests (mixed tenants, two matrices) against a server
/// with `workers` backend threads; every response must equal the
/// standalone execute bit-for-bit.
fn run_case(workers: usize, k: usize) {
    let a1 = gen::random_uniform::<f64>(600, 550, 1, 9, 42);
    let a2 = gen::random_uniform::<f64>(450, 550, 2, 14, 43);
    let plan1 = standalone_plan(&a1, workers);
    let plan2 = standalone_plan(&a2, workers);

    let server = SpmvServer::start(ServeConfig {
        max_batch: 8,
        coalesce_window: Duration::from_millis(120),
        workers,
        ..ServeConfig::default()
    });
    server.register_matrix(1, a1.clone(), strategy());
    server.register_matrix(2, a2.clone(), strategy());

    // Warm both plans so the measured phase coalesces instead of
    // compiling inside the window.
    let deadline = Instant::now() + Duration::from_secs(60);
    for (mid, a) in [(1u64, &a1), (2u64, &a2)] {
        server
            .submit(0, mid, vec![1.0; a.n_cols()], deadline)
            .unwrap()
            .wait()
            .unwrap();
    }

    let tickets: Vec<_> = (0..k)
        .map(|i| {
            let tenant = (i % 3) as u32;
            let mid = 1 + (i % 2) as u64;
            let n = if mid == 1 { a1.n_cols() } else { a2.n_cols() };
            let x = request_vector(n, workers * 1000 + i);
            (
                i,
                mid,
                x.clone(),
                server.submit(tenant, mid, x, deadline).unwrap(),
            )
        })
        .collect();

    for (i, mid, x, ticket) in tickets {
        let resp = ticket.wait().unwrap();
        let (a, plan) = if mid == 1 {
            (&a1, &plan1)
        } else {
            (&a2, &plan2)
        };
        let mut expect = vec![0.0; a.n_rows()];
        plan.execute(a, &x, &mut expect).unwrap();
        assert_eq!(
            resp.y, expect,
            "workers {workers}, K {k}: request {i} (matrix {mid}, rode a \
             {}-wide batch) diverges from the standalone execute",
            resp.batch_k
        );
        assert!((1..=8).contains(&resp.batch_k));
    }

    let stats = server.stats();
    assert_eq!(stats.completed, (k + 2) as u64);
    let by_occupancy: u64 = stats
        .occupancy
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64 + 1) * c)
        .sum();
    assert_eq!(
        by_occupancy, stats.completed,
        "occupancy histogram must account for every served request"
    );
    // Two matrices, one configuration each: exactly two plan builds,
    // everything after is a confirmed cache hit.
    assert_eq!(stats.cache.builds, 2);
    assert_eq!(stats.cache.collisions, 0);
    server.shutdown();
}

#[test]
fn coalesced_equals_standalone_one_worker() {
    for k in [1usize, 3, 5, 8] {
        run_case(1, k);
    }
}

#[test]
fn coalesced_equals_standalone_two_workers() {
    for k in [1usize, 3, 5, 8] {
        run_case(2, k);
    }
}

#[test]
fn coalesced_equals_standalone_four_workers() {
    for k in [1usize, 3, 5, 8] {
        run_case(4, k);
    }
}

/// Saturation-shaped traffic: far more requests than batch slots, all
/// for one matrix, from rotating tenants. Every response still equals
/// the standalone execute, and coalescing must actually engage (with a
/// wide window and 32 queued requests, at least one batch is > 1 wide).
#[test]
fn backlog_coalesces_and_stays_bit_for_bit() {
    let a = gen::random_uniform::<f64>(500, 500, 1, 7, 77);
    let plan = standalone_plan(&a, 2);
    let server = SpmvServer::start(ServeConfig {
        max_batch: 8,
        coalesce_window: Duration::from_millis(60),
        workers: 2,
        ..ServeConfig::default()
    });
    server.register_matrix(9, a.clone(), strategy());
    let deadline = Instant::now() + Duration::from_secs(60);
    server
        .submit(0, 9, vec![1.0; 500], deadline)
        .unwrap()
        .wait()
        .unwrap();

    let tickets: Vec<_> = (0..32)
        .map(|i| {
            let x = request_vector(500, i);
            (
                x.clone(),
                server.submit(i as u32 % 4, 9, x, deadline).unwrap(),
            )
        })
        .collect();
    let mut widths = Vec::new();
    for (x, ticket) in tickets {
        let resp = ticket.wait().unwrap();
        let mut expect = vec![0.0; 500];
        plan.execute(&a, &x, &mut expect).unwrap();
        assert_eq!(resp.y, expect);
        widths.push(resp.batch_k);
    }
    assert!(
        widths.iter().any(|&w| w > 1),
        "32 queued same-matrix requests never coalesced: {widths:?}"
    );
    server.shutdown();
}
