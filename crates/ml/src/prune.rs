//! Pessimistic (confidence-factor) error estimation, C4.5's pruning
//! criterion: the observed leaf error rate is replaced by the upper bound
//! of its binomial confidence interval, so small leaves look worse than
//! big ones and get folded away.

/// Upper bound on the error count of a leaf that covers `n` (weighted)
/// examples and misclassifies `e` of them, at confidence factor `cf`
/// (C4.5 default 0.25). Uses the standard normal-approximation form of
/// C4.5's `U_CF(E, N)`.
pub fn pessimistic_errors(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let z = normal_quantile(1.0 - cf);
    let f = (e / n).clamp(0.0, 1.0);
    let z2 = z * z;
    let upper = (f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).max(0.0).sqrt())
        / (1.0 + z2 / n);
    upper.min(1.0) * n
}

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation; |relative error| < 1.15e-9 over (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1), got {p}");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matches_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.75) - 0.674490).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(1e-6) + 4.753424).abs() < 1e-4);
    }

    #[test]
    fn quantile_is_antisymmetric() {
        for &p in &[0.1, 0.25, 0.4, 0.01, 0.001] {
            let a = normal_quantile(p);
            let b = normal_quantile(1.0 - p);
            assert!((a + b).abs() < 1e-7, "p = {p}: {a} vs {b}");
        }
    }

    #[test]
    fn pessimistic_errors_exceed_observed() {
        // The upper bound is always at least the observed error count.
        for &(n, e) in &[(10.0, 0.0), (10.0, 2.0), (100.0, 15.0), (3.0, 1.0)] {
            let u = pessimistic_errors(n, e, 0.25);
            assert!(u >= e, "U({e}/{n}) = {u} < {e}");
            assert!(u <= n);
        }
    }

    #[test]
    fn small_leaves_are_penalised_relatively_more() {
        // Same observed rate, smaller support → larger pessimistic rate.
        let small = pessimistic_errors(5.0, 1.0, 0.25) / 5.0;
        let large = pessimistic_errors(500.0, 100.0, 0.25) / 500.0;
        assert!(small > large);
    }

    #[test]
    fn zero_support_is_free() {
        assert_eq!(pessimistic_errors(0.0, 0.0, 0.25), 0.0);
    }

    #[test]
    fn lower_confidence_prunes_harder() {
        // Smaller CF → larger upper bound (more pessimism).
        let strict = pessimistic_errors(20.0, 2.0, 0.10);
        let lax = pessimistic_errors(20.0, 2.0, 0.40);
        assert!(strict > lax);
    }
}
