//! Execution backends: where a planned kernel launch actually runs.
//!
//! The framework's upper layers (plan compilation, strategy selection,
//! heterogeneous routing) decide *what* to launch — a kernel over a row
//! subset — and an [`ExecBackend`] decides *where*: on the simulated GPU
//! (functional execution plus architectural pricing) or natively on the
//! CPU thread pool. Both backends compute the same `u[r] = Σ A[r,·]·v`
//! for the rows they are handed, so they are interchangeable under one
//! [`crate::plan::SpmvPlan`].

use crate::kernels::cpu::{
    run_plan_fused, run_plan_fused_batch, run_plan_sharded, spmv_rows_chunked,
    spmv_rows_nnz_balanced,
};
use crate::kernels::{run_kernel, KernelId};
use crate::plan::{rhs_blocks, BinDispatch, BinPayload, ShardedTiles, Tile};
use spmv_gpusim::{GpuDevice, LaunchStats};
use spmv_parallel::Placement;
use spmv_sparse::{CsrMatrix, DenseBlock, Scalar};
use std::time::{Duration, Instant};

/// What one launch (or an accumulated sequence of launches) cost.
///
/// Simulated launches carry priced [`LaunchStats`]; native launches only
/// have wall time — the two clocks are not comparable, so `stats` is
/// optional rather than zero-filled.
#[derive(Clone, Debug, Default)]
pub struct LaunchCost {
    /// Modelled device cost, when the backend simulates one.
    pub stats: Option<LaunchStats>,
    /// Measured wall time of the launch on the host.
    pub wall: Duration,
}

impl LaunchCost {
    /// Fold another launch into this one: stats accumulate (appearing if
    /// absent), wall times add.
    pub fn accumulate(&mut self, other: &LaunchCost) {
        self.wall += other.wall;
        match (&mut self.stats, &other.stats) {
            (Some(mine), Some(theirs)) => mine.accumulate(theirs),
            (None, Some(theirs)) => self.stats = Some(theirs.clone()),
            _ => {}
        }
    }

    /// Modelled cycles, `0.0` for purely native execution.
    pub fn cycles(&self) -> f64 {
        self.stats.as_ref().map_or(0.0, |s| s.cycles)
    }
}

/// The borrowed compiled tables of one plan, bundled for a backend
/// launch: dispatch entries, payloads, the fused tile queue with its
/// LPT weights, and (when the plan was compiled for more than one
/// shard) the shard partition. One bundle instead of five parallel
/// slice arguments — adding a table no longer ripples through every
/// backend signature.
pub struct PlanParts<'a, T: Scalar> {
    /// Dispatch table (one entry per populated bin).
    pub dispatch: &'a [BinDispatch],
    /// Per-bin payloads, aligned with `dispatch`.
    pub payloads: &'a [BinPayload<T>],
    /// The fused tile queue (empty for `fused: false` plans).
    pub tiles: &'a [Tile],
    /// Per-tile NNZ weights, aligned with `tiles`.
    pub tile_weights: &'a [usize],
    /// Shard partition of the tile queue (`None` = flat queue).
    pub shards: Option<&'a ShardedTiles>,
}

/// A place kernel launches execute: hands a kernel and a row subset to
/// some substrate and reports what it cost.
///
/// The trait is generic over the scalar at the trait level (not the
/// method level) so `Box<dyn ExecBackend<T>>` is object-safe and a plan
/// can own its backend.
pub trait ExecBackend<T: Scalar>: Send + Sync {
    /// Stable backend name for reports (`"sim-gpu"`, `"native-cpu"`).
    fn name(&self) -> &'static str;

    /// Execute `kernel` over `rows`: `u[r] = Σ_j A[r, j]·v[j]` for each
    /// `r ∈ rows`, other entries of `u` untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v`/`u` lengths don't match the matrix — callers
    /// ([`crate::plan::SpmvPlan::execute`]) validate first.
    fn launch(
        &self,
        a: &CsrMatrix<T>,
        rows: &[u32],
        kernel: KernelId,
        v: &[T],
        u: &mut [T],
    ) -> LaunchCost;

    /// Execute a whole compiled plan: dispatch table, per-bin payloads,
    /// the fused tile queue, and (if present) its shard partition.
    ///
    /// The default implementation ignores payloads, tiles, and shards
    /// and issues one [`launch`](Self::launch) per bin — semantically
    /// the reference path, and what the simulated GPU keeps (its per-bin
    /// pricing *is* the point). Backends that can exploit the packed
    /// payloads and the single-scope tile queue (the native CPU)
    /// override this.
    fn launch_plan(
        &self,
        a: &CsrMatrix<T>,
        parts: &PlanParts<'_, T>,
        v: &[T],
        u: &mut [T],
    ) -> LaunchCost {
        let mut total = LaunchCost::default();
        for d in parts.dispatch {
            let cost = self.launch(a, &d.rows, d.kernel, v, u);
            total.accumulate(&cost);
        }
        total
    }

    /// Execute a whole compiled plan against a block of `K` right-hand
    /// sides: `y = A · x` for every column of `x` (SpMM).
    ///
    /// The default implementation runs one [`launch_plan`] per column
    /// through scratch vectors — reference semantics at the full
    /// per-column price (no traffic amortization). The native CPU
    /// overrides this with real register-blocked kernels over the
    /// (tile × RHS-block) queue; the simulated GPU overrides the
    /// *pricing*, charging matrix traffic once per RHS block.
    ///
    /// [`launch_plan`]: Self::launch_plan
    fn launch_plan_batch(
        &self,
        a: &CsrMatrix<T>,
        parts: &PlanParts<'_, T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> LaunchCost {
        let mut total = LaunchCost::default();
        let mut u = vec![T::ZERO; a.n_rows()];
        for j in 0..x.k() {
            let v = x.column(j);
            let cost = self.launch_plan(a, parts, &v, &mut u);
            y.set_column(j, &u);
            total.accumulate(&cost);
        }
        total
    }
}

/// The trace-driven simulated-GPU backend: kernels execute functionally
/// while being priced on a [`GpuDevice`] model. This is the path every
/// paper figure uses.
#[derive(Clone, Debug)]
pub struct SimGpuBackend {
    device: GpuDevice,
}

impl SimGpuBackend {
    /// Backend pricing launches on `device`.
    pub fn new(device: GpuDevice) -> Self {
        Self { device }
    }

    /// The device model launches are priced on.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }
}

impl<T: Scalar> ExecBackend<T> for SimGpuBackend {
    fn name(&self) -> &'static str {
        "sim-gpu"
    }

    fn launch(
        &self,
        a: &CsrMatrix<T>,
        rows: &[u32],
        kernel: KernelId,
        v: &[T],
        u: &mut [T],
    ) -> LaunchCost {
        let t0 = Instant::now();
        let stats = run_kernel(&self.device, a, rows, kernel, v, u);
        LaunchCost {
            stats: Some(stats),
            wall: t0.elapsed(),
        }
    }

    /// Per-bin launches priced with the index-stream discount: a bin
    /// whose payload moves fewer index bytes than the `nnz × 4` the
    /// functional CSR pricing charged — a delta-compressed SELL slab, or
    /// a structure-specialized tier whose metadata (run descriptors,
    /// diagonal offsets, one column pattern per row run) replaces
    /// per-element indices entirely — has the saved bytes subtracted
    /// from its modelled traffic (bandwidth-bound kernel times scale
    /// down with the bytes; compute-bound times are left alone).
    /// Execution stays per-bin and functional — only the price changes.
    fn launch_plan(
        &self,
        a: &CsrMatrix<T>,
        parts: &PlanParts<'_, T>,
        v: &[T],
        u: &mut [T],
    ) -> LaunchCost {
        let mut total = LaunchCost::default();
        for (d, p) in parts.dispatch.iter().zip(parts.payloads) {
            let mut cost = self.launch(a, &d.rows, d.kernel, v, u);
            let streamed = match p {
                BinPayload::Packed(packed) => Some(packed.index_stream_bytes()),
                BinPayload::DenseRun(runs) => Some(runs.index_stream_bytes()),
                BinPayload::Banded(band) => Some(band.index_stream_bytes()),
                BinPayload::RowRun(rr) => Some(rr.index_stream_bytes()),
                BinPayload::Csr | BinPayload::Blocked { .. } => None,
            };
            if let Some(bytes) = streamed {
                let saved = (d.nnz * std::mem::size_of::<u32>()).saturating_sub(bytes);
                if saved > 0 {
                    if let Some(stats) = &mut cost.stats {
                        stats.discount_traffic(saved as f64);
                    }
                }
            }
            total.accumulate(&cost);
        }
        total
    }

    /// Batched launches priced with matrix-traffic amortization: the
    /// matrix stream (column indices + values + row pointer) is charged
    /// in full for the **first** column of each RHS block and subtracted
    /// from the follow-up columns of the block — a batched kernel keeps
    /// the gathered element in registers and re-uses it across the
    /// block's x-lanes, so only the vector traffic repeats. Execution
    /// stays per-column (functionally identical to the default path);
    /// only the price changes. Bandwidth-bound kernel times scale with
    /// the removed bytes; compute-bound times are left alone.
    fn launch_plan_batch(
        &self,
        a: &CsrMatrix<T>,
        parts: &PlanParts<'_, T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> LaunchCost {
        // The analytic matrix stream of one full traversal: one u32
        // column index and one value per non-zero, plus the row pointer.
        let matrix_bytes = (a.nnz() * (std::mem::size_of::<u32>() + T::BYTES)
            + (a.n_rows() + 1) * std::mem::size_of::<usize>()) as f64;
        let mut total = LaunchCost::default();
        let mut u = vec![T::ZERO; a.n_rows()];
        for (c0, width) in rhs_blocks(x.k()) {
            for kk in 0..width {
                let v = x.column(c0 + kk);
                let mut cost = self.launch_plan(a, parts, &v, &mut u);
                y.set_column(c0 + kk, &u);
                if kk > 0 {
                    if let Some(stats) = &mut cost.stats {
                        stats.discount_traffic(matrix_bytes);
                    }
                }
                total.accumulate(&cost);
            }
        }
        total
    }
}

/// The native multithreaded CPU backend on the `spmv-parallel` pool.
///
/// [`KernelId`]s map onto the two CPU scheduling disciplines rather than
/// being emulated thread-for-thread:
///
/// * `Serial` (one work-item per row) → row-chunked dynamic scheduling —
///   the same "cheap on uniform short rows" trade-off;
/// * `Subvector(_)` / `Vector` (cooperative rows) → NNZ-balanced
///   partitioning of the bin's row list — the CPU's answer to long-row
///   load imbalance.
///
/// The fused worker cap honours the process placement at construction
/// ([`Default::default`] / [`new`](Self::new)): `SPMV_PLACEMENT`
/// (`flat`, `grouped:G`, `pinned:N`) with `SPMV_THREADS=N` as the
/// back-compat alias for `pinned:N` — see
/// [`spmv_parallel::topology`]. A malformed value of either variable
/// warns once on stderr and falls back to flat (all cores), so a typo
/// is never silently identical to unset. This makes bench runs
/// reproducible on shared CI boxes without recompiling.
/// [`with_workers`](Self::with_workers) still overrides it in code.
#[derive(Clone, Debug)]
pub struct NativeCpuBackend {
    /// Rows per scheduling chunk for the row-chunked path.
    grain: usize,
    /// Partitions per launch for the NNZ-balanced path.
    parts: usize,
    /// Worker cap for the fused paths (`0` = pool default).
    workers: usize,
}

impl Default for NativeCpuBackend {
    fn default() -> Self {
        // `Flat` means "no explicit cap" — keep 0 so with_workers-less
        // construction behaves exactly as before placement existed.
        let placement = Placement::from_env();
        let workers = match placement.policy {
            spmv_parallel::PlacementPolicy::Flat => 0,
            _ => placement.workers,
        };
        Self {
            grain: 256,
            parts: spmv_parallel::num_threads() * 4,
            workers,
        }
    }
}

impl NativeCpuBackend {
    /// Backend with the default scheduling parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the row-chunk grain (Serial path).
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain.max(1);
        self
    }

    /// Override the partition count (Subvector/Vector path).
    pub fn with_parts(mut self, parts: usize) -> Self {
        self.parts = parts.max(1);
        self
    }

    /// Cap the worker count of the fused single-scope paths (`0` restores
    /// the pool default). The pool's thread count is frozen per process,
    /// so thread-scaling sweeps go through this knob rather than the
    /// environment.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

impl<T: Scalar> ExecBackend<T> for NativeCpuBackend {
    fn name(&self) -> &'static str {
        "native-cpu"
    }

    fn launch(
        &self,
        a: &CsrMatrix<T>,
        rows: &[u32],
        kernel: KernelId,
        v: &[T],
        u: &mut [T],
    ) -> LaunchCost {
        let t0 = Instant::now();
        let result = match kernel {
            KernelId::Serial => spmv_rows_chunked(a, rows, self.grain, v, u),
            KernelId::Subvector(_) | KernelId::Vector => {
                spmv_rows_nnz_balanced(a, rows, self.parts, v, u)
            }
        };
        result.expect("plan validated dimensions");
        LaunchCost {
            stats: None,
            wall: t0.elapsed(),
        }
    }

    /// The fused path: one scoped parallel region over the precompiled
    /// tile queue, workers stealing across bins, packed bins executing
    /// from their SELL slabs. Sharded plans route through the
    /// shard-partitioned queues (home-first drain, ring-order stealing,
    /// first-touch on the first execution); flat plans keep the single
    /// shared cursor. Falls back to per-bin launches when the plan was
    /// compiled without a tile queue (`fused: false`).
    fn launch_plan(
        &self,
        a: &CsrMatrix<T>,
        parts: &PlanParts<'_, T>,
        v: &[T],
        u: &mut [T],
    ) -> LaunchCost {
        if parts.tiles.is_empty() {
            let mut total = LaunchCost::default();
            for d in parts.dispatch {
                let cost = self.launch(a, &d.rows, d.kernel, v, u);
                total.accumulate(&cost);
            }
            return total;
        }
        let t0 = Instant::now();
        match parts.shards {
            Some(shards) => run_plan_sharded(
                a,
                parts.dispatch,
                parts.payloads,
                parts.tiles,
                shards,
                self.workers,
                v,
                u,
            ),
            None => run_plan_fused(
                a,
                parts.dispatch,
                parts.payloads,
                parts.tiles,
                self.workers,
                v,
                u,
            ),
        }
        .expect("plan validated dimensions");
        LaunchCost {
            stats: None,
            wall: t0.elapsed(),
        }
    }

    /// The real batched path: register-blocked multi-RHS kernels over the
    /// (tile × RHS-block) work queue — one matrix traversal pays for a
    /// whole RHS block. Sharded plans route the (tile × block) items
    /// through the same per-shard queues as the single-vector path.
    /// Works for fused and unfused plans alike (the executor synthesizes
    /// whole-bin tiles when the queue is empty).
    fn launch_plan_batch(
        &self,
        a: &CsrMatrix<T>,
        parts: &PlanParts<'_, T>,
        x: &DenseBlock<T>,
        y: &mut DenseBlock<T>,
    ) -> LaunchCost {
        let t0 = Instant::now();
        run_plan_fused_batch(
            a,
            parts.dispatch,
            parts.payloads,
            parts.tiles,
            parts.tile_weights,
            parts.shards,
            self.workers,
            x,
            y,
        )
        .expect("plan validated dimensions");
        LaunchCost {
            stats: None,
            wall: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ALL_KERNELS;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;
    use spmv_sparse::scalar::approx_eq;

    fn probe() -> CsrMatrix<f64> {
        gen::mixture(
            600,
            800,
            &[
                RowRegime::new(1, 3, 0.5),
                RowRegime::new(20, 80, 0.4),
                RowRegime::new(200, 400, 0.1),
            ],
            true,
            11,
        )
    }

    #[test]
    fn backends_agree_with_reference_on_every_kernel() {
        let a = probe();
        let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i % 9) as f64) - 4.0).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let sim = SimGpuBackend::new(GpuDevice::kaveri());
        let cpu = NativeCpuBackend::new();
        for k in ALL_KERNELS {
            for (name, backend) in [("sim", &sim as &dyn ExecBackend<f64>), ("cpu", &cpu)] {
                let mut u = vec![0.0f64; a.n_rows()];
                backend.launch(&a, &rows, k, &v, &mut u);
                for i in 0..a.n_rows() {
                    assert!(
                        approx_eq(u[i], reference[i], a.row_nnz(i).max(1)),
                        "{name}/{k} row {i}: {} vs {}",
                        u[i],
                        reference[i]
                    );
                }
            }
        }
    }

    #[test]
    fn backends_only_touch_requested_rows() {
        let a = probe();
        let v = vec![1.0f64; a.n_cols()];
        let subset: Vec<u32> = (0..a.n_rows() as u32).step_by(3).collect();
        let sim = SimGpuBackend::new(GpuDevice::kaveri());
        let cpu = NativeCpuBackend::new();
        for backend in [&sim as &dyn ExecBackend<f64>, &cpu] {
            let mut u = vec![f64::NAN; a.n_rows()];
            backend.launch(&a, &subset, KernelId::Subvector(8), &v, &mut u);
            for (i, &x) in u.iter().enumerate() {
                if subset.contains(&(i as u32)) {
                    assert!(!x.is_nan(), "{} skipped row {i}", backend.name());
                } else {
                    assert!(x.is_nan(), "{} touched row {i}", backend.name());
                }
            }
        }
    }

    #[test]
    fn sim_backend_prices_native_does_not() {
        let a = probe();
        let v = vec![1.0f64; a.n_cols()];
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let mut u = vec![0.0f64; a.n_rows()];
        let sim_cost =
            SimGpuBackend::new(GpuDevice::kaveri()).launch(&a, &rows, KernelId::Serial, &v, &mut u);
        assert!(sim_cost.stats.is_some());
        assert!(sim_cost.cycles() > 0.0);
        let cpu_cost = NativeCpuBackend::new().launch(&a, &rows, KernelId::Serial, &v, &mut u);
        assert!(cpu_cost.stats.is_none());
        assert_eq!(cpu_cost.cycles(), 0.0);
    }

    #[test]
    fn default_backend_workers_follow_the_process_placement() {
        // The placement grammar itself (including the SPMV_THREADS alias
        // and malformed-value rejection) is unit-tested in
        // `spmv_parallel::topology`; here we only pin the mapping from
        // the resolved process placement to the backend's worker cap:
        // flat keeps the "no cap" default, everything else pins it.
        let placement = Placement::from_env();
        let backend = NativeCpuBackend::default();
        let expected = match placement.policy {
            spmv_parallel::PlacementPolicy::Flat => 0,
            _ => placement.workers,
        };
        assert_eq!(backend.workers, expected);
    }

    #[test]
    fn launch_cost_accumulates_both_clocks() {
        let stats = LaunchStats {
            cycles: 10.0,
            workgroups: 2,
            ..Default::default()
        };
        let mut total = LaunchCost {
            stats: None,
            wall: Duration::from_millis(1),
        };
        total.accumulate(&LaunchCost {
            stats: Some(stats.clone()),
            wall: Duration::from_millis(2),
        });
        total.accumulate(&LaunchCost {
            stats: Some(stats),
            wall: Duration::from_millis(3),
        });
        assert_eq!(total.wall, Duration::from_millis(6));
        assert_eq!(total.cycles(), 20.0);
        assert_eq!(total.stats.as_ref().unwrap().workgroups, 4);
    }
}
