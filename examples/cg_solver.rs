//! Conjugate-gradient solver on the auto-tuned SpMV (CPU backend).
//!
//! SpMV dominates CG iterations, so this example shows the intended
//! plan/execute usage: compile one [`SpmvPlan`] on the native CPU
//! backend up front, then execute it allocation-free inside the solver
//! loop. It solves a 2-D Poisson problem and verifies the residual
//! actually converges. Run with `cargo run --release --example cg_solver`.

use spmv_repro::autotune::prelude::*;
use spmv_repro::sparse::gen::laplacian_2d;
use spmv_repro::sparse::CsrMatrix;

/// Solve `A x = b` by conjugate gradients over a compiled plan; returns
/// (solution, residual history).
fn conjugate_gradient(
    a: &CsrMatrix<f64>,
    plan: &SpmvPlan<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
) -> (Vec<f64>, Vec<f64>) {
    let n = a.n_rows();
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
    let mut rs_old = dot(&r, &r);
    let mut history = vec![rs_old.sqrt()];
    for _ in 0..max_iters {
        plan.execute(a, &p, &mut ap).expect("pattern unchanged");
        let alpha = rs_old / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        history.push(rs_new.sqrt());
        if rs_new.sqrt() < tol {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    (x, history)
}

fn main() {
    let (gx, gy) = (120usize, 120usize);
    let a = laplacian_2d::<f64>(gx, gy);
    println!(
        "2-D Poisson operator: {} unknowns, {} nnz",
        a.n_rows(),
        a.nnz()
    );

    // Plan once: select a strategy with a reduced oracle search, freeze
    // the binning, and target the native CPU thread pool. Every CG
    // iteration below reuses this plan with zero re-tuning.
    let device = GpuDevice::kaveri();
    let tuner = Tuner::with_config(
        device,
        TunerConfig {
            granularities: vec![100, 1_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: true,
        },
    );
    let auto = AutoSpmv::with_tuner(tuner);
    let t_plan = std::time::Instant::now();
    let plan = auto.plan_native(&a);
    println!(
        "plan: {} on {} ({} launches/apply), compiled in {:.1?}",
        plan.strategy().describe(),
        plan.backend_name(),
        plan.launches(),
        t_plan.elapsed()
    );

    // Manufactured solution: x* = 1 everywhere → b = A·1.
    let x_star = vec![1.0f64; a.n_rows()];
    let b = a.spmv_seq_alloc(&x_star).unwrap();

    let t0 = std::time::Instant::now();
    let (x, history) = conjugate_gradient(&a, &plan, &b, 2_000, 1e-10);
    let elapsed = t0.elapsed();

    let err = x
        .iter()
        .zip(&x_star)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "converged in {} iterations, {:.1?} (residual {:.2e})",
        history.len() - 1,
        elapsed,
        history.last().unwrap()
    );
    println!("max |x - x*| = {err:.2e}");
    for (i, r) in history.iter().enumerate().step_by(history.len() / 10 + 1) {
        println!("  iter {i:>5}: residual {r:.3e}");
    }
    assert!(err < 1e-6, "CG failed to converge");
    println!("\nCG solved the system through one compiled SpMV plan.");
}
