//! The kernel pool (step 3 of the framework): nine SpMV kernels with the
//! same semantics but different thread organisations (§III-B, Algorithms
//! 3–5).
//!
//! * [`KernelId::Serial`] — one work-item per row (Algorithm 3). Cheap
//!   for very short rows, catastrophic on long ones (divergence +
//!   uncoalesced walks).
//! * [`KernelId::Subvector`]`(X)` for `X ∈ {2,4,8,16,32,64,128}` — `X`
//!   work-items cooperate on a row through an LDS staging buffer and a
//!   segmented reduction (Algorithm 4).
//! * [`KernelId::Vector`] — the whole 256-work-item work-group on one row
//!   (Algorithm 5). Best for very long rows.
//!
//! Every kernel executes *functionally* (the output vector is really
//! computed) while tracing its architectural behaviour on the simulated
//! device; [`run_kernel`] returns both the result (in `u`) and the priced
//! [`LaunchStats`]. Native CPU implementations live in [`cpu`].

pub mod cpu;
mod serial;
pub(crate) mod solve;
mod subvector;
pub mod table;

use spmv_gpusim::{GpuDevice, LaunchStats};
use spmv_sparse::{CsrMatrix, Scalar};

/// Work-group size used by every kernel (the paper fixes 256).
pub const WORKGROUP_SIZE: usize = 256;

/// LDS staging factor of the subvector/vector kernels (the paper's
/// `factor = 4`).
pub const FACTOR: usize = 4;

/// Identifier of one kernel in the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// One work-item per row.
    Serial,
    /// `X` work-items per row (`X ∈ {2,4,8,16,32,64,128}`).
    Subvector(u32),
    /// One 256-work-item work-group per row.
    Vector,
}

/// The full nine-kernel pool, in increasing threads-per-row order.
pub const ALL_KERNELS: [KernelId; 9] = [
    KernelId::Serial,
    KernelId::Subvector(2),
    KernelId::Subvector(4),
    KernelId::Subvector(8),
    KernelId::Subvector(16),
    KernelId::Subvector(32),
    KernelId::Subvector(64),
    KernelId::Subvector(128),
    KernelId::Vector,
];

impl KernelId {
    /// Work-items assigned to one row.
    pub fn threads_per_row(self) -> usize {
        match self {
            KernelId::Serial => 1,
            KernelId::Subvector(x) => x as usize,
            KernelId::Vector => WORKGROUP_SIZE,
        }
    }

    /// Stable index in [`ALL_KERNELS`] (used as the ML class label).
    pub fn index(self) -> usize {
        ALL_KERNELS
            .iter()
            .position(|&k| k == self)
            .expect("kernel not in pool")
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(i: usize) -> KernelId {
        ALL_KERNELS[i]
    }

    /// Short label (`serial`, `sub16`, `vector`).
    pub fn label(self) -> String {
        match self {
            KernelId::Serial => "serial".into(),
            KernelId::Subvector(x) => format!("sub{x}"),
            KernelId::Vector => "vector".into(),
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Execute `kernel` over the rows listed in `rows` (ascending row ids, as
/// produced by [`crate::binning::Bins::expand`]) on the simulated device:
/// `u[r] = Σ_j A[r, j] · v[j]` for each `r ∈ rows`, other entries of `u`
/// untouched. Returns the priced launch.
///
/// # Panics
///
/// Panics if `v`/`u` have the wrong length or a row id is out of range
/// (debug builds).
pub fn run_kernel<T: Scalar>(
    device: &GpuDevice,
    a: &CsrMatrix<T>,
    rows: &[u32],
    kernel: KernelId,
    v: &[T],
    u: &mut [T],
) -> LaunchStats {
    assert_eq!(v.len(), a.n_cols(), "input vector length");
    assert_eq!(u.len(), a.n_rows(), "output vector length");
    match kernel {
        KernelId::Serial => serial::run(device, a, rows, v, u),
        KernelId::Subvector(x) => {
            assert!(
                (2..=128).contains(&x) && x.is_power_of_two(),
                "subvector width {x} not supported"
            );
            subvector::run(device, a, rows, x as usize, v, u)
        }
        KernelId::Vector => subvector::run(device, a, rows, WORKGROUP_SIZE, v, u),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::csr::figure1_example;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;
    use spmv_sparse::scalar::approx_eq;

    fn check_all_kernels<T: Scalar>(a: &CsrMatrix<T>, v: &[T]) {
        let device = GpuDevice::kaveri();
        let reference = a.spmv_seq_alloc(v).unwrap();
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        for k in ALL_KERNELS {
            let mut u = vec![T::ZERO; a.n_rows()];
            let stats = run_kernel(&device, a, &rows, k, v, &mut u);
            assert!(stats.cycles > 0.0, "{k}: zero cycles");
            for i in 0..a.n_rows() {
                assert!(
                    approx_eq(u[i], reference[i], a.row_nnz(i)),
                    "{k}: row {i}: {} vs {}",
                    u[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn all_kernels_match_reference_on_figure1() {
        let a = figure1_example::<f64>();
        check_all_kernels(&a, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn all_kernels_match_reference_on_irregular_matrix() {
        let a = gen::mixture::<f32>(
            300,
            500,
            &[
                RowRegime::new(1, 3, 0.5),
                RowRegime::new(10, 80, 0.4),
                RowRegime::new(300, 450, 0.1),
            ],
            true,
            42,
        );
        let v: Vec<f32> = (0..a.n_cols()).map(|i| (i % 7) as f32 - 3.0).collect();
        check_all_kernels(&a, &v);
    }

    #[test]
    fn all_kernels_handle_empty_rows() {
        // A matrix with scattered empty rows.
        let a = gen::mixture::<f64>(
            100,
            100,
            &[RowRegime::new(1, 1, 0.5), RowRegime::new(2, 5, 0.5)],
            true,
            3,
        );
        // Remove some rows' entries by binning a submatrix: simpler — use
        // incidence with k=1 and prepend empty rows via COO.
        let mut coo = spmv_sparse::CooMatrix::<f64>::new(50, 20);
        for i in (0..50).step_by(3) {
            coo.push(i, i % 20, 1.0 + i as f64);
        }
        let b = coo.to_csr();
        let v: Vec<f64> = (0..20).map(|i| i as f64).collect();
        check_all_kernels(&b, &v);
        let _ = a;
    }

    #[test]
    fn kernels_only_touch_requested_rows() {
        let a = figure1_example::<f64>();
        let device = GpuDevice::kaveri();
        let v = [1.0, 1.0, 1.0, 1.0];
        for k in ALL_KERNELS {
            let mut u = vec![-99.0; 4];
            run_kernel(&device, &a, &[1, 3], k, &v, &mut u);
            assert_eq!(u[0], -99.0, "{k} touched row 0");
            assert_eq!(u[2], -99.0, "{k} touched row 2");
            assert_ne!(u[1], -99.0, "{k} skipped row 1");
            assert_ne!(u[3], -99.0, "{k} skipped row 3");
        }
    }

    #[test]
    fn empty_row_list_is_a_noop_launch() {
        let a = figure1_example::<f32>();
        let device = GpuDevice::kaveri();
        let v = [1.0f32; 4];
        let mut u = [0.0f32; 4];
        for k in ALL_KERNELS {
            let stats = run_kernel(&device, &a, &[], k, &v, &mut u);
            assert_eq!(stats.workgroups, 0, "{k}");
        }
    }

    #[test]
    fn kernel_id_index_roundtrip() {
        for (i, k) in ALL_KERNELS.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(KernelId::from_index(i), *k);
        }
    }

    #[test]
    fn threads_per_row_is_monotone_over_the_pool() {
        let t: Vec<usize> = ALL_KERNELS.iter().map(|k| k.threads_per_row()).collect();
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t[0], 1);
        assert_eq!(t[8], 256);
    }

    #[test]
    fn serial_beats_vector_on_short_rows_and_vice_versa() {
        let device = GpuDevice::kaveri();
        // Short rows: 4 NNZ each.
        let short = gen::random_uniform::<f32>(20_000, 20_000, 4, 4, 1);
        // Long rows: ~600 NNZ each.
        let long = gen::random_uniform::<f32>(600, 4_000, 600, 600, 2);
        let cost = |a: &CsrMatrix<f32>, k: KernelId| {
            let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
            let v = vec![1.0f32; a.n_cols()];
            let mut u = vec![0.0f32; a.n_rows()];
            run_kernel(&device, a, &rows, k, &v, &mut u).cycles
        };
        let s_short = cost(&short, KernelId::Serial);
        let v_short = cost(&short, KernelId::Vector);
        assert!(
            s_short < v_short,
            "short rows: serial {s_short} !< vector {v_short}"
        );
        let s_long = cost(&long, KernelId::Serial);
        let v_long = cost(&long, KernelId::Vector);
        assert!(
            v_long < s_long,
            "long rows: vector {v_long} !< serial {s_long}"
        );
    }

    #[test]
    fn midsize_rows_prefer_a_subvector_kernel() {
        // ~48-NNZ rows: some subvector width should beat both extremes,
        // the core claim behind the nine-kernel pool.
        let device = GpuDevice::kaveri();
        let a = gen::random_uniform::<f32>(8_000, 20_000, 40, 56, 3);
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let v = vec![1.0f32; a.n_cols()];
        let cost = |k: KernelId| {
            let mut u = vec![0.0f32; a.n_rows()];
            run_kernel(&device, &a, &rows, k, &v, &mut u).cycles
        };
        let serial = cost(KernelId::Serial);
        let vector = cost(KernelId::Vector);
        let best_sub = [2u32, 4, 8, 16, 32, 64, 128]
            .iter()
            .map(|&x| cost(KernelId::Subvector(x)))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_sub < serial && best_sub < vector,
            "sub {best_sub} vs serial {serial} / vector {vector}"
        );
    }
}
