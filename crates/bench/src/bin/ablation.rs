//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. granularity sweep — how total cycles respond to `U` on an irregular
//!    matrix (the stage-1 learning problem made visible);
//! 2. single-bin candidate on/off — the §IV-C extension folded into our
//!    tuner;
//! 3. device sweep — the tuner picks different strategies on different
//!    (simulated) hardware, the performance-portability argument;
//! 4. launch-overhead sensitivity — dearer dispatches push the tuner
//!    toward coarser binning.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin ablation`.

use spmv_autotune::binning::BinningScheme;
use spmv_autotune::kernels::ALL_KERNELS;
use spmv_autotune::prelude::*;
use spmv_autotune::tuner::TunerConfig;
use spmv_bench::table::{f3, Table};
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::CsrMatrix;

fn irregular() -> CsrMatrix<f32> {
    gen::mixture(
        60_000,
        60_000,
        &[
            RowRegime::new(1, 4, 0.55),
            RowRegime::new(10, 50, 0.30),
            RowRegime::new(100, 300, 0.12),
            RowRegime::new(600, 1200, 0.03),
        ],
        true,
        77,
    )
}

fn main() {
    let a = irregular();
    eprintln!("ablation matrix: {} rows, {} nnz", a.n_rows(), a.nnz());

    // ------------------------------------------------------------------
    println!("== Ablation 1: granularity sweep (per-bin best kernels) ==\n");
    let device = GpuDevice::kaveri();
    let tuner = Tuner::new(device.clone());
    let mut t = Table::new(vec!["U", "cycles (M)", "bins used", "distinct kernels"]);
    let mut best_u = (usize::MAX, f64::INFINITY);
    for u in [10usize, 50, 100, 500, 1_000, 10_000, 100_000] {
        let r = tuner.evaluate_scheme(&a, BinningScheme::Coarse { u });
        let mut kernels: Vec<KernelId> = r.choices.iter().map(|c| c.kernel).collect();
        kernels.sort_by_key(|k| k.index());
        kernels.dedup();
        if r.cycles < best_u.1 {
            best_u = (u, r.cycles);
        }
        t.row(vec![
            u.to_string(),
            f3(r.cycles / 1e6),
            r.choices.len().to_string(),
            kernels.len().to_string(),
        ]);
    }
    t.print();
    println!(
        "best U: {} — the stage-1 label the model must learn\n",
        best_u.0
    );

    // ------------------------------------------------------------------
    println!("== Ablation 2: single-bin candidate (the §IV-C extension) ==\n");
    let mut t = Table::new(vec![
        "matrix",
        "binned-only (M)",
        "with single-bin (M)",
        "winner",
    ]);
    for name in ["europe_osm", "D6-6", "crankseg_2", "apache1"] {
        let m = spmv_sparse::suite::by_name(name).unwrap().generate();
        let paper = Tuner::with_config(device.clone(), TunerConfig::paper()).tune(&m);
        let ext = Tuner::new(device.clone()).tune(&m);
        let winner = match ext.strategy.binning {
            BinningScheme::Single => "single-bin",
            _ => "binned",
        };
        t.row(vec![
            name.to_string(),
            f3(paper.cycles / 1e6),
            f3(ext.cycles / 1e6),
            winner.to_string(),
        ]);
    }
    t.print();
    println!();

    // ------------------------------------------------------------------
    println!("== Ablation 3: device sweep (performance portability) ==\n");
    let mut t = Table::new(vec!["device", "best U", "strategy"]);
    for dev in [
        GpuDevice::kaveri(),
        GpuDevice::discrete(),
        GpuDevice::embedded(),
    ] {
        let tuned = Tuner::with_config(dev.clone(), TunerConfig::paper()).tune(&a);
        let u = match tuned.strategy.binning {
            BinningScheme::Coarse { u } => u.to_string(),
            other => format!("{other:?}"),
        };
        t.row(vec![dev.name.clone(), u, tuned.strategy.describe()]);
    }
    t.print();
    println!();

    // ------------------------------------------------------------------
    println!("== Ablation 4: launch-overhead sensitivity ==\n");
    let mut t = Table::new(vec!["dispatch cycles", "best scheme", "bins used"]);
    for mult in [0.25f64, 1.0, 4.0, 16.0] {
        let mut dev = GpuDevice::kaveri();
        dev.launch_overhead_cycles = (dev.launch_overhead_cycles as f64 * mult) as u64;
        let tuned = Tuner::with_config(
            dev.clone(),
            TunerConfig {
                granularities: vec![10, 100, 1_000, 10_000, 100_000],
                kernels: ALL_KERNELS.to_vec(),
                include_single_bin: true,
            },
        )
        .tune(&a);
        let bins = tuned.winning_choices().len();
        t.row(vec![
            dev.launch_overhead_cycles.to_string(),
            tuned.strategy.binning.describe(),
            bins.to_string(),
        ]);
    }
    t.print();
    println!("\nexpected shape: dearer dispatches push toward fewer launches (coarser\nbinning or the single bin).");

    // ------------------------------------------------------------------
    println!("\n== Ablation 5: RCM reordering vs coalescing (locality sensitivity) ==\n");
    // A banded matrix destroyed by a random symmetric shuffle, then
    // restored by RCM: the simulated transaction count must respond the
    // way real coalescing hardware does.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use spmv_sparse::reorder::{bandwidth, permute_symmetric, reverse_cuthill_mckee, Permutation};
    let banded = gen::banded::<f32>(40_000, 4, 9);
    let mut idx: Vec<u32> = (0..banded.n_rows() as u32).collect();
    idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
    let shuffled = permute_symmetric(&banded, &Permutation::new(idx).unwrap());
    let rcm = reverse_cuthill_mckee(&shuffled);
    let restored = permute_symmetric(&shuffled, &rcm);
    let mut t = Table::new(vec![
        "ordering",
        "bandwidth",
        "serial-kernel transactions",
        "cycles (M)",
    ]);
    for (name, m) in [
        ("banded (original)", &banded),
        ("shuffled", &shuffled),
        ("RCM-restored", &restored),
    ] {
        let rows: Vec<u32> = (0..m.n_rows() as u32).collect();
        let v = vec![1.0f32; m.n_cols()];
        let mut u = vec![0.0f32; m.n_rows()];
        let stats =
            spmv_autotune::kernels::run_kernel(&device, m, &rows, KernelId::Serial, &v, &mut u);
        t.row(vec![
            name.to_string(),
            bandwidth(m).to_string(),
            stats.transactions.to_string(),
            f3(stats.cycles / 1e6),
        ]);
    }
    t.print();
    println!("\nexpected shape: shuffling inflates gather transactions; RCM restores them\nto near the original — locality and binning are complementary levers.");
}
