//! Batched (SpMM) throughput report: measures the register-blocked
//! multi-RHS path against K independent single-vector executes over the
//! Table II suite and emits `BENCH_batched.json`.
//!
//! For each matrix, each thread count in {1, N}, and each RHS width
//! `K ∈ {1, 2, 4, 8, 16}`, the report records:
//!
//! * `batched_gflops` — effective GFLOP/s of one `execute_batch`
//!   (`2 · nnz · K` flops per call);
//! * `sequential_gflops` — the same work as `K` single-vector
//!   `execute_unchecked` calls (the amortization baseline);
//! * `speedup_vs_k1` — batched GFLOP/s over this thread count's `K = 1`
//!   batched GFLOP/s: the matrix-traversal amortization headline;
//! * `matrix_bytes_per_output` — analytic matrix bytes streamed per
//!   output vector: `matrix_bytes · n_blocks(K) / K` (the single-vector
//!   path pays `matrix_bytes` per output).
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_batched`.
//!
//! Knobs: `SPMV_BENCH_ITERS` (timed iterations, default 10),
//! `SPMV_BENCH_BATCHED_OUT` (output path, default `BENCH_batched.json`),
//! `SPMV_BENCH_TINY=1` (three small synthetic matrices — CI smoke mode).

use spmv_autotune::prelude::*;
use spmv_bench::setup::{env_usize, load_suite, scaling_efficiency, sweep_threads};
use spmv_sparse::{gen, CsrMatrix, DenseBlock};
use std::fmt::Write as _;
use std::time::Instant;

const K_VALUES: [usize; 5] = [1, 2, 4, 8, 16];

struct Run {
    threads: usize,
    k: usize,
    batched_gflops: f64,
    sequential_gflops: f64,
    matrix_bytes_per_output: f64,
}

struct Row {
    name: String,
    m: usize,
    n: usize,
    nnz: usize,
    runs: Vec<Run>,
}

fn time_loop(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f(); // warm-up: page in slabs, populate value caches
    }
    // Best of three repetitions: the minimum is the standard robust
    // estimator for throughput on a machine with background noise.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn effective_gflops(nnz: usize, k: usize, iters: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 * k as f64 * iters as f64 / secs / 1e9
}

fn measure(name: &str, a: &CsrMatrix<f32>, iters: usize) -> Row {
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };
    let matrix_bytes = (a.nnz() * (std::mem::size_of::<u32>() + 4)
        + (a.n_rows() + 1) * std::mem::size_of::<usize>()) as f64;
    let thread_counts = sweep_threads();

    let mut runs = Vec::new();
    for &threads in &thread_counts {
        // Shard the tile queue to match the worker count, so the sweep
        // times the sharded runtime the executor actually ships.
        let verified = SpmvPlan::compile_with(
            a,
            strategy.clone(),
            Box::new(NativeCpuBackend::new().with_workers(threads)),
            PlanConfig {
                shards: threads,
                ..PlanConfig::default()
            },
        )
        .verify(a)
        .expect("plan must verify");

        for k in K_VALUES {
            let mut x = DenseBlock::<f32>::zeros(a.n_cols(), k);
            x.fill_with(|i, j| (((i * 7 + j * 3) % 9) as f32) - 4.0);
            let columns: Vec<Vec<f32>> = (0..k).map(|j| x.column(j)).collect();
            let mut y = DenseBlock::<f32>::zeros(a.n_rows(), k);
            let mut u = vec![0.0f32; a.n_rows()];

            let batched_secs = time_loop(iters, || {
                verified.execute_batch_unchecked(a, &x, &mut y).unwrap();
            });
            let sequential_secs = time_loop(iters, || {
                for v in &columns {
                    verified.execute_unchecked(a, v, &mut u).unwrap();
                }
            });
            // Cross-check before trusting the numbers: the last batched
            // run's final column must equal the last sequential output.
            assert_eq!(
                y.column(k - 1),
                u,
                "{name}: batched column {} diverges from sequential",
                k - 1
            );

            let n_blocks = rhs_blocks(k).len() as f64;
            runs.push(Run {
                threads,
                k,
                batched_gflops: effective_gflops(a.nnz(), k, iters, batched_secs),
                sequential_gflops: effective_gflops(a.nnz(), k, iters, sequential_secs),
                matrix_bytes_per_output: matrix_bytes * n_blocks / k as f64,
            });
        }
    }
    Row {
        name: name.to_string(),
        m: a.n_rows(),
        n: a.n_cols(),
        nnz: a.nnz(),
        runs,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let iters = env_usize("SPMV_BENCH_ITERS", 10);
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let out_path = std::env::var("SPMV_BENCH_BATCHED_OUT")
        .unwrap_or_else(|_| "BENCH_batched.json".to_string());

    let cases: Vec<(String, CsrMatrix<f32>)> = if tiny {
        vec![
            (
                "tiny-uniform4".into(),
                gen::random_uniform::<f32>(4_000, 4_000, 4, 4, 1),
            ),
            ("tiny-banded7".into(), gen::banded::<f32>(4_000, 3, 2)),
            (
                "tiny-powerlaw".into(),
                gen::powerlaw::<f32>(3_000, 1, 150, 2.1, 3),
            ),
        ]
    } else {
        load_suite()
            .into_iter()
            .map(|c| (c.meta.name.to_string(), c.matrix))
            .collect()
    };

    let mut rows = Vec::new();
    for (name, a) in &cases {
        eprintln!(
            "  benchmarking {name} ({} x {}, {} nnz) …",
            a.n_rows(),
            a.n_cols(),
            a.nnz()
        );
        rows.push(measure(name, a, iters));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"batched_exec\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(json, "  \"threads\": {},", spmv_parallel::num_threads()).unwrap();
    writeln!(
        json,
        "  \"threads_swept\": [{}],",
        sweep_threads()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(
        json,
        "  \"k_values\": [{}],",
        K_VALUES.map(|k| k.to_string()).join(", ")
    )
    .unwrap();
    writeln!(json, "  \"matrices\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"n\": {}, \"nnz\": {}, \"runs\": [",
            json_escape(&r.name),
            r.m,
            r.n,
            r.nnz
        )
        .unwrap();
        for (j, run) in r.runs.iter().enumerate() {
            let k1 = r
                .runs
                .iter()
                .find(|q| q.threads == run.threads && q.k == 1)
                .map(|q| q.batched_gflops)
                .unwrap_or(0.0);
            let speedup_vs_k1 = if k1 > 0.0 {
                run.batched_gflops / k1
            } else {
                0.0
            };
            let t1 = r
                .runs
                .iter()
                .find(|q| q.threads == 1 && q.k == run.k)
                .map(|q| q.batched_gflops)
                .unwrap_or(0.0);
            write!(
                json,
                "      {{\"threads\": {}, \"k\": {}, \"batched_gflops\": {:.3}, \
                 \"sequential_gflops\": {:.3}, \"speedup_vs_k1\": {:.3}, \
                 \"scaling_efficiency\": {:.3}, \
                 \"matrix_bytes_per_output\": {:.1}}}",
                run.threads,
                run.k,
                run.batched_gflops,
                run.sequential_gflops,
                speedup_vs_k1,
                scaling_efficiency(run.threads, run.batched_gflops, t1),
                run.matrix_bytes_per_output,
            )
            .unwrap();
            writeln!(json, "{}", if j + 1 < r.runs.len() { "," } else { "" }).unwrap();
        }
        write!(json, "    ]}}").unwrap();
        writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
