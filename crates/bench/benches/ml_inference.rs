//! Criterion microbench: decision-tree fitting and rule-set inference —
//! the "negligible overhead" claim of the prediction pass.

use criterion::{criterion_group, criterion_main, Criterion};
use spmv_ml::{AttrSpec, Dataset, DecisionTree, RuleSet, TreeConfig};

fn synthetic_dataset() -> Dataset {
    let attrs = vec![
        AttrSpec::numeric("M"),
        AttrSpec::numeric("NNZ"),
        AttrSpec::numeric("Avg_NNZ"),
        AttrSpec::numeric("Var_NNZ"),
    ];
    let mut d = Dataset::new(attrs, vec!["a".into(), "b".into(), "c".into()]);
    for i in 0..2000 {
        let m = (i % 100) as f64 * 100.0;
        let nnz = m * ((i % 7) + 1) as f64;
        let avg = nnz / m.max(1.0);
        let var = ((i * 31) % 97) as f64;
        let label = if avg < 3.0 {
            0
        } else if avg < 6.0 {
            1
        } else {
            2
        };
        d.push(&[m, nnz, avg, var], label);
    }
    d
}

fn bench_ml(c: &mut Criterion) {
    let d = synthetic_dataset();
    let cfg = TreeConfig::default();
    c.bench_function("tree_fit_2000x4", |b| {
        b.iter(|| DecisionTree::fit(&d, &cfg))
    });
    let tree = DecisionTree::fit(&d, &cfg);
    let rules = RuleSet::from_tree(&tree, &d, 0.25);
    let row = [5000.0, 20_000.0, 4.0, 55.0];
    c.bench_function("tree_predict", |b| b.iter(|| tree.predict(&row)));
    c.bench_function("ruleset_predict", |b| b.iter(|| rules.predict(&row)));
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
