//! Fused single-scope dispatch over a precompiled tile queue.
//!
//! The per-bin launch discipline ([`crate::pool`] / [`crate::scope`])
//! pays one full synchronization barrier per bin: every worker must
//! finish bin *k* before any worker may start bin *k + 1*, even though
//! the bins write disjoint rows and have no ordering constraint. For
//! plans with many small bins that barrier — not the arithmetic — is the
//! launch cost.
//!
//! [`fused_for_each`] replaces the sequence of launches with **one**
//! scoped parallel region over a flat queue of precompiled tiles. Workers
//! claim tiles from a shared atomic cursor, so a thread that finishes its
//! share of one bin's tiles immediately steals tiles of the next bin —
//! cross-bin work stealing with a single join at the end. The caller
//! orders the queue (heaviest tiles first gives LPT-style balance) and
//! guarantees tiles touch disjoint output; this module only supplies the
//! execution discipline.

use crate::scope::num_threads;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Execute `body(tile)` for every tile index in `[0, n)` inside a single
/// scoped parallel region. Tiles are claimed one at a time from a shared
/// cursor in queue order; `body` must be safe to run concurrently on
/// distinct indices (tiles must write disjoint data).
///
/// Degenerates to a sequential loop when `n <= 1` or only one thread is
/// available, so callers never pay a spawn for trivial queues.
pub fn fused_for_each<F>(n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    fused_for_each_with(0, n, body);
}

/// [`fused_for_each`] with an explicit worker cap: at most `workers`
/// threads participate (`0` means the pool default, [`num_threads`]).
/// The process-wide thread count is frozen at first use, so benches that
/// sweep thread counts within one process go through this entry.
pub fn fused_for_each_with<F>(workers: usize, n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let workers = if workers == 0 {
        num_threads()
    } else {
        workers.min(num_threads())
    }
    .min(n);
    if workers <= 1 {
        for t in 0..n {
            body(t);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= n {
                    break;
                }
                body(t);
            });
        }
    });
}

/// [`fused_for_each_with`] where every worker carries a private scratch
/// value, built once per worker by `init` and handed mutably to each
/// `body` call that worker makes. The cache-blocked SpMV executor uses
/// this for its per-row cursor/partial-sum buffers: allocating them per
/// tile would put a heap allocation on the hot path, while sharing them
/// across workers would race. The sequential degenerate case (`n <= 1`
/// or one worker) builds a single scratch and reuses it across all
/// tiles, so results cannot depend on how tiles map to workers — the
/// scratch contract is that `body` fully reinitialises whatever state it
/// reads.
pub fn fused_for_each_scratch<S, I, F>(workers: usize, n: usize, init: I, body: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let workers = if workers == 0 {
        num_threads()
    } else {
        workers.min(num_threads())
    }
    .min(n);
    if workers <= 1 {
        let mut scratch = init();
        for t in 0..n {
            body(&mut scratch, t);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut scratch = init();
                loop {
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    if t >= n {
                        break;
                    }
                    body(&mut scratch, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn every_tile_runs_exactly_once() {
        let n = 5_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        fused_for_each(n, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_tiles_run_inline() {
        fused_for_each(0, |_| panic!("no tiles, no calls"));
        let hit = AtomicUsize::new(0);
        fused_for_each(1, |t| {
            hit.fetch_add(t + 7, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn explicit_worker_cap_still_covers_every_tile() {
        let n = 2_000;
        for workers in [1, 2, 7] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            fused_for_each_with(workers, n, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers = {workers} missed or repeated a tile"
            );
        }
    }

    #[test]
    fn workers_steal_across_the_queue() {
        // With wildly uneven tiles, more than one thread should touch the
        // queue when hardware allows (can't assert timing, only
        // participation).
        if num_threads() < 2 {
            return;
        }
        let seen = Mutex::new(HashSet::new());
        fused_for_each(1_000, |t| {
            if t % 97 == 0 {
                std::thread::yield_now();
            }
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn scratch_variant_covers_every_tile_with_private_state() {
        let n = 3_000;
        for workers in [0, 1, 2, 5] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let inits = AtomicUsize::new(0);
            fused_for_each_scratch(
                workers,
                n,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, t| {
                    // Reinitialise-then-use, as the blocked executor does.
                    scratch.clear();
                    scratch.push(t);
                    hits[scratch[0]].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers = {workers} missed or repeated a tile"
            );
            let cap = if workers == 0 {
                num_threads()
            } else {
                workers.min(num_threads())
            }
            .max(1);
            let built = inits.load(Ordering::Relaxed);
            assert!(
                (1..=cap).contains(&built),
                "workers = {workers} built {built} scratches (cap {cap})"
            );
        }
    }

    #[test]
    fn disjoint_writes_compose_a_full_result() {
        // Tiles covering disjoint ranges of one buffer, as the SpMV
        // executor uses it.
        let n_items = 10_000usize;
        let tile = 64usize;
        let n_tiles = n_items.div_ceil(tile);
        let mut out = vec![0u64; n_items];
        {
            let ptr = SendSlice(out.as_mut_ptr());
            fused_for_each(n_tiles, |t| {
                let p = ptr;
                let start = t * tile;
                let end = (start + tile).min(n_items);
                for i in start..end {
                    // SAFETY: tile ranges are disjoint and in bounds; the
                    // scope joins before `out` is read.
                    unsafe { *p.0.add(i) = (i * i) as u64 };
                }
            });
        }
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (i * i) as u64);
        }
    }

    #[derive(Clone, Copy)]
    struct SendSlice(*mut u64);
    // SAFETY: test-only — used exclusively for disjoint writes inside the
    // fused scope, which joins before the buffer is read.
    unsafe impl Send for SendSlice {}
    // SAFETY: same disjoint-write discipline.
    unsafe impl Sync for SendSlice {}
}
