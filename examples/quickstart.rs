//! Quickstart: tune one matrix, inspect the chosen strategy, and verify
//! the result against the sequential reference.
//!
//! Run with `cargo run --release --example quickstart`.

use spmv_repro::autotune::prelude::*;
use spmv_repro::sparse::gen::{self, RowRegime};
use spmv_repro::sparse::scalar::approx_eq;
use spmv_repro::sparse::{FeatureSet, MatrixFeatures};

fn main() {
    // 1. Build an irregular sparse matrix: mostly tiny rows with a heavy
    //    tail — the kind of input where a single kernel choice loses.
    let a = gen::mixture::<f32>(
        30_000,
        30_000,
        &[
            RowRegime::new(1, 4, 0.70),
            RowRegime::new(16, 64, 0.25),
            RowRegime::new(400, 900, 0.05),
        ],
        true,
        2024,
    );
    let features = MatrixFeatures::extract(&a, FeatureSet::TableI);
    println!(
        "matrix: {} rows, {} nnz, avg {:.1} nnz/row (min {}, max {})",
        features.m, features.nnz, features.avg_nnz, features.min_nnz, features.max_nnz
    );

    // 2. Tune: exhaustive oracle over (granularity, kernel-per-bin).
    let device = GpuDevice::kaveri();
    let tuned = Tuner::new(device.clone()).tune(&a);
    println!("\nchosen strategy: {}", tuned.strategy.describe());
    for c in tuned.winning_choices() {
        println!(
            "  bin {:>3}: {:>6} rows, {:>8} nnz -> {}",
            c.bin_id, c.rows, c.nnz, c.kernel
        );
    }

    // 3. Execute and compare against the single-kernel defaults.
    let v: Vec<f32> = (0..a.n_cols()).map(|i| 1.0 + (i % 3) as f32).collect();
    let mut u = vec![0.0f32; a.n_rows()];
    let auto = run_strategy(&device, &a, &tuned.strategy, &v, &mut u);
    let mut scratch = vec![0.0f32; a.n_rows()];
    let serial = run_single_kernel(&device, &a, KernelId::Serial, &v, &mut scratch);
    let vector = run_single_kernel(&device, &a, KernelId::Vector, &v, &mut scratch);
    println!("\nsimulated time on {}:", device.name);
    println!("  kernel-auto  : {:.3} ms", auto.seconds * 1e3);
    println!(
        "  kernel-serial: {:.3} ms ({:.1}x slower)",
        serial.seconds * 1e3,
        serial.cycles / auto.cycles
    );
    println!(
        "  kernel-vector: {:.3} ms ({:.1}x slower)",
        vector.seconds * 1e3,
        vector.cycles / auto.cycles
    );

    // 4. Verify numerics against Algorithm 1.
    let reference = a.spmv_seq_alloc(&v).expect("dims match");
    let ok = (0..a.n_rows()).all(|i| approx_eq(u[i], reference[i], a.row_nnz(i)));
    println!("\nresult matches the sequential reference: {ok}");
    assert!(ok);
}
