//! Topology detection and worker placement policies.
//!
//! The execution layer used to know exactly one number: the process-wide
//! thread count (`SPMV_THREADS` capping [`crate::scope::num_threads`]).
//! That is enough for a flat pool but says nothing about *where* work
//! should live — on a multi-socket or core-clustered part, threads that
//! share a cache level should share a work queue, and threads that do
//! not should prefer their own. This module names that structure:
//!
//! * [`Topology`] — what the machine offers (worker count, group count);
//! * [`PlacementPolicy`] — what the user asked for (`flat`, `grouped:G`,
//!   `pinned:N`), generalizing the old `SPMV_THREADS` cap;
//! * [`Placement`] — the resolved decision: how many workers run and how
//!   many shards (per-group work queues) plans should be cut into.
//!
//! `SPMV_THREADS=N` keeps working as a back-compat alias for
//! `SPMV_PLACEMENT=pinned:N`. Malformed values of either variable are a
//! loud warning (once per process) and fall back to [`PlacementPolicy::
//! Flat`] — previously a typo was indistinguishable from unset.

use crate::scope::hardware_threads;
use std::sync::OnceLock;

/// What the machine offers: the frozen process thread count and the
/// number of worker groups (core clusters / sockets) placement may
/// model. Detection has no portable std API for cache or socket
/// structure, so `groups` defaults to 1; `SPMV_PLACEMENT=grouped:G`
/// overrides it explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Worker threads available to the process (the raw hardware budget:
    /// `SPMV_NUM_THREADS` or the machine's available parallelism).
    pub cores: usize,
    /// Worker groups sharing a cache level (1 when unknown).
    pub groups: usize,
}

impl Topology {
    /// Detect the process topology: the raw hardware thread budget, one
    /// group. Deliberately *not* [`crate::scope::num_threads`] — that is
    /// the placement-resolved worker count, which is derived from this
    /// ceiling (the other direction would be circular).
    pub fn detect() -> Self {
        Self {
            cores: hardware_threads().max(1),
            groups: 1,
        }
    }

    /// A synthetic topology for tests and sweeps.
    pub fn synthetic(cores: usize, groups: usize) -> Self {
        Self {
            cores: cores.max(1),
            groups: groups.max(1),
        }
    }
}

/// How workers and work queues should be laid out, generalizing the old
/// `SPMV_THREADS` worker cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// All workers share one flat queue — the pre-sharding behaviour and
    /// the default.
    Flat,
    /// Workers are split into `G` groups; plans are cut into `G` shards
    /// and each worker drains its group's shard before crossing groups.
    Grouped(usize),
    /// Exactly `N` workers, each the home of its own shard — maximal
    /// queue locality. `SPMV_THREADS=N` resolves to this.
    PinnedCount(usize),
}

/// A malformed placement request: which variable carried it and what the
/// unparsable value was. Surfaced as a one-shot warning by
/// [`Placement::from_env`] so a typo is never silently identical to
/// unset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementError {
    /// The environment variable the bad value came from.
    pub var: &'static str,
    /// The value that did not parse.
    pub value: String,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={:?} is not a valid placement (expected \"flat\", \
             \"grouped:G\", \"pinned:N\", or a positive thread count); \
             falling back to flat",
            self.var, self.value
        )
    }
}

impl std::error::Error for PlacementError {}

/// Parse an `SPMV_PLACEMENT` value: `flat`, `grouped:G`, or `pinned:N`
/// (`G`, `N` positive integers). Pure, so the grammar is unit-testable
/// without touching the process environment.
pub fn parse_placement(raw: &str) -> Result<PlacementPolicy, PlacementError> {
    let err = || PlacementError {
        var: "SPMV_PLACEMENT",
        value: raw.to_string(),
    };
    let s = raw.trim();
    if s.eq_ignore_ascii_case("flat") {
        return Ok(PlacementPolicy::Flat);
    }
    let positive = |v: &str| v.trim().parse::<usize>().ok().filter(|&n| n > 0);
    if let Some((head, tail)) = s.split_once(':') {
        let n = positive(tail).ok_or_else(err)?;
        return match head.trim().to_ascii_lowercase().as_str() {
            "grouped" => Ok(PlacementPolicy::Grouped(n)),
            "pinned" => Ok(PlacementPolicy::PinnedCount(n)),
            _ => Err(err()),
        };
    }
    Err(err())
}

/// Parse an `SPMV_THREADS` value as the back-compat alias for
/// `pinned:N`. Anything that is not a positive integer is an error —
/// including `"0"`, which used to silently mean "no cap".
pub fn parse_threads_alias(raw: &str) -> Result<PlacementPolicy, PlacementError> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .map(PlacementPolicy::PinnedCount)
        .ok_or_else(|| PlacementError {
            var: "SPMV_THREADS",
            value: raw.to_string(),
        })
}

/// A resolved placement: the policy that produced it, the worker count
/// parallel regions should use, and the shard count plans should be cut
/// into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The policy this placement was resolved from.
    pub policy: PlacementPolicy,
    /// Workers parallel regions run with (≥ 1, capped at the topology).
    pub workers: usize,
    /// Shards plans should partition their tile queues into (≥ 1;
    /// 1 means unsharded — the flat queue).
    pub shards: usize,
}

impl Placement {
    /// Resolve `policy` against `topo`:
    ///
    /// * `Flat` → all cores, one shard (the pre-sharding layout);
    /// * `Grouped(g)` → all cores, `g` shards (capped at the core count —
    ///   more groups than workers would leave permanent remote queues);
    /// * `PinnedCount(n)` → `min(n, cores)` workers, `n` shards (not
    ///   capped: a plan cut for more shards than this machine has workers
    ///   still executes correctly via cross-shard stealing, and stays
    ///   balanced if it ever runs where `n` workers exist).
    pub fn resolve(policy: PlacementPolicy, topo: Topology) -> Self {
        let (workers, shards) = match policy {
            PlacementPolicy::Flat => (topo.cores, 1),
            PlacementPolicy::Grouped(g) => (topo.cores, g.clamp(1, topo.cores)),
            PlacementPolicy::PinnedCount(n) => (n.clamp(1, topo.cores), n.max(1)),
        };
        Self {
            policy,
            workers,
            shards,
        }
    }

    /// The process placement: `SPMV_PLACEMENT` if set, else the
    /// `SPMV_THREADS` alias, else [`PlacementPolicy::Flat`] — resolved
    /// against the detected [`Topology`]. Malformed values warn on
    /// stderr **once per process** (see [`PlacementError`]) and fall
    /// back to `Flat`; unset variables stay silent.
    ///
    /// This is the **single entry point** for topology resolution:
    /// [`crate::scope::num_threads`] (and through it every flat parallel
    /// loop, the thread pool default, and the benches) returns
    /// `from_env().workers`, so no two layers of one process can observe
    /// different thread counts from the same environment.
    ///
    /// Cached after first use — plan compilation consults this, and
    /// re-parsing the environment per compile would put syscalls on a
    /// warm path.
    pub fn from_env() -> Self {
        static CACHED: OnceLock<Placement> = OnceLock::new();
        *CACHED.get_or_init(|| {
            let policy = match env_policy() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("warning: {e}");
                    PlacementPolicy::Flat
                }
            };
            Self::resolve(policy, Topology::detect())
        })
    }
}

/// The raw environment lookup behind [`Placement::from_env`]:
/// `SPMV_PLACEMENT` wins, `SPMV_THREADS` is the alias, unset is `Flat`.
fn env_policy() -> Result<PlacementPolicy, PlacementError> {
    if let Ok(raw) = std::env::var("SPMV_PLACEMENT") {
        if !raw.trim().is_empty() {
            return parse_placement(&raw);
        }
    }
    if let Ok(raw) = std::env::var("SPMV_THREADS") {
        if !raw.trim().is_empty() {
            return parse_threads_alias(&raw);
        }
    }
    Ok(PlacementPolicy::Flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_grammar_accepts_the_documented_forms() {
        assert_eq!(parse_placement("flat"), Ok(PlacementPolicy::Flat));
        assert_eq!(parse_placement(" Flat "), Ok(PlacementPolicy::Flat));
        assert_eq!(
            parse_placement("grouped:2"),
            Ok(PlacementPolicy::Grouped(2))
        );
        assert_eq!(
            parse_placement("pinned:8"),
            Ok(PlacementPolicy::PinnedCount(8))
        );
        assert_eq!(
            parse_placement("GROUPED: 4 "),
            Ok(PlacementPolicy::Grouped(4))
        );
    }

    #[test]
    fn placement_grammar_rejects_garbage_with_the_offending_value() {
        for bad in ["", "fast", "grouped", "grouped:0", "grouped:x", "pinned:-1"] {
            let e = parse_placement(bad).unwrap_err();
            assert_eq!(e.var, "SPMV_PLACEMENT");
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("falling back to flat"));
        }
    }

    #[test]
    fn threads_alias_is_pinned_count_and_rejects_zero() {
        assert_eq!(
            parse_threads_alias("3"),
            Ok(PlacementPolicy::PinnedCount(3))
        );
        assert_eq!(
            parse_threads_alias(" 5 "),
            Ok(PlacementPolicy::PinnedCount(5))
        );
        for bad in ["0", "", "two", "-3", "1.5"] {
            let e = parse_threads_alias(bad).unwrap_err();
            assert_eq!(e.var, "SPMV_THREADS");
        }
    }

    #[test]
    fn resolve_maps_policies_to_worker_and_shard_counts() {
        let topo = Topology::synthetic(8, 1);
        let flat = Placement::resolve(PlacementPolicy::Flat, topo);
        assert_eq!((flat.workers, flat.shards), (8, 1));
        let grouped = Placement::resolve(PlacementPolicy::Grouped(2), topo);
        assert_eq!((grouped.workers, grouped.shards), (8, 2));
        let over_grouped = Placement::resolve(PlacementPolicy::Grouped(32), topo);
        assert_eq!((over_grouped.workers, over_grouped.shards), (8, 8));
        let pinned = Placement::resolve(PlacementPolicy::PinnedCount(3), topo);
        assert_eq!((pinned.workers, pinned.shards), (3, 3));
        // More pinned workers than cores: workers clamp, shards do not —
        // the plan cut survives moving to a bigger machine.
        let over = Placement::resolve(PlacementPolicy::PinnedCount(16), topo);
        assert_eq!((over.workers, over.shards), (8, 16));
    }

    #[test]
    fn detect_is_consistent_with_num_threads() {
        // One topology per process: the free-function worker count IS
        // the resolved placement's, and never exceeds the hardware
        // budget detection reports.
        let t = Topology::detect();
        assert!(t.cores >= 1);
        assert_eq!(t.groups, 1);
        let p = Placement::from_env();
        assert_eq!(crate::scope::num_threads(), p.workers);
        assert!(p.workers <= t.cores);
    }
}
