//! PageRank by power iteration over a scale-free graph — the graph-
//! analytics workload class (dictionary28, europe_osm, …) that motivates
//! the paper's short-row kernels.
//!
//! Uses the simulated-GPU auto-tuned SpMV so every iteration also reports
//! modelled device time. Run with `cargo run --release --example pagerank`.

use spmv_repro::autotune::prelude::*;
use spmv_repro::sparse::gen::powerlaw;
use spmv_repro::sparse::CsrMatrix;

fn main() {
    let n = 20_000usize;
    let graph = powerlaw::<f32>(n, 1, 400, 2.1, 99);
    println!("graph: {} nodes, {} edges", n, graph.nnz());

    // Column-stochastic transition matrix: Aᵀ normalised by out-degree.
    // (Row r of Pᵀ holds the in-links of r, so PageRank is x ← Pᵀ x.)
    let mut pt = graph.transpose();
    let out_degree: Vec<f32> = (0..n).map(|i| graph.row_nnz(i).max(1) as f32).collect();
    // Normalise each stored value by the out-degree of its column (the
    // source node).
    {
        let cols: Vec<u32> = pt.col_idx().to_vec();
        for (k, val) in pt.values_mut().iter_mut().enumerate() {
            *val = 1.0 / out_degree[cols[k] as usize];
        }
    }

    // Tune once, plan once, iterate many times — the paper's intended
    // usage: the binning/prediction cost amortises across the solver's
    // iterations, and the compiled plan makes each iteration
    // allocation-free (no re-binning, no row-list rebuilds).
    let device = GpuDevice::kaveri();
    let tuned = Tuner::new(device.clone()).tune(&pt);
    let plan = SpmvPlan::compile(
        &pt,
        tuned.strategy.clone(),
        Box::new(SimGpuBackend::new(device)),
    );
    println!(
        "strategy: {} ({} launches/apply on {})",
        plan.strategy().describe(),
        plan.launches(),
        plan.backend_name()
    );

    let damping = 0.85f32;
    let mut rank = vec![1.0f32 / n as f32; n];
    let mut next = vec![0.0f32; n];
    let mut sim_seconds = 0.0f64;
    let mut iters = 0usize;
    for it in 0..100 {
        let cost = plan
            .execute(&pt, &rank, &mut next)
            .expect("pattern unchanged");
        sim_seconds += cost.stats.as_ref().map_or(0.0, |s| s.seconds);
        let teleport = (1.0 - damping) / n as f32;
        let mut delta = 0.0f32;
        for i in 0..n {
            let new = teleport + damping * next[i];
            delta += (new - rank[i]).abs();
            rank[i] = new;
        }
        iters = it + 1;
        if delta < 1e-6 {
            break;
        }
    }
    let mut top: Vec<(usize, f32)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "converged after {iters} iterations; simulated device time {:.2} ms total",
        sim_seconds * 1e3
    );
    println!("top-5 nodes by rank:");
    for (node, score) in top.iter().take(5) {
        println!(
            "  node {node:>6}: rank {score:.6} (in-degree {})",
            pt.row_nnz(*node)
        );
    }
    let sum: f32 = rank.iter().sum();
    println!("rank mass: {sum:.4} (should be ~1)");
    assert!((sum - 1.0).abs() < 1e-2);
    let _ = CsrMatrix::<f32>::zeros(0, 0); // keep the type in scope for docs
}
