//! SELL-C-σ-style packed storage for a row *subset*.
//!
//! The auto-tuner's binning groups rows of similar workload precisely so each
//! bin can run a kernel shaped for its workload — but a bin stored as a
//! CSR row list still pays one `row_ptr` lookup, one loop setup, and an
//! irregular short inner loop per row. [`PackedSell`] removes that
//! overhead for the low/mid-NNZ bins where it dominates:
//!
//! * the bin's rows are sorted by NNZ descending (the "σ" sort, with σ =
//!   the whole bin — bins are already workload-homogeneous), with
//!   equal-length rows ordered by minimum column: structurally similar
//!   rows land in the same chunk, which is what the per-column base
//!   anchors below monetise;
//! * consecutive groups of `C` rows form a *chunk* whose columns are laid
//!   out column-major (`lane` fastest), so one pass over a chunk streams
//!   `C` rows in lock-step with unit-stride loads — the shape a compiler
//!   auto-vectorises and the paper's SELL/ELL-family references exploit;
//! * within a chunk, lanes longer than the shortest row form a *ragged
//!   tail*: because lanes are length-sorted, the active lanes at column
//!   `j` are always a prefix, so the kernel never multiplies padding.
//!   Padding exists only as unread storage slots, which keeps results
//!   **bit-for-bit identical** to the sequential CSR reference (same
//!   per-row `mul_add_` order, no `0 · v[0]` terms that would break
//!   `-0.0` sums or NaN-propagate from an infinite `v` entry).
//!
//! SpMV is bandwidth-bound, and after the compute side is vectorised the
//! column-index stream is the next biggest payload: a full `u32` per
//! non-zero. The slab therefore stores **delta-compressed** column
//! indices, and every chunk prices two anchor layouts at pack time and
//! keeps the cheaper one ([`BaseMode`]):
//!
//! * **chunk anchors** — one `u32` base (the chunk's minimum column),
//!   deltas covering the chunk's column span;
//! * **column anchors** — one `u32` base per dense column position (the
//!   minimum over the active lanes there), deltas covering only the
//!   *lane spread* at each position. A row may range across the whole
//!   matrix and still take 1-byte deltas, as long as its chunk-mates
//!   track it — the inter-row locality the length sort's minimum-column
//!   tie-break deliberately concentrates.
//!
//! Deltas are stored in the narrowest of `u8`/`u16`/`u32` lanes that
//! fits the chosen anchor's worst delta ([`IndexKind`]), **per chunk**:
//! the pools for the three widths are separate vectors, so one
//! wide-span chunk no longer drags the whole bin to 4-byte lanes. The
//! widths are proven feasible at pack time and **re-proven at every
//! slab refresh** (each gathered column must satisfy `base ≤ col`,
//! `col − base ≤ width` and `col < n_cols`), which is what keeps the
//! unchecked `v[col]` gathers licensed: the kernels decode
//! `base + delta` and that decode reconstructs exactly the proven
//! column. A chunk covers whole rows, so its column *sets* — hence its
//! anchors and spans — are invariant under supported in-place mutations
//! ([`CsrMatrix::sort_rows`], value updates); a mutation that moved a
//! column outside its pack-time window is caught by the refresh proof.
//! The dense phase also issues software prefetches for the gathered `x`
//! elements a few unroll windows ahead when `x` is too large for L1 —
//! the gather is the only irregular access left, so hiding its latency
//! is where the remaining memory time goes.
//!
//! Columns and values are cached in a slab keyed by
//! [`CsrMatrix::values_id`], so a compiled plan executes with zero
//! indirection in the steady state and transparently re-gathers the slab
//! after a value update. Columns travel with the values because an
//! in-place mutation such as [`CsrMatrix::sort_rows`] permutes the
//! `(col, val)` pairs *within* each row without touching `row_ptr`: the
//! positional `src` map stays valid, but both halves of each slot must
//! be re-read or the slab would pair stale columns with fresh values.
//!
//! Storage padding is bounded: [`PackedSell::padding_ratio`] reports
//! `slots / nnz`, and plan compilation falls back to the CSR row list
//! when the ratio exceeds its bound (one dense row among empties would
//! otherwise inflate the slab `C`-fold).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::sync::RwLock;

/// Sentinel in the `src` map marking a padding slot (never read by the
/// kernels; kept so [`refresh`](PackedSell::ensure_values) is branch-light
/// and [`check_against`](PackedSell::check_against) can prove slab shape).
pub const SRC_PAD: u32 = u32::MAX;

/// Lane width of the delta-compressed column-index stream.
///
/// Each chunk stores one `u32` base column; per-slot indices are deltas
/// from that base in this width. `U8`/`U16` cut the dominant index
/// payload 4×/2× for matrices whose chunks span few columns (banded,
/// block-local, low-bandwidth reorderings); `U32` is always feasible and
/// is the uncompressed fallback. Ordered by width so
/// [`IndexKind::narrowest_for`] and widening comparisons read naturally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexKind {
    /// 1-byte deltas: every chunk spans ≤ 255 columns.
    U8,
    /// 2-byte deltas: every chunk spans ≤ 65 535 columns.
    U16,
    /// 4-byte deltas (no compression); always feasible.
    U32,
}

impl IndexKind {
    /// Bytes per stored column index.
    pub fn bytes(self) -> usize {
        match self {
            IndexKind::U8 => 1,
            IndexKind::U16 => 2,
            IndexKind::U32 => 4,
        }
    }

    /// Largest delta this width can encode.
    pub fn max_delta(self) -> u32 {
        match self {
            IndexKind::U8 => u8::MAX as u32,
            IndexKind::U16 => u16::MAX as u32,
            IndexKind::U32 => u32::MAX,
        }
    }

    /// The narrowest width whose [`max_delta`](Self::max_delta) covers
    /// `span`.
    pub fn narrowest_for(span: u32) -> IndexKind {
        if span <= IndexKind::U8.max_delta() {
            IndexKind::U8
        } else if span <= IndexKind::U16.max_delta() {
            IndexKind::U16
        } else {
            IndexKind::U32
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexKind::U8 => "u8",
            IndexKind::U16 => "u16",
            IndexKind::U32 => "u32",
        })
    }
}

/// A storage lane type for the delta stream. Sealed inside this module:
/// the kernels are generic over the lane so each width gets its own
/// monomorphised loop, but no public API mentions the trait.
trait IndexLane: Copy + Send + Sync + 'static {
    /// The [`IndexKind`] this lane realises.
    const KIND: IndexKind;
    /// Widen a stored delta back to `u32`.
    fn widen(self) -> u32;
    /// Narrow a delta proven `≤ KIND.max_delta()`.
    fn narrow(delta: u32) -> Self;
}

impl IndexLane for u8 {
    const KIND: IndexKind = IndexKind::U8;
    #[inline(always)]
    fn widen(self) -> u32 {
        self as u32
    }
    #[inline(always)]
    fn narrow(delta: u32) -> Self {
        debug_assert!(delta <= Self::KIND.max_delta());
        delta as u8
    }
}

impl IndexLane for u16 {
    const KIND: IndexKind = IndexKind::U16;
    #[inline(always)]
    fn widen(self) -> u32 {
        self as u32
    }
    #[inline(always)]
    fn narrow(delta: u32) -> Self {
        debug_assert!(delta <= Self::KIND.max_delta());
        delta as u16
    }
}

impl IndexLane for u32 {
    const KIND: IndexKind = IndexKind::U32;
    #[inline(always)]
    fn widen(self) -> u32 {
        self
    }
    #[inline(always)]
    fn narrow(delta: u32) -> Self {
        delta
    }
}

/// How a chunk anchors its column deltas.
///
/// `Chunk` stores one base (the chunk's minimum column): one `u32` of
/// overhead, but the deltas must cover the chunk's full column *span*,
/// which is bounded below by each row's own span — a single long-range
/// row keeps every lane wide. `Column` stores one base per dense column
/// position (the minimum over the lanes active there): 4 bytes per
/// column of overhead, but the deltas cover only the *lane spread* at
/// each position, which is tiny whenever chunk-mates have similar
/// structure (banded neighbours, identical block rows, degree-sorted
/// mesh nodes) no matter how far each row itself ranges. Pack time
/// prices both per chunk and keeps the cheaper stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseMode {
    /// One base for the whole chunk.
    Chunk,
    /// One base per dense column position.
    Column,
}

impl std::fmt::Display for BaseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BaseMode::Chunk => "chunk",
            BaseMode::Column => "column",
        })
    }
}

/// A chunk's base table as the kernels read it: a constant (`Chunk`
/// mode — hoisted out of the column loop) or a per-column slice
/// (`Column` mode). Sealed like [`IndexLane`]; the kernels are generic
/// over it so each mode gets its own monomorphised loop with no
/// per-column branch.
trait BaseSrc: Copy {
    fn at(&self, j: usize) -> u32;
}

#[derive(Clone, Copy)]
struct ConstBase(u32);

impl BaseSrc for ConstBase {
    #[inline(always)]
    fn at(&self, _j: usize) -> u32 {
        self.0
    }
}

#[derive(Clone, Copy)]
struct SliceBase<'a>(&'a [u32]);

impl BaseSrc for SliceBase<'_> {
    #[inline(always)]
    fn at(&self, j: usize) -> u32 {
        self.0[j]
    }
}

/// The delta streams, one pool per lane width: each chunk's slots live
/// contiguously in the pool matching its realised [`IndexKind`], at the
/// offset recorded in the payload's `lane_off` table. Three typed
/// vectors — rather than one byte slab reinterpreted per chunk — keep
/// every access aligned and safe while letting neighbouring chunks
/// realise different widths.
#[derive(Clone)]
struct ColSlab {
    c8: Vec<u8>,
    c16: Vec<u16>,
    c32: Vec<u32>,
}

impl ColSlab {
    /// Pools sized by total slots per width, in [`IndexKind`] order.
    fn zeroed(tallies: [usize; 3]) -> Self {
        ColSlab {
            c8: vec![0; tallies[0]],
            c16: vec![0; tallies[1]],
            c32: vec![0; tallies[2]],
        }
    }

    /// Widened delta at `idx` of the `kind` pool (check/diagnostic path).
    fn delta_at(&self, kind: IndexKind, idx: usize) -> u32 {
        match kind {
            IndexKind::U8 => self.c8[idx] as u32,
            IndexKind::U16 => self.c16[idx] as u32,
            IndexKind::U32 => self.c32[idx],
        }
    }
}

/// The cached (columns, values) slab and the generation it mirrors.
/// Both halves live under one lock so readers always observe a coherent
/// pairing, even if a refresh races a concurrent execute.
struct ValueSlab<T> {
    /// `CsrMatrix::values_id` of the matrix state the slab mirrors.
    source: u64,
    /// Column deltas, column-major per chunk; padding slots hold `0`.
    /// Every non-padding entry's decoded column (`base + delta`) was
    /// asserted `< n_cols` when gathered, which is what licenses the
    /// unchecked `v[col]` gathers.
    cols: ColSlab,
    /// One entry per storage slot; padding slots hold `T::ZERO`.
    vals: Vec<T>,
}

/// A borrowed, coherent view of a [`PackedSell`] slab — obtained only
/// through [`PackedSell::with_slab`], never constructed by callers. The
/// kernels gather `v[col]` without per-element bound checks, so the
/// column streams must be the validated slab contents; keeping the
/// fields private makes that unforgeable from safe code.
#[derive(Clone, Copy)]
pub struct SlabView<'a, T> {
    c8: &'a [u8],
    c16: &'a [u16],
    c32: &'a [u32],
    vals: &'a [T],
}

/// Threshold on `n_cols · sizeof(T)` above which the dense phase issues
/// software prefetches for the gathered `x` elements: when `x` fits L1
/// the hint is pure overhead, beyond it the gather is the dominant
/// latency.
const PF_MIN_X_BYTES: usize = 32 * 1024;

/// How many dense unroll windows ahead the prefetch runs.
const PF_DIST: usize = 4;

/// Hint the CPU to pull `v[idx]` toward L1. Never reads memory.
#[inline(always)]
fn prefetch_read<T>(v: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint — it cannot fault even
    // on an unmapped address, and the pointer itself is formed with
    // `wrapping_add`, which is defined for any `idx`. No memory is read
    // or written.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(v.as_ptr().wrapping_add(idx) as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (v, idx);
}

/// The realised encoding of one chunk: base mode, lane width, and the
/// base table (one entry in `Chunk` mode, `width` entries in `Column`
/// mode).
struct ChunkEncoding {
    mode: BaseMode,
    kind: IndexKind,
    bases: Vec<u32>,
}

/// Price both base modes for one chunk and keep the cheaper stream.
///
/// `Chunk` anchoring pays `slots × width(span)` delta bytes plus one
/// base; `Column` anchoring pays `slots × width(spread)` plus one base
/// per dense column, where `spread` is the worst lane spread at any
/// column position. The choice is deterministic (ties prefer `Chunk`,
/// whose base table is smaller and whose base load hoists out of the
/// kernel's column loop), so [`PackedSell::check_against`] re-derives
/// it and rejects a payload whose stored encoding differs. A floor of
/// [`IndexKind::U32`] makes both candidates 4-byte lanes and `Chunk`
/// win the tie everywhere — exactly the uncompressed baseline layout.
fn choose_encoding<T: Scalar>(
    a: &CsrMatrix<T>,
    lane_rows: &[u32],
    width: usize,
    floor: IndexKind,
) -> ChunkEncoding {
    let lanes = lane_rows.len();
    let mut col_lo = vec![u32::MAX; width];
    let mut col_hi = vec![0u32; width];
    let (mut lo, mut hi, mut any) = (u32::MAX, 0u32, false);
    for &r in lane_rows {
        let (rcols, _) = a.row(r as usize);
        for (j, &col) in rcols.iter().enumerate() {
            col_lo[j] = col_lo[j].min(col);
            col_hi[j] = col_hi[j].max(col);
            lo = lo.min(col);
            hi = hi.max(col);
            any = true;
        }
    }
    if !any {
        // No entries: nothing to anchor; a single zero base keeps the
        // decode well-defined for the (all-padding) slots.
        return ChunkEncoding {
            mode: BaseMode::Chunk,
            kind: floor,
            bases: vec![0],
        };
    }
    // Every dense column position has at least one active lane (lane 0
    // is the chunk's widest row), so `col_lo` is fully populated.
    let spread = col_lo
        .iter()
        .zip(&col_hi)
        .map(|(&l, &h)| h - l)
        .max()
        .unwrap_or(0);
    let w_chunk = floor.max(IndexKind::narrowest_for(hi - lo));
    let w_col = floor.max(IndexKind::narrowest_for(spread));
    let slots = width * lanes;
    let bytes_chunk = slots * w_chunk.bytes() + std::mem::size_of::<u32>();
    let bytes_col = slots * w_col.bytes() + width * std::mem::size_of::<u32>();
    if bytes_col < bytes_chunk {
        ChunkEncoding {
            mode: BaseMode::Column,
            kind: w_col,
            bases: col_lo,
        }
    } else {
        ChunkEncoding {
            mode: BaseMode::Chunk,
            kind: w_chunk,
            bases: vec![lo],
        }
    }
}

/// A row subset packed into length-sorted, column-major chunks of `C`
/// lanes (SELL-C-σ with σ = the whole subset), with the column-index
/// stream delta-compressed per chunk (see the module docs). Built once
/// per sparsity pattern by plan compilation; executes many times.
pub struct PackedSell<T: Scalar> {
    /// Lanes per chunk (`C`).
    chunk: usize,
    /// Column count of the source matrix. Every non-padding slot's
    /// decoded column index is validated against this bound each time
    /// the slab is gathered, which is what licenses the unchecked
    /// gathers in the kernels.
    n_cols: usize,
    /// Widest realised lane width over the chunks — the bin-level width
    /// recorded in dispatch formats; `kinds` has the per-chunk widths.
    index: IndexKind,
    /// The caller's width floor: no chunk realises narrower, and
    /// [`check_against`](Self::check_against) re-derives every chunk's
    /// encoding under the same floor.
    floor: IndexKind,
    /// Row ids in packed (length-sorted) order.
    rows: Vec<u32>,
    /// NNZ of each packed row (same order as `rows`).
    lens: Vec<u32>,
    /// Slot offset of each chunk's slab; length `n_chunks + 1`.
    chunk_off: Vec<usize>,
    /// Per-chunk realised delta width.
    kinds: Vec<IndexKind>,
    /// Per-chunk base mode.
    modes: Vec<BaseMode>,
    /// Base tables, all chunks concatenated (split by `base_off`): one
    /// entry for a [`BaseMode::Chunk`] chunk, `width` entries for a
    /// [`BaseMode::Column`] chunk. Deltas are relative to these.
    bases: Vec<u32>,
    /// Offset of each chunk's base table in `bases`; length `n_chunks + 1`.
    base_off: Vec<usize>,
    /// Slot offset of each chunk's lanes inside the pool of its width;
    /// length `n_chunks`.
    lane_off: Vec<usize>,
    /// CSR value positions per slot ([`SRC_PAD`] for padding slots).
    src: Vec<u32>,
    /// Non-zeros actually stored (excluding padding slots).
    nnz: usize,
    /// Cached column deltas + values, refreshed together when the source
    /// matrix's value generation changes.
    vals: RwLock<ValueSlab<T>>,
}

impl<T: Scalar> PackedSell<T> {
    /// Pack `rows` of `a` into chunks of `chunk` lanes with the
    /// narrowest feasible index width (equivalent to
    /// [`from_rows_with_index`](Self::from_rows_with_index) with an
    /// [`IndexKind::U8`] floor). Rows are sorted by NNZ descending,
    /// equal lengths by minimum column (stable beyond that, so fully
    /// tied rows keep their input order); the caller's list is not
    /// modified. The value slab is gathered immediately from `a`'s
    /// current values.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`, a row id is out of bounds, or `a.nnz()`
    /// overflows the `u32` source map.
    pub fn from_rows(a: &CsrMatrix<T>, rows: &[u32], chunk: usize) -> Self {
        Self::from_rows_with_index(a, rows, chunk, IndexKind::U8)
    }

    /// Pack `rows` of `a` into chunks of `chunk` lanes, storing column
    /// indices per chunk in the narrowest width that is **at least**
    /// `min_index` and fits the chunk's cheaper anchor layout (chunk
    /// span or per-column lane spread — see [`BaseMode`]). `min_index`
    /// is a floor, not a promise: an infeasible request is silently
    /// widened — `U32` always succeeds — and the widest realised width
    /// is reported by [`index_kind`](Self::index_kind). Pass
    /// [`IndexKind::U32`] to force the uncompressed layout (every chunk
    /// then realises 4-byte lanes with a single chunk anchor).
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`, a row id is out of bounds, or `a.nnz()`
    /// overflows the `u32` source map.
    pub fn from_rows_with_index(
        a: &CsrMatrix<T>,
        rows: &[u32],
        chunk: usize,
        min_index: IndexKind,
    ) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(
            a.nnz() < SRC_PAD as usize,
            "matrix too large for the u32 source map"
        );
        let row_ptr = a.row_ptr();
        let mut order: Vec<u32> = rows.to_vec();
        // Primary: NNZ descending (the SELL length sort). Tie-break:
        // minimum column, so equal-length rows with nearby column sets
        // share a chunk — the locality the Column base mode prices.
        // Each row's dot product is accumulated independently, so lane
        // placement cannot change any result bit.
        order.sort_by_key(|&r| {
            let (rcols, _) = a.row(r as usize);
            (
                std::cmp::Reverse(rcols.len()),
                rcols.iter().copied().min().unwrap_or(u32::MAX),
            )
        });
        let lens: Vec<u32> = order
            .iter()
            .map(|&r| a.row_nnz(r as usize) as u32)
            .collect();

        let n_chunks = order.len().div_ceil(chunk);
        let mut chunk_off = Vec::with_capacity(n_chunks + 1);
        chunk_off.push(0usize);
        let mut slots = 0usize;
        for c in 0..n_chunks {
            let lane0 = c * chunk;
            let lanes = (order.len() - lane0).min(chunk);
            // Widest lane first within each chunk (global desc sort).
            let width = lens[lane0] as usize;
            slots += width * lanes;
            chunk_off.push(slots);
        }

        let mut src = vec![SRC_PAD; slots];
        for (c, &off) in chunk_off.iter().take(n_chunks).enumerate() {
            let lane0 = c * chunk;
            let lanes = (order.len() - lane0).min(chunk);
            let width = lens[lane0] as usize;
            for (lane, (&r, &len)) in order[lane0..lane0 + lanes]
                .iter()
                .zip(&lens[lane0..lane0 + lanes])
                .enumerate()
            {
                let base = row_ptr[r as usize];
                for j in 0..len as usize {
                    src[off + j * lanes + lane] = (base + j) as u32;
                }
                debug_assert!(len as usize <= width);
            }
        }

        // Pack-time compression proof: per chunk, price both anchor
        // layouts and keep the cheaper (mode, width, bases). A chunk
        // covers whole rows, so its column sets — hence anchors and
        // spans — are invariant under `sort_rows` (which only permutes
        // within rows) and value updates; the refresh proof in
        // `ensure_values` re-checks every decode anyway.
        let mut kinds = Vec::with_capacity(n_chunks);
        let mut modes = Vec::with_capacity(n_chunks);
        let mut bases = Vec::new();
        let mut base_off = Vec::with_capacity(n_chunks + 1);
        base_off.push(0usize);
        let mut lane_off = Vec::with_capacity(n_chunks);
        let mut tallies = [0usize; 3];
        for c in 0..n_chunks {
            let lane0 = c * chunk;
            let lanes = (order.len() - lane0).min(chunk);
            let width = lens[lane0] as usize;
            let enc = choose_encoding(a, &order[lane0..lane0 + lanes], width, min_index);
            lane_off.push(tallies[enc.kind as usize]);
            tallies[enc.kind as usize] += width * lanes;
            kinds.push(enc.kind);
            modes.push(enc.mode);
            bases.extend_from_slice(&enc.bases);
            base_off.push(bases.len());
        }
        let index = kinds.iter().copied().max().unwrap_or(min_index);

        let nnz: usize = lens.iter().map(|&l| l as usize).sum();
        let packed = Self {
            chunk,
            n_cols: a.n_cols(),
            index,
            floor: min_index,
            rows: order,
            lens,
            chunk_off,
            kinds,
            modes,
            bases,
            base_off,
            lane_off,
            src,
            nnz,
            vals: RwLock::new(ValueSlab {
                // `values_id` generations start at 1, so 0 always forces
                // the gather below to populate cols + vals.
                source: 0,
                cols: ColSlab::zeroed(tallies),
                vals: vec![T::ZERO; slots],
            }),
        };
        packed.ensure_values(a);
        packed
    }

    /// Lanes per chunk (`C`).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Widest realised width of the delta-compressed column-index
    /// stream across the chunks (individual chunks may be narrower).
    pub fn index_kind(&self) -> IndexKind {
        self.index
    }

    /// Chunks whose deltas anchor on per-column bases
    /// ([`BaseMode::Column`]) rather than a single chunk base.
    pub fn column_anchored_chunks(&self) -> usize {
        self.modes
            .iter()
            .filter(|&&m| m == BaseMode::Column)
            .count()
    }

    /// Base column the deltas of chunk `c`, dense position `j` are
    /// relative to.
    fn base_at(&self, c: usize, j: usize) -> u32 {
        match self.modes[c] {
            BaseMode::Chunk => self.bases[self.base_off[c]],
            BaseMode::Column => self.bases[self.base_off[c] + j],
        }
    }

    /// Suggest a chunk height aligned to the subset's *identical-row
    /// runs*: maximal groups of consecutive packed rows with exactly
    /// the same column list (block-structured matrices produce runs of
    /// the block size). Lanes that are copies of each other have zero
    /// spread at every dense position, so a run-aligned chunk realises
    /// 1-byte column-anchored deltas regardless of how far the rows
    /// range. Returns the dominant run length (clamped to 16) when such
    /// runs cover at least half the rows and differ from the current
    /// chunk height; `None` otherwise. Plan compilation probes the
    /// suggestion and keeps whichever packing streams fewer index
    /// bytes.
    pub fn identical_run_chunk(&self, a: &CsrMatrix<T>) -> Option<usize> {
        let mut covered = [0usize; 17];
        let mut i = 0;
        while i < self.rows.len() {
            let (head, _) = a.row(self.rows[i] as usize);
            let mut j = i + 1;
            while j < self.rows.len() && a.row(self.rows[j] as usize).0 == head {
                j += 1;
            }
            let run = j - i;
            if run >= 2 {
                covered[run.min(16)] += run;
            }
            i = j;
        }
        let best = (2..=16).max_by_key(|&r| covered[r])?;
        (covered[best] * 2 >= self.rows.len() && best != self.chunk).then_some(best)
    }

    /// Rows covered, in packed (length-sorted) order.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunk_off.len() - 1
    }

    /// Stored non-zeros (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total storage slots including padding.
    pub fn slots(&self) -> usize {
        self.src.len()
    }

    /// Storage blow-up of the packed layout: `slots / nnz` (`1.0` when
    /// the subset is all padding-free or empty). Plan compilation gates
    /// SELL selection on this bound.
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.slots() as f64 / self.nnz as f64
        }
    }

    /// Non-zeros stored in chunk `c` (excluding padding) — the work
    /// estimate tile generation balances on.
    pub fn chunk_nnz(&self, c: usize) -> usize {
        let lane0 = c * self.chunk;
        let lanes = (self.rows.len() - lane0).min(self.chunk);
        self.lens[lane0..lane0 + lanes]
            .iter()
            .map(|&l| l as usize)
            .sum()
    }

    /// Bytes of the column-index stream the kernels actually traverse:
    /// each chunk's delta lanes (including padding slots) in that
    /// chunk's realised width, plus the `u32` base tables. This is the
    /// payload the compression tier shrinks; compare against
    /// `slots × 4` for the uncompressed layout.
    pub fn index_stream_bytes(&self) -> usize {
        let mut bytes = self.bases.len() * std::mem::size_of::<u32>();
        for c in 0..self.n_chunks() {
            bytes += (self.chunk_off[c + 1] - self.chunk_off[c]) * self.kinds[c].bytes();
        }
        bytes
    }

    /// Heap bytes of the packed arrays (src + slab cols + slab values +
    /// index vectors).
    pub fn storage_bytes(&self) -> usize {
        self.src.len() * std::mem::size_of::<u32>()
            + self.index_stream_bytes()
            + self.slots() * T::BYTES
            + self.rows.len() * std::mem::size_of::<u32>()
            + self.lens.len() * std::mem::size_of::<u32>()
            + self.chunk_off.len() * std::mem::size_of::<usize>()
            + self.base_off.len() * std::mem::size_of::<usize>()
            + self.lane_off.len() * std::mem::size_of::<usize>()
            + self.kinds.len()
            + self.modes.len()
    }

    /// Bring the cached slab up to date with `a`. O(1) when
    /// [`CsrMatrix::values_id`] matches the slab's source (the steady
    /// state of an iterative solver); one O(slots) gather of columns and
    /// values after a value update. Gathering both halves is what keeps
    /// the slab correct across in-place mutations like
    /// [`CsrMatrix::sort_rows`] that permute `(col, val)` pairs within a
    /// row: the positional `src` map still points at the row's entries,
    /// just in their new order. Callers must hand the same pattern
    /// (`row_ptr`) the payload was packed from — plan validation
    /// guarantees that.
    ///
    /// # Panics
    ///
    /// Panics if a refreshed column index is out of bounds **or falls
    /// outside its chunk's delta window** (`base ≤ col`,
    /// `col − base ≤ max delta` for the chunk's realised width, with
    /// `base` the chunk's anchor — or the dense position's anchor for a
    /// column-anchored chunk) — the per-refresh proof that licenses the
    /// unchecked `v[col]` gathers in the kernels and keeps the
    /// compressed encoding exact. Chunk anchors depend only on each
    /// row's column *set*, so they survive any in-row permutation;
    /// column anchors are derived from in-row storage order, so packing
    /// an *unsorted* matrix into column-anchored chunks and then
    /// sorting it trips this proof loudly instead of decoding wrong
    /// columns.
    pub fn ensure_values(&self, a: &CsrMatrix<T>) {
        let want = a.values_id();
        if self.vals.read().unwrap().source == want {
            return;
        }
        let mut slab = self.vals.write().unwrap();
        if slab.source == want {
            return; // another thread refreshed while we waited
        }
        let ValueSlab { cols, vals, source } = &mut *slab;
        for c in 0..self.n_chunks() {
            let slots = self.chunk_off[c + 1] - self.chunk_off[c];
            let lo = self.lane_off[c];
            let vals_c = &mut vals[self.chunk_off[c]..self.chunk_off[c + 1]];
            match self.kinds[c] {
                IndexKind::U8 => {
                    self.refresh_chunk::<u8>(c, &mut cols.c8[lo..lo + slots], vals_c, a)
                }
                IndexKind::U16 => {
                    self.refresh_chunk::<u16>(c, &mut cols.c16[lo..lo + slots], vals_c, a)
                }
                IndexKind::U32 => {
                    self.refresh_chunk::<u32>(c, &mut cols.c32[lo..lo + slots], vals_c, a)
                }
            }
        }
        *source = want;
    }

    /// The width-monomorphised gather behind
    /// [`ensure_values`](Self::ensure_values) for one chunk: re-reads
    /// every slot's `(col, val)` pair and re-proves the bound and
    /// delta-window invariants for the chunk's realised width and
    /// anchor mode. `cols`/`vals` are the chunk's own slices.
    fn refresh_chunk<I: IndexLane>(
        &self,
        c: usize,
        cols: &mut [I],
        vals: &mut [T],
        a: &CsrMatrix<T>,
    ) {
        let av = a.values();
        let a_cols = a.col_idx();
        let lane0 = c * self.chunk;
        let lanes = (self.rows.len() - lane0).min(self.chunk);
        let src = &self.src[self.chunk_off[c]..self.chunk_off[c + 1]];
        let width = if lanes == 0 {
            0
        } else {
            self.lens[lane0] as usize
        };
        for j in 0..width {
            let base = self.base_at(c, j);
            for slot in j * lanes..(j + 1) * lanes {
                let s = src[slot];
                if s == SRC_PAD {
                    cols[slot] = I::narrow(0);
                    vals[slot] = T::ZERO;
                } else {
                    let col = a_cols[s as usize];
                    // Refresh-time bound proof: the kernels gather
                    // `v[base + delta]` without a per-element check, so
                    // the decoded column must be in range and the delta
                    // must round-trip through the narrow lane exactly.
                    assert!(
                        (col as usize) < self.n_cols,
                        "CSR column {col} out of bounds"
                    );
                    assert!(
                        col >= base && col - base <= I::KIND.max_delta(),
                        "CSR column {col} outside chunk {c}'s {} delta window (base {base})",
                        I::KIND
                    );
                    cols[slot] = I::narrow(col - base);
                    vals[slot] = av[s as usize];
                }
            }
        }
    }

    /// Run `f` against the current slab under the read lock. The lock is
    /// uncontended in the steady state (refreshes happen before workers
    /// launch), so this costs one atomic acquire per call — take it once
    /// per tile, not per chunk.
    pub fn with_slab<R>(&self, f: impl FnOnce(SlabView<'_, T>) -> R) -> R {
        let guard = self.vals.read().unwrap();
        f(SlabView {
            c8: &guard.cols.c8,
            c16: &guard.cols.c16,
            c32: &guard.cols.c32,
            vals: &guard.vals,
        })
    }

    /// SpMV over chunks `[c0, c1)`: for every row `r` of those chunks,
    /// computes `Σ_j A[r,·]·v` in ascending-`j` order (bit-identical to
    /// the CSR reference) and hands `(row, sum)` to `sink`. Rows with no
    /// entries still reach the sink with `T::ZERO`, matching CSR
    /// semantics. `slab` must come from [`with_slab`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is shorter than the source matrix's column count —
    /// the single bound check that covers every gather below.
    ///
    /// [`with_slab`]: Self::with_slab
    pub fn spmv_chunks<S: FnMut(usize, T)>(
        &self,
        slab: SlabView<'_, T>,
        c0: usize,
        c1: usize,
        v: &[T],
        mut sink: S,
    ) {
        assert!(
            v.len() >= self.n_cols,
            "input vector shorter than the matrix column count"
        );
        for c in c0..c1 {
            let slots = self.chunk_off[c + 1] - self.chunk_off[c];
            let lo = self.lane_off[c];
            match self.kinds[c] {
                IndexKind::U8 => {
                    self.chunk_modes(&slab.c8[lo..lo + slots], slab.vals, c, v, &mut sink)
                }
                IndexKind::U16 => {
                    self.chunk_modes(&slab.c16[lo..lo + slots], slab.vals, c, v, &mut sink)
                }
                IndexKind::U32 => {
                    self.chunk_modes(&slab.c32[lo..lo + slots], slab.vals, c, v, &mut sink)
                }
            }
        }
    }

    /// Resolve chunk `c`'s base table into its [`BaseSrc`] form (one
    /// hoisted constant or the per-column slice) behind
    /// [`spmv_chunks`](Self::spmv_chunks). `cols` is the chunk's own
    /// lane slice in its realised width.
    fn chunk_modes<I: IndexLane, S: FnMut(usize, T)>(
        &self,
        cols: &[I],
        vals: &[T],
        c: usize,
        v: &[T],
        sink: &mut S,
    ) {
        let vals = &vals[self.chunk_off[c]..self.chunk_off[c + 1]];
        match self.modes[c] {
            BaseMode::Chunk => self.chunk_lanes(
                cols,
                vals,
                ConstBase(self.bases[self.base_off[c]]),
                c,
                v,
                sink,
            ),
            BaseMode::Column => self.chunk_lanes(
                cols,
                vals,
                SliceBase(&self.bases[self.base_off[c]..self.base_off[c + 1]]),
                c,
                v,
                sink,
            ),
        }
    }

    /// Lane-count dispatch behind [`spmv_chunks`](Self::spmv_chunks):
    /// full chunks run the `L`-unrolled kernel (the common heights get
    /// their own instantiation — run-aligned chunk probing makes odd
    /// heights like 3, 5, 6, 7 routine, not just the tail), partial
    /// chunks the dynamic one.
    fn chunk_lanes<I: IndexLane, B: BaseSrc, S: FnMut(usize, T)>(
        &self,
        cols: &[I],
        vals: &[T],
        base: B,
        c: usize,
        v: &[T],
        sink: &mut S,
    ) {
        let lane0 = c * self.chunk;
        let lanes = (self.rows.len() - lane0).min(self.chunk);
        match lanes {
            16 => self.chunk_fixed::<I, B, 16, S>(cols, vals, base, lane0, v, sink),
            8 => self.chunk_fixed::<I, B, 8, S>(cols, vals, base, lane0, v, sink),
            7 => self.chunk_fixed::<I, B, 7, S>(cols, vals, base, lane0, v, sink),
            6 => self.chunk_fixed::<I, B, 6, S>(cols, vals, base, lane0, v, sink),
            5 => self.chunk_fixed::<I, B, 5, S>(cols, vals, base, lane0, v, sink),
            4 => self.chunk_fixed::<I, B, 4, S>(cols, vals, base, lane0, v, sink),
            3 => self.chunk_fixed::<I, B, 3, S>(cols, vals, base, lane0, v, sink),
            2 => self.chunk_fixed::<I, B, 2, S>(cols, vals, base, lane0, v, sink),
            _ => self.chunk_dyn(cols, vals, base, lane0, lanes, v, sink),
        }
    }

    /// One full chunk of exactly `L` lanes, with the dense phase (all
    /// lanes active) unrolled `L`-wide. `L` is a compile-time constant so
    /// the accumulator array lives in registers and the inner lane loop
    /// disappears.
    #[inline]
    fn chunk_fixed<I: IndexLane, B: BaseSrc, const L: usize, S: FnMut(usize, T)>(
        &self,
        cols: &[I],
        vals: &[T],
        base: B,
        lane0: usize,
        v: &[T],
        sink: &mut S,
    ) {
        let lens = &self.lens[lane0..lane0 + L];
        let width = lens[0] as usize;
        let min_len = lens[L - 1] as usize;
        let mut sums = [T::ZERO; L];
        // Dense phase: every lane active, unit-stride slab columns. The
        // `chunks_exact(L)` windows (L const) drop the per-slot slab
        // bounds checks; the gather is unchecked because every
        // non-padding column was proven `< n_cols` (decoded as
        // `base + delta` against this position's anchor) when the slab
        // was gathered and `spmv_chunks` checked `v.len() >= n_cols`
        // once up front.
        let dense_cols = &cols[..min_len * L];
        let dense = dense_cols.chunks_exact(L);
        let dense_vals = vals[..min_len * L].chunks_exact(L);
        // The gather is the only irregular access left; hint the windows
        // a few iterations ahead unless `x` plausibly lives in L1.
        let prefetch = self.n_cols * T::BYTES > PF_MIN_X_BYTES;
        for (jj, (cw, vw)) in dense.zip(dense_vals).enumerate() {
            if prefetch {
                let pf = jj + PF_DIST;
                if pf < min_len {
                    let pb = base.at(pf);
                    for l in 0..L {
                        prefetch_read(v, (pb + dense_cols[pf * L + l].widen()) as usize);
                    }
                }
            }
            // Gather first, FMA second: the gather loop is scalar loads,
            // but the FMA loop is contiguous-on-contiguous and the
            // compiler can turn it into one packed `vfmadd`.
            let b = base.at(jj);
            let mut xs = [T::ZERO; L];
            for l in 0..L {
                // SAFETY: `cw[l]` is a non-padding slot of this chunk's
                // dense phase; `ensure_values` asserted its decoded
                // column `base + delta < n_cols` (same anchor `b`) and
                // `spmv_chunks` asserted `v.len() >= n_cols`.
                xs[l] = unsafe { *v.get_unchecked((b + cw[l].widen()) as usize) };
            }
            for l in 0..L {
                sums[l] = vw[l].mul_add_(xs[l], sums[l]);
            }
        }
        // Ragged tail: lanes are length-sorted descending, so the active
        // lanes at column j are the prefix with len > j.
        let mut active = L;
        for j in min_len..width {
            while active > 0 && (lens[active - 1] as usize) <= j {
                active -= 1;
            }
            let o = j * L;
            let b = base.at(j);
            for (l, s) in sums.iter_mut().enumerate().take(active) {
                // SAFETY: `l < active` means lane `l` has `len > j`, so
                // this slot is non-padding; same refresh-time bound
                // proof on the decoded column.
                let x = unsafe { *v.get_unchecked((b + cols[o + l].widen()) as usize) };
                *s = vals[o + l].mul_add_(x, *s);
            }
        }
        for (l, &s) in sums.iter().enumerate() {
            sink(self.rows[lane0 + l] as usize, s);
        }
    }

    /// A partial (or oddly sized) chunk of `lanes` lanes — the same
    /// phase structure without the compile-time unroll. Accumulators
    /// live in a fixed stack buffer unless the chunk size is enormous.
    #[allow(clippy::too_many_arguments)] // width-monomorphised internal kernel
    fn chunk_dyn<I: IndexLane, B: BaseSrc, S: FnMut(usize, T)>(
        &self,
        cols: &[I],
        vals: &[T],
        base: B,
        lane0: usize,
        lanes: usize,
        v: &[T],
        sink: &mut S,
    ) {
        let lens = &self.lens[lane0..lane0 + lanes];
        let width = if lanes == 0 { 0 } else { lens[0] as usize };
        let mut stack = [T::ZERO; 32];
        let mut heap;
        let sums: &mut [T] = if lanes <= stack.len() {
            &mut stack[..lanes]
        } else {
            heap = vec![T::ZERO; lanes];
            &mut heap
        };
        let mut active = lanes;
        for j in 0..width {
            while active > 0 && (lens[active - 1] as usize) <= j {
                active -= 1;
            }
            let o = j * lanes;
            let b = base.at(j);
            for (l, s) in sums.iter_mut().enumerate().take(active) {
                // SAFETY: `l < active` means this slot is non-padding;
                // same refresh-time bound proof as `chunk_fixed`.
                let x = unsafe { *v.get_unchecked((b + cols[o + l].widen()) as usize) };
                *s = vals[o + l].mul_add_(x, *s);
            }
        }
        for (l, &s) in sums.iter().enumerate() {
            sink(self.rows[lane0 + l] as usize, s);
        }
    }

    /// Batched SpMV (SpMM) over chunks `[c0, c1)` against `KB`
    /// right-hand sides read from a row-major block: input row `c` is
    /// `x[c * x_stride + x_col0 ..][..KB]`. For every packed row `r` the
    /// kernel walks the row's slots in ascending-`j` order — the **same**
    /// per-row accumulation order as [`spmv_chunks`](Self::spmv_chunks)
    /// and the CSR reference, so each of the `KB` output columns is
    /// bit-for-bit identical to an independent single-vector SpMV — and
    /// broadcasts each gathered matrix element against the `KB`
    /// contiguous x-lanes, accumulating into `KB` register-resident
    /// sums. Matrix bytes are streamed once and pay for `KB` outputs.
    ///
    /// Iteration is per-lane (slot stride = the chunk's lane count)
    /// rather than lane-lockstep: lockstep would need `lanes × KB`
    /// accumulators, which spills at any useful width, while per-lane
    /// keeps exactly `KB` sums live — the register-pressure cap that
    /// bounds the supported RHS widths (see the dispatch in the core
    /// executor). Padding slots are never read: each lane stops at its
    /// own length.
    ///
    /// `sink` receives `(row, sums)` for every row of the chunk range,
    /// including empty rows (all-zero sums), matching CSR semantics.
    ///
    /// # Panics
    ///
    /// Panics if `KB == 0`, the block geometry is inconsistent
    /// (`x_col0 + KB > x_stride` while columns exist), or `x` is too
    /// short to hold row `n_cols - 1` — the single up-front bound check
    /// that, together with the pack-time column bound, licenses the
    /// unchecked x-gathers below.
    #[allow(clippy::too_many_arguments)] // block geometry is three scalars, not a struct
    pub fn spmm_chunks<const KB: usize, S: FnMut(usize, [T; KB])>(
        &self,
        slab: SlabView<'_, T>,
        c0: usize,
        c1: usize,
        x: &[T],
        x_stride: usize,
        x_col0: usize,
        mut sink: S,
    ) {
        assert!(KB > 0, "RHS block width must be positive");
        if self.n_cols > 0 {
            assert!(
                x_col0 + KB <= x_stride,
                "RHS block {x_col0}..{} overruns the row stride {x_stride}",
                x_col0 + KB
            );
            assert!(
                (self.n_cols - 1) * x_stride + x_col0 + KB <= x.len(),
                "input block shorter than the matrix column count"
            );
        }
        for c in c0..c1 {
            let slots = self.chunk_off[c + 1] - self.chunk_off[c];
            let lo = self.lane_off[c];
            match self.kinds[c] {
                IndexKind::U8 => self.spmm_modes::<u8, KB, S>(
                    &slab.c8[lo..lo + slots],
                    slab.vals,
                    c,
                    x,
                    x_stride,
                    x_col0,
                    &mut sink,
                ),
                IndexKind::U16 => self.spmm_modes::<u16, KB, S>(
                    &slab.c16[lo..lo + slots],
                    slab.vals,
                    c,
                    x,
                    x_stride,
                    x_col0,
                    &mut sink,
                ),
                IndexKind::U32 => self.spmm_modes::<u32, KB, S>(
                    &slab.c32[lo..lo + slots],
                    slab.vals,
                    c,
                    x,
                    x_stride,
                    x_col0,
                    &mut sink,
                ),
            }
        }
    }

    /// Base-mode dispatch behind [`spmm_chunks`](Self::spmm_chunks).
    #[allow(clippy::too_many_arguments)] // width-monomorphised internal kernel
    fn spmm_modes<I: IndexLane, const KB: usize, S: FnMut(usize, [T; KB])>(
        &self,
        cols: &[I],
        vals: &[T],
        c: usize,
        x: &[T],
        x_stride: usize,
        x_col0: usize,
        sink: &mut S,
    ) {
        let vals = &vals[self.chunk_off[c]..self.chunk_off[c + 1]];
        match self.modes[c] {
            BaseMode::Chunk => self.spmm_chunk_impl::<I, ConstBase, KB, S>(
                cols,
                vals,
                ConstBase(self.bases[self.base_off[c]]),
                c,
                x,
                x_stride,
                x_col0,
                sink,
            ),
            BaseMode::Column => self.spmm_chunk_impl::<I, SliceBase<'_>, KB, S>(
                cols,
                vals,
                SliceBase(&self.bases[self.base_off[c]..self.base_off[c + 1]]),
                c,
                x,
                x_stride,
                x_col0,
                sink,
            ),
        }
    }

    /// Width/mode-monomorphised loop behind
    /// [`spmm_chunks`](Self::spmm_chunks) for one chunk. `cols`/`vals`
    /// are the chunk's own slices.
    #[allow(clippy::too_many_arguments)] // width-monomorphised internal kernel
    fn spmm_chunk_impl<I: IndexLane, B: BaseSrc, const KB: usize, S: FnMut(usize, [T; KB])>(
        &self,
        cols: &[I],
        vals: &[T],
        base: B,
        c: usize,
        x: &[T],
        x_stride: usize,
        x_col0: usize,
        sink: &mut S,
    ) {
        let lane0 = c * self.chunk;
        let lanes = (self.rows.len() - lane0).min(self.chunk);
        for l in 0..lanes {
            let len = self.lens[lane0 + l] as usize;
            let mut sums = [T::ZERO; KB];
            let mut slot = l;
            for j in 0..len {
                let col = (base.at(j) + cols[slot].widen()) as usize;
                let av = vals[slot];
                let xbase = col * x_stride + x_col0;
                for (kk, s) in sums.iter_mut().enumerate() {
                    // SAFETY: the decoded `col < n_cols` was asserted
                    // when the slab was gathered, for every
                    // non-padding slot (lane `l` stops at its own
                    // length, so `slot` is never padding), and the
                    // up-front assert in `spmm_chunks` proved
                    // `(n_cols - 1) * x_stride + x_col0 + KB <=
                    // x.len()`, so `xbase + kk` is in bounds.
                    let xv = unsafe { *x.get_unchecked(xbase + kk) };
                    *s = av.mul_add_(xv, *s);
                }
                slot += lanes;
            }
            sink(self.rows[lane0 + l] as usize, sums);
        }
    }

    /// Sequential SpMV over the whole packed subset into `u` (only the
    /// packed rows are written). Refreshes the value slab from `a` first.
    /// Reference/diagnostic path; the parallel tiled path lives in the
    /// execution layer.
    pub fn spmv_into(&self, a: &CsrMatrix<T>, v: &[T], u: &mut [T]) {
        self.ensure_values(a);
        self.with_slab(|slab| {
            self.spmv_chunks(slab, 0, self.n_chunks(), v, |r, s| u[r] = s);
        });
    }

    /// Re-derive the packed layout from `a` and `expected_rows` and prove
    /// this payload matches it exactly: same row multiset, lengths equal
    /// to the CSR row lengths, chunks length-sorted with correct offsets,
    /// every non-padding slot's `(decoded col, src)` equal to the CSR
    /// entry it claims to mirror with the decoded column in bounds,
    /// every padding slot marked, and every chunk's stored encoding
    /// (base mode, lane width, base table) equal to the one
    /// [`choose_encoding`] re-derives under the stored floor — the
    /// tightest anchors the delta proof assumed. The slab is refreshed
    /// from `a` first, so the proof covers the state execution will
    /// read. Returns a description of the first defect.
    /// O(slots + |rows| log |rows|).
    pub fn check_against(&self, a: &CsrMatrix<T>, expected_rows: &[u32]) -> Result<(), String> {
        self.ensure_values(a);
        if self.n_cols != a.n_cols() {
            return Err(format!(
                "packed n_cols {} != matrix n_cols {} (gather bound proof void)",
                self.n_cols,
                a.n_cols()
            ));
        }
        if self.rows.len() != expected_rows.len() {
            return Err(format!(
                "packed row count {} != bin row count {}",
                self.rows.len(),
                expected_rows.len()
            ));
        }
        let mut mine = self.rows.clone();
        let mut theirs = expected_rows.to_vec();
        mine.sort_unstable();
        theirs.sort_unstable();
        if mine != theirs {
            return Err("packed rows are not the bin's row set".into());
        }
        let m = a.n_rows();
        let row_ptr = a.row_ptr();
        let a_cols = a.col_idx();
        for (i, (&r, &len)) in self.rows.iter().zip(&self.lens).enumerate() {
            if (r as usize) >= m {
                return Err(format!("packed row {r} out of bounds (m = {m})"));
            }
            if a.row_nnz(r as usize) != len as usize {
                return Err(format!(
                    "packed row {r}: cached len {len} != CSR len {}",
                    a.row_nnz(r as usize)
                ));
            }
            if i + 1 < self.lens.len() && self.lens[i + 1] > len {
                return Err(format!("packed rows not length-sorted at index {i}"));
            }
        }
        if self.chunk_off.first() != Some(&0) || self.chunk_off.last() != Some(&self.src.len()) {
            return Err("chunk offsets do not span the slab".into());
        }
        if self.kinds.len() != self.n_chunks()
            || self.modes.len() != self.n_chunks()
            || self.lane_off.len() != self.n_chunks()
            || self.base_off.len() != self.n_chunks() + 1
        {
            return Err("per-chunk encoding tables do not match the chunk count".into());
        }
        if self.base_off.first() != Some(&0) || self.base_off.last() != Some(&self.bases.len()) {
            return Err("base offsets do not span the base table".into());
        }
        if self.index != self.kinds.iter().copied().max().unwrap_or(self.floor) {
            return Err(format!(
                "declared index kind {} is not the widest chunk width",
                self.index
            ));
        }
        let slab = self.vals.read().unwrap();
        let mut tallies = [0usize; 3];
        for c in 0..self.n_chunks() {
            if self.lane_off[c] != tallies[self.kinds[c] as usize] {
                return Err(format!(
                    "chunk {c}: lane offset {} does not match its width pool",
                    self.lane_off[c]
                ));
            }
            tallies[self.kinds[c] as usize] += self.chunk_off[c + 1] - self.chunk_off[c];
        }
        if [slab.cols.c8.len(), slab.cols.c16.len(), slab.cols.c32.len()] != tallies {
            return Err("lane pool sizes do not match the per-chunk widths".into());
        }
        if slab.vals.len() != self.src.len() {
            return Err("value slab length mismatch".into());
        }
        let mut seen_nnz = 0usize;
        for c in 0..self.n_chunks() {
            let lane0 = c * self.chunk;
            let lanes = (self.rows.len() - lane0).min(self.chunk);
            let width = self.lens[lane0] as usize;
            if self.chunk_off[c + 1] - self.chunk_off[c] != width * lanes {
                return Err(format!("chunk {c}: slab size != width × lanes"));
            }
            let enc = choose_encoding(a, &self.rows[lane0..lane0 + lanes], width, self.floor);
            if enc.kind != self.kinds[c] || enc.mode != self.modes[c] {
                return Err(format!(
                    "chunk {c}: stored encoding {}/{} != derived {}/{}",
                    self.modes[c], self.kinds[c], enc.mode, enc.kind
                ));
            }
            if enc.bases[..] != self.bases[self.base_off[c]..self.base_off[c + 1]] {
                return Err(format!(
                    "chunk {c}: stored base table is not the derived anchor set"
                ));
            }
            let off = self.chunk_off[c];
            let kind = self.kinds[c];
            let pool0 = self.lane_off[c];
            for lane in 0..lanes {
                let r = self.rows[lane0 + lane] as usize;
                let len = self.lens[lane0 + lane] as usize;
                let base = row_ptr[r];
                for j in 0..width {
                    let slot = off + j * lanes + lane;
                    if j < len {
                        if self.src[slot] as usize != base + j {
                            return Err(format!(
                                "chunk {c} lane {lane} col {j}: src {} != CSR position {}",
                                self.src[slot],
                                base + j
                            ));
                        }
                        let decoded =
                            self.base_at(c, j) + slab.cols.delta_at(kind, pool0 + j * lanes + lane);
                        if decoded != a_cols[base + j] {
                            return Err(format!(
                                "chunk {c} lane {lane} col {j}: decoded col {decoded} != CSR col {}",
                                a_cols[base + j]
                            ));
                        }
                        if (decoded as usize) >= self.n_cols {
                            return Err(format!(
                                "chunk {c} lane {lane} col {j}: decoded col {decoded} out of bounds"
                            ));
                        }
                        seen_nnz += 1;
                    } else if self.src[slot] != SRC_PAD {
                        return Err(format!(
                            "chunk {c} lane {lane} col {j}: padding slot has src {}",
                            self.src[slot]
                        ));
                    }
                }
            }
        }
        if seen_nnz != self.nnz {
            return Err(format!("cached nnz {} != slab nnz {seen_nnz}", self.nnz));
        }
        Ok(())
    }
}

impl<T: Scalar> Clone for PackedSell<T> {
    fn clone(&self) -> Self {
        let slab = self.vals.read().unwrap();
        Self {
            chunk: self.chunk,
            n_cols: self.n_cols,
            index: self.index,
            floor: self.floor,
            rows: self.rows.clone(),
            lens: self.lens.clone(),
            chunk_off: self.chunk_off.clone(),
            kinds: self.kinds.clone(),
            modes: self.modes.clone(),
            bases: self.bases.clone(),
            base_off: self.base_off.clone(),
            lane_off: self.lane_off.clone(),
            src: self.src.clone(),
            nnz: self.nnz,
            vals: RwLock::new(ValueSlab {
                source: slab.source,
                cols: slab.cols.clone(),
                vals: slab.vals.clone(),
            }),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for PackedSell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedSell")
            .field("chunk", &self.chunk)
            .field("index", &self.index)
            .field("rows", &self.rows.len())
            .field("chunks", &self.n_chunks())
            .field("column_anchored", &self.column_anchored_chunks())
            .field("nnz", &self.nnz)
            .field("slots", &self.slots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::gen::mixture::RowRegime;

    fn all_rows<T: Scalar>(a: &CsrMatrix<T>) -> Vec<u32> {
        (0..a.n_rows() as u32).collect()
    }

    #[test]
    fn packed_matches_reference_bit_for_bit() {
        let a = gen::mixture::<f64>(
            500,
            700,
            &[
                RowRegime::new(1, 3, 0.4),
                RowRegime::new(8, 30, 0.4),
                RowRegime::new(60, 120, 0.2),
            ],
            true,
            7,
        );
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 5) % 13) as f64 - 6.0)
            .collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for chunk in [1, 3, 4, 8, 16] {
            let p = PackedSell::from_rows(&a, &all_rows(&a), chunk);
            p.check_against(&a, &all_rows(&a)).unwrap();
            let mut u = vec![0.0f64; a.n_rows()];
            p.spmv_into(&a, &v, &mut u);
            assert_eq!(u, reference, "chunk {chunk} diverges from CSR reference");
        }
    }

    #[test]
    fn every_index_width_matches_reference_bit_for_bit() {
        let a = gen::mixture::<f64>(
            400,
            600,
            &[RowRegime::new(1, 4, 0.5), RowRegime::new(20, 80, 0.5)],
            true,
            11,
        );
        let rows = all_rows(&a);
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 3) % 17) as f64 - 8.0)
            .collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for min_index in [IndexKind::U8, IndexKind::U16, IndexKind::U32] {
            let p = PackedSell::from_rows_with_index(&a, &rows, 8, min_index);
            assert!(p.index_kind() >= min_index, "floor not respected");
            p.check_against(&a, &rows).unwrap();
            let mut u = vec![0.0f64; a.n_rows()];
            p.spmv_into(&a, &v, &mut u);
            assert_eq!(u, reference, "{min_index} floor diverges from reference");
        }
    }

    #[test]
    fn delta_compression_picks_narrowest_feasible_width() {
        // A uniform band (every row exactly 4 entries at cols r..r+4):
        // the length sort is the identity, so every chunk covers
        // adjacent rows and spans ≤ chunk + 3 columns → u8.
        let mut coo = crate::CooMatrix::<f64>::new(64, 68);
        for r in 0..64 {
            for j in 0..4 {
                coo.push(r, r + j, (r * 4 + j) as f64 + 1.0);
            }
        }
        let a = coo.to_csr();
        let p = PackedSell::from_rows(&a, &all_rows(&a), 8);
        assert_eq!(p.index_kind(), IndexKind::U8);
        assert!(p.index_stream_bytes() < p.slots() * 4);
        p.check_against(&a, &all_rows(&a)).unwrap();

        // Lane spreads of ~300 at every dense position (the two rows'
        // column lists diverge from position 0) defeat both anchor
        // modes' u8 window → u16.
        let mut coo = crate::CooMatrix::<f64>::new(4, 400);
        coo.push(0, 0, 1.0);
        coo.push(0, 399, 2.0);
        coo.push(1, 300, 3.0);
        coo.push(1, 301, 4.0);
        let b = coo.to_csr();
        let q = PackedSell::from_rows(&b, &all_rows(&b), 4);
        assert_eq!(q.index_kind(), IndexKind::U16);
        q.check_against(&b, &all_rows(&b)).unwrap();

        // Lane spreads beyond 65 535 exceed u16 under either mode →
        // u32 fallback, even when the caller asked for the narrowest
        // floor.
        let mut coo = crate::CooMatrix::<f64>::new(4, 70_001);
        coo.push(0, 0, 1.0);
        coo.push(0, 70_000, 2.0);
        coo.push(1, 66_000, 3.0);
        coo.push(1, 70_000, 4.0);
        let c = coo.to_csr();
        let r = PackedSell::from_rows_with_index(&c, &all_rows(&c), 4, IndexKind::U8);
        assert_eq!(r.index_kind(), IndexKind::U32);
        r.check_against(&c, &all_rows(&c)).unwrap();
        let v = vec![1.0f64; c.n_cols()];
        let reference = c.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; c.n_rows()];
        r.spmv_into(&c, &v, &mut u);
        assert_eq!(u, reference, "wide-span fallback diverges");
    }

    #[test]
    fn column_anchors_compress_wide_rows_with_tracking_neighbours() {
        // Every row spans 300+ columns (cols {r, r+300}), so a single
        // chunk anchor can never fit u8 deltas — but neighbouring rows
        // track each other within the chunk height, so per-column
        // anchors realise 1-byte lanes.
        let mut coo = crate::CooMatrix::<f64>::new(64, 364);
        for r in 0..64 {
            coo.push(r, r, 1.0 + r as f64);
            coo.push(r, r + 300, 2.0 + r as f64);
        }
        let a = coo.to_csr();
        let rows = all_rows(&a);
        let p = PackedSell::from_rows(&a, &rows, 8);
        assert_eq!(p.index_kind(), IndexKind::U8);
        assert!(p.column_anchored_chunks() == p.n_chunks());
        p.check_against(&a, &rows).unwrap();
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 7) % 19) as f64 - 9.0)
            .collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; a.n_rows()];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, reference, "column-anchored chunks diverge");

        // The forced-u32 layout must stay the uncompressed baseline:
        // chunk anchors everywhere, 4-byte lanes.
        let q = PackedSell::from_rows_with_index(&a, &rows, 8, IndexKind::U32);
        assert_eq!(q.index_kind(), IndexKind::U32);
        assert_eq!(q.column_anchored_chunks(), 0);
        q.check_against(&a, &rows).unwrap();
    }

    #[test]
    fn run_aligned_chunks_turn_identical_block_rows_into_u8() {
        // 4 "blocks" of 6 identical rows, each block's columns spread
        // across the whole matrix. With the chunk height equal to the
        // run length every chunk holds copies of one row: zero lane
        // spread, u8 column-anchored deltas, regardless of row span.
        let mut coo = crate::CooMatrix::<f64>::new(24, 4_000);
        for b in 0..4usize {
            for l in 0..6usize {
                let r = b * 6 + l;
                for k in 0..5usize {
                    coo.push(r, (b * 997 + k * 641) % 4_000, (r * 5 + k) as f64 + 1.0);
                }
            }
        }
        let a = coo.to_csr();
        let rows = all_rows(&a);
        let p8 = PackedSell::from_rows(&a, &rows, 8);
        assert_eq!(
            p8.identical_run_chunk(&a),
            Some(6),
            "block runs should suggest a 6-lane chunk"
        );
        let p6 = PackedSell::from_rows(&a, &rows, 6);
        assert_eq!(p6.index_kind(), IndexKind::U8);
        assert_eq!(p6.column_anchored_chunks(), p6.n_chunks());
        assert!(p6.index_stream_bytes() < p8.index_stream_bytes());
        p6.check_against(&a, &rows).unwrap();
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 3) % 11) as f64 - 5.0)
            .collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; a.n_rows()];
        p6.spmv_into(&a, &v, &mut u);
        assert_eq!(u, reference, "run-aligned chunks diverge");
    }

    #[test]
    fn subset_only_touches_its_rows() {
        let a = gen::random_uniform::<f32>(100, 100, 1, 6, 3);
        let subset: Vec<u32> = (0..100).step_by(3).collect();
        let p = PackedSell::from_rows(&a, &subset, 8);
        p.check_against(&a, &subset).unwrap();
        let v = vec![1.0f32; 100];
        let mut u = vec![f32::NAN; 100];
        p.spmv_into(&a, &v, &mut u);
        for (i, &x) in u.iter().enumerate() {
            if subset.contains(&(i as u32)) {
                assert!(!x.is_nan(), "row {i} skipped");
            } else {
                assert!(x.is_nan(), "row {i} touched");
            }
        }
    }

    #[test]
    fn value_updates_are_picked_up_via_values_id() {
        let mut a = gen::random_uniform::<f64>(200, 200, 2, 9, 5);
        let rows = all_rows(&a);
        let p = PackedSell::from_rows(&a, &rows, 8);
        let v: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        for round in 0..3u64 {
            a.fill_values_with(|k| ((k as u64).wrapping_mul(round + 1) % 11) as f64 - 5.0);
            let reference = a.spmv_seq_alloc(&v).unwrap();
            let mut u = vec![0.0f64; 200];
            p.spmv_into(&a, &v, &mut u);
            assert_eq!(u, reference, "round {round}: stale value slab");
        }
    }

    #[test]
    fn padding_ratio_reflects_skew() {
        // 7 empty rows and one 64-NNZ row in one chunk: slots = 8·64.
        let mut coo = crate::CooMatrix::<f64>::new(8, 64);
        for j in 0..64 {
            coo.push(0, j, 1.0 + j as f64);
        }
        let a = coo.to_csr();
        let p = PackedSell::from_rows(&a, &all_rows(&a), 8);
        assert_eq!(p.slots(), 8 * 64);
        assert!((p.padding_ratio() - 8.0).abs() < 1e-12);
        // Uniform rows pack with no padding at all.
        let b = gen::random_uniform::<f64>(64, 64, 4, 4, 1);
        let q = PackedSell::from_rows(&b, &all_rows(&b), 8);
        assert_eq!(q.padding_ratio(), 1.0);
    }

    #[test]
    fn empty_rows_and_empty_subsets_are_fine() {
        let a = CsrMatrix::<f64>::zeros(10, 10);
        let p = PackedSell::from_rows(&a, &all_rows(&a), 8);
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.padding_ratio(), 1.0);
        let v = vec![1.0f64; 10];
        let mut u = vec![9.0f64; 10];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, vec![0.0f64; 10], "empty rows must write zeros");
        let q = PackedSell::from_rows(&a, &[], 4);
        assert_eq!(q.n_chunks(), 0);
        q.spmv_into(&a, &v, &mut [0.0f64; 10]);
    }

    #[test]
    fn check_against_catches_tampering() {
        let a = gen::random_uniform::<f64>(40, 40, 1, 5, 9);
        let rows = all_rows(&a);
        let mut p = PackedSell::from_rows(&a, &rows, 8);
        p.check_against(&a, &rows).unwrap();
        // A wrong source index must be named.
        let slot = p.src.iter().position(|&s| s != SRC_PAD).unwrap();
        p.src[slot] = p.src[slot].wrapping_add(1);
        assert!(p.check_against(&a, &rows).is_err());
    }

    #[test]
    fn check_against_catches_base_tampering() {
        let a = gen::banded::<f64>(64, 2, 3);
        let rows = all_rows(&a);
        let p = PackedSell::from_rows(&a, &rows, 8);
        assert_eq!(p.index_kind(), IndexKind::U8);
        p.check_against(&a, &rows).unwrap();
        // A shifted base decodes every slot of that chunk wrongly.
        let mut tampered = p.clone();
        tampered.bases[0] = tampered.bases[0].wrapping_add(1);
        assert!(tampered.check_against(&a, &rows).is_err());
        // A flipped anchor mode disagrees with the deterministic
        // chooser even if the decoded columns happened to survive.
        let mut tampered = p.clone();
        tampered.modes[0] = match tampered.modes[0] {
            BaseMode::Chunk => BaseMode::Column,
            BaseMode::Column => BaseMode::Chunk,
        };
        assert!(tampered.check_against(&a, &rows).is_err());
        // A widened per-chunk kind no longer matches the chooser (and
        // desynchronises the lane pools).
        let mut tampered = p;
        tampered.kinds[0] = IndexKind::U32;
        assert!(tampered.check_against(&a, &rows).is_err());
    }

    #[test]
    fn spmm_chunks_matches_per_column_spmv_bit_for_bit() {
        let a = gen::mixture::<f64>(
            300,
            420,
            &[
                RowRegime::new(1, 4, 0.5),
                RowRegime::new(10, 40, 0.4),
                RowRegime::new(80, 150, 0.1),
            ],
            true,
            13,
        );
        let rows = all_rows(&a);
        for (chunk, min_index) in [(3, IndexKind::U8), (8, IndexKind::U8), (8, IndexKind::U32)] {
            let p = PackedSell::from_rows_with_index(&a, &rows, chunk, min_index);
            // A strided row-major block: 4 live columns inside stride 6,
            // starting at column offset 1.
            const KB: usize = 4;
            let (stride, col0) = (6usize, 1usize);
            let x: Vec<f64> = (0..a.n_cols() * stride)
                .map(|i| ((i * 7) % 23) as f64 - 11.0)
                .collect();
            let mut batched = vec![f64::NAN; a.n_rows() * KB];
            p.with_slab(|slab| {
                p.spmm_chunks::<KB, _>(slab, 0, p.n_chunks(), &x, stride, col0, |r, sums| {
                    batched[r * KB..(r + 1) * KB].copy_from_slice(&sums);
                });
            });
            for kk in 0..KB {
                let v: Vec<f64> = (0..a.n_cols()).map(|c| x[c * stride + col0 + kk]).collect();
                let mut single = vec![f64::NAN; a.n_rows()];
                p.with_slab(|slab| {
                    p.spmv_chunks(slab, 0, p.n_chunks(), &v, |r, s| single[r] = s);
                });
                for r in 0..a.n_rows() {
                    assert_eq!(
                        batched[r * KB + kk],
                        single[r],
                        "chunk {chunk} ({min_index}) row {r} col {kk} diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn sort_rows_refreshes_columns_with_values() {
        // Unsorted rows: packing captures the pre-sort (col, val) order.
        // `sort_rows` permutes pairs within each row and bumps the value
        // generation; the slab refresh must re-gather *columns* too, or
        // stale columns pair with fresh values. The chunk's column set
        // (hence its base and span) is invariant under the sort, so the
        // compressed encoding survives — which this test now also
        // exercises, since a 6-column matrix packs into u8 deltas.
        let mut row_ptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in 0..6usize {
            cols.push(((r + 3) % 6) as u32);
            cols.push((r % 6) as u32);
            vals.push(10.0 + r as f64);
            vals.push(1.0 + r as f64);
            row_ptr.push(cols.len());
        }
        let mut a = CsrMatrix::<f64>::from_parts(6, 6, row_ptr, cols, vals).unwrap();
        assert!(!a.rows_sorted());
        let rows = all_rows(&a);
        let p = PackedSell::from_rows(&a, &rows, 4);
        assert_eq!(p.index_kind(), IndexKind::U8);
        p.check_against(&a, &rows).unwrap();

        a.sort_rows();
        let v: Vec<f64> = (0..6).map(|i| (i + 1) as f64).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; 6];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, reference, "slab went stale after sort_rows");
        p.check_against(&a, &rows).unwrap();
    }

    #[test]
    fn nan_and_inf_inputs_do_not_leak_through_padding() {
        // A skewed chunk with heavy padding; v[0] = inf would poison any
        // kernel that multiplies padding slots.
        let mut coo = crate::CooMatrix::<f64>::new(8, 16);
        for j in 1..16 {
            coo.push(0, j, 2.0);
        }
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let mut v = vec![1.0f64; 16];
        v[0] = f64::INFINITY;
        let p = PackedSell::from_rows(&a, &(0..8).collect::<Vec<u32>>(), 8);
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; 8];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, reference, "padding participated in the sum");
        assert!(u[2..].iter().all(|&x| x == 0.0));
    }
}
