//! # spmv-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section (see DESIGN.md §5 for the index) and a set of
//! Criterion microbenches.
//!
//! Binaries share the helpers here: an aligned-table printer, suite
//! loading, model training with environment-variable knobs
//! (`SPMV_CORPUS_COUNT`, `SPMV_FIG5_COUNT`, `SPMV_FIG8_ROWS`) so CI can
//! shrink the runs.

#![warn(missing_docs)]

pub mod setup;
pub mod table;

pub use setup::{env_usize, load_suite, train_default_model, train_or_load_model, SuiteCase};
pub use table::Table;
