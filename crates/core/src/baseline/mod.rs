//! Baseline SpMV implementations the paper compares against.

mod csr_adaptive;

pub use csr_adaptive::{CsrAdaptive, RowBlock};
