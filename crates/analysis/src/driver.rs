//! Sweep driver for the write-set disjointness analyzer: compile and
//! verify a plan for every (binning strategy × kernel map × backend)
//! combination over a set of structurally diverse matrices.
//!
//! The core checker ([`spmv_autotune::verify::check_dispatch`]) proves
//! one dispatch table; this module enumerates the cross product the
//! runtime can actually produce, so `spmv-lint` exercises every code
//! path that expands bins into row lists.

use spmv_autotune::binning::BinningScheme;
use spmv_autotune::exec::{ExecBackend, NativeCpuBackend, SimGpuBackend};
use spmv_autotune::kernels::KernelId;
use spmv_autotune::plan::{BinFormat, IndexPolicy, PlanConfig, SpmvPlan};
use spmv_autotune::strategy::Strategy;
use spmv_autotune::verify::VerifyError;
use spmv_gpusim::GpuDevice;
use spmv_sparse::gen::{self, mixture::RowRegime};
use spmv_sparse::{CsrMatrix, IndexKind, Scalar};

/// Outcome of verifying one (strategy, backend, matrix) combination.
#[derive(Debug)]
pub struct PlanCheck {
    /// Human-readable strategy summary.
    pub strategy: String,
    /// Backend name the plan was compiled for.
    pub backend: &'static str,
    /// Label of the matrix the plan was proven against.
    pub matrix: String,
    /// `Ok` when the proof succeeded, the typed failure otherwise.
    pub result: Result<(), VerifyError>,
}

/// The strategy grid `spmv-lint` sweeps: every binning scheme the
/// runtime implements, each with kernel maps that hit the serial,
/// subvector, and vector launch paths (the latter two engage the
/// NNZ-balanced split checks).
pub fn strategy_grid() -> Vec<Strategy> {
    let uniform = |k: KernelId| vec![k; 8];
    let mixed: Vec<KernelId> = (0..8)
        .map(|b| match b {
            0 | 1 => KernelId::Serial,
            2..=5 => KernelId::Subvector(1 << (b as u32)),
            _ => KernelId::Vector,
        })
        .collect();
    let mut out = Vec::new();
    for binning in [
        BinningScheme::Coarse { u: 10 },
        BinningScheme::Coarse { u: 100 },
        BinningScheme::Fine,
        BinningScheme::Hybrid {
            threshold: 16,
            u: 10,
        },
        BinningScheme::Single,
    ] {
        for kernels in [
            uniform(KernelId::Serial),
            uniform(KernelId::Subvector(16)),
            uniform(KernelId::Vector),
            mixed.clone(),
        ] {
            out.push(Strategy { binning, kernels });
        }
    }
    out
}

/// Structurally diverse test matrices: uniform short rows, a power-law
/// tail, and a bimodal mixture (the shape binning exists for). Labels
/// are stable so failures name the matrix.
pub fn matrix_suite() -> Vec<(String, CsrMatrix<f64>)> {
    vec![
        (
            "uniform-400".into(),
            gen::random_uniform::<f64>(400, 400, 1, 8, 11),
        ),
        (
            "powerlaw-600".into(),
            gen::powerlaw::<f64>(600, 1, 120, 2.1, 12),
        ),
        (
            "mixture-500".into(),
            gen::mixture::<f64>(
                500,
                500,
                &[RowRegime::new(1, 4, 0.8), RowRegime::new(60, 200, 0.2)],
                true,
                13,
            ),
        ),
    ]
}

/// Compile and verify every (strategy × backend) plan for `a`,
/// returning one [`PlanCheck`] per combination.
pub fn verify_all_plans<T: Scalar + 'static>(label: &str, a: &CsrMatrix<T>) -> Vec<PlanCheck> {
    let mut out = Vec::new();
    for strategy in strategy_grid() {
        for backend in backend_pair::<T>() {
            let name = backend.name();
            let plan = SpmvPlan::compile(a, strategy.clone(), backend);
            let result = plan.verify(a).map(|_| ());
            out.push(PlanCheck {
                strategy: strategy.describe(),
                backend: name,
                matrix: label.to_string(),
                result,
            });
        }
    }
    out
}

fn backend_pair<T: Scalar + 'static>() -> Vec<Box<dyn ExecBackend<T>>> {
    vec![
        Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
        Box::new(NativeCpuBackend::new()),
    ]
}

/// Run the full sweep over [`matrix_suite`]; the `spmv-lint` entry
/// point. Returns every check so the caller can print and count
/// failures.
pub fn full_sweep() -> Vec<PlanCheck> {
    let mut out = Vec::new();
    for (label, a) in matrix_suite() {
        out.extend(verify_all_plans(&label, &a));
    }
    out
}

/// Outcome of one batched-dispatch equivalence check: a verified plan's
/// `execute_batch` must be bit-for-bit identical, per output column, to
/// `K` single-vector `execute` calls.
#[derive(Debug)]
pub struct BatchCheck {
    /// Human-readable strategy summary.
    pub strategy: String,
    /// Backend name the plan was compiled for.
    pub backend: &'static str,
    /// Label of the matrix checked.
    pub matrix: String,
    /// RHS width exercised.
    pub k: usize,
    /// `Ok` on bitwise equality, a description of the first divergence
    /// (or verify failure) otherwise.
    pub result: Result<(), String>,
}

/// Batched-dispatch sweep: every (strategy × backend) plan over the
/// matrix suite, verified, then executed batched at widths that cover
/// a lone column, a greedy remainder (4+1), and a full register block —
/// each column compared exactly against the single-vector path. This is
/// the `spmv-lint` proof that the (tile × RHS-block) work queue writes
/// every output element once with the right value.
pub fn batched_sweep() -> Vec<BatchCheck> {
    let mut out = Vec::new();
    for (label, a) in matrix_suite() {
        for strategy in strategy_grid() {
            for which in 0..2usize {
                for k in [1usize, 5, 8] {
                    let backend = backend_pair::<f64>().swap_remove(which);
                    let name = backend.name();
                    let plan = SpmvPlan::compile(&a, strategy.clone(), backend);
                    out.push(BatchCheck {
                        strategy: strategy.describe(),
                        backend: name,
                        matrix: label.clone(),
                        k,
                        result: check_batch_equivalence(&a, plan, k),
                    });
                }
            }
        }
    }
    out
}

fn check_batch_equivalence(
    a: &CsrMatrix<f64>,
    plan: SpmvPlan<f64>,
    k: usize,
) -> Result<(), String> {
    let verified = plan.verify(a).map_err(|e| format!("verify: {e}"))?;
    let mut x = spmv_sparse::DenseBlock::<f64>::zeros(a.n_cols(), k);
    x.fill_with(|i, j| (((i * 31 + j * 7) % 23) as f64) - 11.0);
    let mut y = spmv_sparse::DenseBlock::<f64>::zeros(a.n_rows(), k);
    verified
        .execute_batch(a, &x, &mut y)
        .map_err(|e| format!("execute_batch: {e}"))?;
    for j in 0..k {
        let v = x.column(j);
        let mut u = vec![f64::NAN; a.n_rows()];
        verified
            .execute(a, &v, &mut u)
            .map_err(|e| format!("execute (column {j}): {e}"))?;
        if y.column(j) != u {
            let row = (0..a.n_rows())
                .find(|&r| y.column(j)[r].to_bits() != u[r].to_bits())
                .unwrap_or(0);
            return Err(format!(
                "column {j} of {k} diverges first at row {row}: batched {} vs single {}",
                y.column(j)[row],
                u[row]
            ));
        }
    }
    Ok(())
}

/// The bandwidth-tier plan configurations `spmv-lint` sweeps on top of
/// the strategy grid: the PR 3 u32-lane baseline, the shipped default
/// gate, the Auto policy's compress branch (an exhausted `llc_bytes`
/// budget classifies every suite matrix as streaming), an explicit u8
/// floor (which the pack-time span proof may widen), and a forced
/// cache-blocked tier (tiny strip budget plus a permissive scatter
/// threshold so the gate actually fires on the 400–600-column suite
/// matrices).
pub fn bandwidth_tiers() -> Vec<(&'static str, PlanConfig)> {
    vec![
        (
            "u32",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U32),
                cache_block: false,
                ..PlanConfig::default()
            },
        ),
        ("auto", PlanConfig::default()),
        (
            "compressed",
            PlanConfig {
                llc_bytes: 0,
                ..PlanConfig::default()
            },
        ),
        (
            "u8-floor",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U8),
                ..PlanConfig::default()
            },
        ),
        (
            "blocked",
            PlanConfig {
                pack: false,
                l2_bytes: 64 * std::mem::size_of::<f64>(),
                scatter_lines_per_row: 1.0,
                ..PlanConfig::default()
            },
        ),
    ]
}

/// Outcome of one bandwidth-tier check: a compressed or cache-blocked
/// plan must verify (the payload proofs re-run) and execute bit-for-bit
/// against the sequential CSR reference.
#[derive(Debug)]
pub struct BandwidthCheck {
    /// Tier label from [`bandwidth_tiers`].
    pub tier: &'static str,
    /// Human-readable strategy summary.
    pub strategy: String,
    /// Backend name the plan was compiled for.
    pub backend: &'static str,
    /// Label of the matrix checked.
    pub matrix: String,
    /// `Ok` on bitwise equality, a description of the failure otherwise.
    pub result: Result<(), String>,
}

/// Bandwidth-tier sweep: every (strategy × backend × tier) plan over the
/// matrix suite, verified and executed against the sequential reference.
///
/// Beyond per-plan correctness, the sweep asserts it actually exercised
/// the new payloads: at least one plan must realise a sub-u32 index
/// width, and at least one must carry a cache-blocked bin — a sweep that
/// silently gates everything back to plain CSR proves nothing. Those
/// coverage failures are appended as synthetic checks.
pub fn bandwidth_sweep() -> Vec<BandwidthCheck> {
    let mut out = Vec::new();
    let mut saw_narrow = false;
    let mut saw_blocked = false;
    for (label, a) in matrix_suite() {
        let reference = a.spmv_seq_alloc(&probe(a.n_cols())).unwrap();
        for strategy in strategy_grid() {
            for (tier, config) in bandwidth_tiers() {
                for which in 0..2usize {
                    let backend = backend_pair::<f64>().swap_remove(which);
                    let name = backend.name();
                    let plan = SpmvPlan::compile_with(&a, strategy.clone(), backend, config);
                    saw_narrow |= plan.dispatch().iter().any(|d| {
                        matches!(d.format, BinFormat::PackedSell { index, .. } if index != IndexKind::U32)
                    });
                    saw_blocked |= plan.blocked_bins() > 0;
                    out.push(BandwidthCheck {
                        tier,
                        strategy: strategy.describe(),
                        backend: name,
                        matrix: label.clone(),
                        result: check_against_reference(&a, plan, &reference),
                    });
                }
            }
        }
    }
    for (flag, what) in [
        (saw_narrow, "no plan realised a sub-u32 index width"),
        (saw_blocked, "no plan produced a cache-blocked bin"),
    ] {
        out.push(BandwidthCheck {
            tier: "coverage",
            strategy: "sweep-wide".into(),
            backend: "-",
            matrix: "-".into(),
            result: if flag {
                Ok(())
            } else {
                Err(format!("{what}: the sweep never left the CSR fallback"))
            },
        });
    }
    out
}

fn probe(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 19) as f64) - 9.0).collect()
}

fn check_against_reference(
    a: &CsrMatrix<f64>,
    plan: SpmvPlan<f64>,
    reference: &[f64],
) -> Result<(), String> {
    let verified = plan.verify(a).map_err(|e| format!("verify: {e}"))?;
    let v = probe(a.n_cols());
    let mut u = vec![f64::NAN; a.n_rows()];
    verified
        .execute_unchecked(a, &v, &mut u)
        .map_err(|e| format!("execute: {e}"))?;
    if u != reference {
        let row = (0..a.n_rows())
            .find(|&r| u[r].to_bits() != reference[r].to_bits())
            .unwrap_or(0);
        return Err(format!(
            "diverges first at row {row}: plan {} vs reference {}",
            u[row], reference[row]
        ));
    }
    Ok(())
}

/// The `n_cols`-shrink guard: a compressed plan's delta proof is
/// anchored to the compile-time column count, so handing the plan a
/// column-shrunk matrix (same pattern otherwise) must be rejected on
/// every entry point — checked execute, unchecked execute, and
/// re-verification — never gathered out of bounds.
pub fn shrink_guard_lint() -> Result<(), String> {
    let a = gen::random_uniform::<f64>(200, 100, 2, 4, 17);
    let (rp, ci, vals) = (
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.values().to_vec(),
    );
    let wide = CsrMatrix::from_parts(200, 200, rp.clone(), ci.clone(), vals.clone())
        .map_err(|e| format!("build wide: {e}"))?;
    let narrow =
        CsrMatrix::from_parts(200, 100, rp, ci, vals).map_err(|e| format!("build narrow: {e}"))?;
    let compile = || {
        SpmvPlan::compile_with(
            &wide,
            Strategy {
                binning: BinningScheme::Coarse { u: 10 },
                kernels: vec![KernelId::Serial; 8],
            },
            Box::new(NativeCpuBackend::new()),
            PlanConfig::default(),
        )
    };
    let plan = compile();
    if plan.packed_bins() == 0 {
        return Err("shrink guard never compiled a compressed bin".into());
    }
    let v = vec![1.0f64; narrow.n_cols()];
    let mut u = vec![0.0f64; narrow.n_rows()];
    if plan.execute(&narrow, &v, &mut u).is_ok() {
        return Err("checked execute accepted a column-shrunk matrix".into());
    }
    if plan.verify(&narrow).is_ok() {
        return Err("verify accepted a column-shrunk matrix".into());
    }
    let verified = compile()
        .verify(&wide)
        .map_err(|e| format!("verify against the compile matrix: {e}"))?;
    if verified.execute_unchecked(&narrow, &v, &mut u).is_ok() {
        return Err("unchecked execute accepted a column-shrunk matrix".into());
    }
    Ok(())
}

/// Kernel-table coverage lint, both directions.
///
/// 1. **Reachable ⇒ registered**: for every [`BinFormat`] the plan gate
///    can emit, every `(kernel_family, register-block width)` key must
///    resolve through [`spmv_autotune::kernels::table::lookup`] — this
///    is the global version of the per-bin assertion `compile_with`
///    makes, proven over the whole format space instead of just the
///    formats one matrix happens to exercise.
/// 2. **Registered ⇒ reachable**: every entry the `kernel_table!` macro
///    generated must carry a family some [`BinFormat`] maps to and a
///    width the RHS blocker can choose — a registered-but-unreachable
///    micro-kernel is dead code the type system cannot flag.
/// 3. **Uniqueness**: no two entries share a [`KernelKey`], so table
///    lookup is unambiguous.
pub fn kernel_table_lint() -> Result<(), String> {
    use spmv_autotune::kernels::table::{kernel_table, lookup, KernelKey, RHS_WIDTHS};
    use std::collections::BTreeSet;

    // One representative per BinFormat variant; the payload-bearing
    // fields do not influence the family mapping.
    let formats = [
        BinFormat::Csr,
        BinFormat::PackedSell {
            chunk: 4,
            index: IndexKind::U16,
        },
        BinFormat::CacheBlockedCsr { strip_cols: 64 },
        BinFormat::DenseRun,
        BinFormat::Banded { offsets: 3 },
        BinFormat::RowRunReuse,
    ];

    // Direction 1: every reachable key resolves.
    let mut reachable = BTreeSet::new();
    for format in formats {
        let family = format.kernel_family();
        for kb in RHS_WIDTHS {
            let key = KernelKey { family, kb };
            if lookup::<f64>(key).is_none() {
                return Err(format!(
                    "reachable key {key} (format {format}) has no registered kernel"
                ));
            }
            if lookup::<f32>(key).is_none() {
                return Err(format!(
                    "reachable key {key} (format {format}) has no f32 kernel"
                ));
            }
            reachable.insert(key);
        }
    }

    // Directions 2 and 3: every registered entry is reachable & unique.
    let mut seen = BTreeSet::new();
    for entry in kernel_table::<f64>() {
        if !seen.insert(entry.key) {
            return Err(format!("duplicate table entry for key {}", entry.key));
        }
        if !reachable.contains(&entry.key) {
            return Err(format!(
                "registered kernel {} is unreachable: no BinFormat maps to it",
                entry.key
            ));
        }
    }
    if seen.len() != reachable.len() {
        return Err(format!(
            "table registers {} keys but {} are reachable",
            seen.len(),
            reachable.len()
        ));
    }
    Ok(())
}

/// An identical-row-run matrix for the specialized sweep: runs of
/// `run_len` rows sharing one scattered column list (values still
/// differ per row), the shape the [`BinFormat::RowRunReuse`] gate
/// exists for. Columns are scattered over 4000 so packed delta lanes
/// stay wide and the row-run index stream demonstrably wins.
pub fn row_run_matrix(n_runs: usize, run_len: usize, nnz_per_row: usize) -> CsrMatrix<f64> {
    let n_rows = n_runs * run_len;
    let n_cols = 4_000;
    let mut coo = spmv_sparse::CooMatrix::<f64>::new(n_rows, n_cols);
    for run in 0..n_runs {
        let mut cols: Vec<usize> = (0..nnz_per_row)
            .map(|j| (j * 331 + run * 97) % n_cols)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for k in 0..run_len {
            let r = run * run_len + k;
            for (j, &c) in cols.iter().enumerate() {
                coo.push(r, c, 1.0 + (r * 7 + j * 3) as f64 * 0.25);
            }
        }
    }
    coo.to_csr()
}

/// The specialized-tier cases `spmv-lint` sweeps: one (matrix, config)
/// pair per structure fast path, with the knobs that route the gate
/// there, plus a disabled tier proving the `specialize` kill switch
/// regates everything to the PR 5 formats.
pub fn specialized_tiers() -> Vec<(&'static str, CsrMatrix<f64>, PlanConfig)> {
    vec![
        // Band-complete generator under the default knobs.
        (
            "banded",
            gen::banded::<f64>(900, 3, 21),
            PlanConfig::default(),
        ),
        // Same shape with the banded tier disabled and the run threshold
        // lowered to the generator's run length, forcing dense runs.
        (
            "dense-run",
            gen::banded::<f64>(900, 3, 22),
            PlanConfig {
                band_max_offsets: 0,
                min_dense_run: 2,
                ..PlanConfig::default()
            },
        ),
        // Identical-row runs, classified streaming so the index-byte
        // contest against packing is live.
        (
            "row-run",
            row_run_matrix(48, 8, 12),
            PlanConfig {
                llc_bytes: 0,
                ..PlanConfig::default()
            },
        ),
        // Kill switch: a structured matrix with specialization off must
        // produce zero specialized bins.
        (
            "disabled",
            gen::banded::<f64>(900, 3, 23),
            PlanConfig {
                specialize: false,
                ..PlanConfig::default()
            },
        ),
    ]
}

/// Outcome of one specialized-tier check: the plan must verify (the
/// structural payload proofs re-run against the matrix) and execute
/// bit-for-bit against the sequential CSR reference.
#[derive(Debug)]
pub struct SpecializedCheck {
    /// Tier label from [`specialized_tiers`].
    pub tier: &'static str,
    /// Human-readable strategy summary.
    pub strategy: String,
    /// Backend name the plan was compiled for.
    pub backend: &'static str,
    /// `Ok` on bitwise equality, a description of the failure otherwise.
    pub result: Result<(), String>,
}

/// Specialized-kernel sweep: every (strategy × backend) plan over the
/// [`specialized_tiers`] cases, verified and executed bit-for-bit
/// against the sequential reference.
///
/// Like the bandwidth sweep, coverage is asserted: the sweep must
/// realise at least one banded, one dense-run, and one row-run bin, and
/// the `disabled` tier must realise none — a sweep that silently gates
/// everything back to CSR/packed proves nothing about the fast paths.
/// Failures of those four invariants are appended as synthetic checks.
pub fn specialized_sweep() -> Vec<SpecializedCheck> {
    let mut out = Vec::new();
    let mut saw_banded = false;
    let mut saw_dense_run = false;
    let mut saw_row_run = false;
    let mut disabled_clean = true;
    for (tier, a, config) in specialized_tiers() {
        let reference = a.spmv_seq_alloc(&probe(a.n_cols())).unwrap();
        for strategy in strategy_grid() {
            for which in 0..2usize {
                let backend = backend_pair::<f64>().swap_remove(which);
                let name = backend.name();
                let plan = SpmvPlan::compile_with(&a, strategy.clone(), backend, config);
                for d in plan.dispatch() {
                    match d.format {
                        BinFormat::Banded { .. } => saw_banded = true,
                        BinFormat::DenseRun => saw_dense_run = true,
                        BinFormat::RowRunReuse => saw_row_run = true,
                        _ => {}
                    }
                }
                if tier == "disabled" && plan.specialized_bins() > 0 {
                    disabled_clean = false;
                }
                out.push(SpecializedCheck {
                    tier,
                    strategy: strategy.describe(),
                    backend: name,
                    result: check_against_reference(&a, plan, &reference),
                });
            }
        }
    }
    for (flag, what) in [
        (saw_banded, "no plan realised a banded bin"),
        (saw_dense_run, "no plan realised a dense-run bin"),
        (saw_row_run, "no plan realised a row-run bin"),
        (
            disabled_clean,
            "the specialize kill switch leaked a specialized bin",
        ),
    ] {
        out.push(SpecializedCheck {
            tier: "coverage",
            strategy: "sweep-wide".into(),
            backend: "-",
            result: if flag {
                Ok(())
            } else {
                Err(format!("{what}: the fast-path gate was never exercised"))
            },
        });
    }
    out
}

/// Lower-triangularise one suite matrix: keep its strictly-lower
/// entries, clip to square, and plant a well-conditioned diagonal so
/// the triangular solve is numerically tame. The level structure is
/// inherited from the suite matrix's sparsity, so the three shapes
/// (uniform, power-law, mixture) produce genuinely different level-set
/// profiles.
pub fn lower_with_diag(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let n = a.n_rows().min(a.n_cols());
    let mut coo = spmv_sparse::CooMatrix::<f64>::new(n, n);
    for i in 0..n {
        for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
            let c = a.col_idx()[k] as usize;
            if c < i {
                coo.push(i, c, a.values()[k]);
            }
        }
        coo.push(i, i, 4.0 + (i % 7) as f64);
    }
    coo.to_csr()
}

/// Square-with-full-diagonal companion for the SymGS sweep: every
/// off-diagonal entry of the suite matrix that fits in the square clip,
/// plus a dominant diagonal (SymGS requires a diagonal in every row).
pub fn square_with_diag(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let n = a.n_rows().min(a.n_cols());
    let mut coo = spmv_sparse::CooMatrix::<f64>::new(n, n);
    for i in 0..n {
        for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
            let c = a.col_idx()[k] as usize;
            if c < n && c != i {
                coo.push(i, c, a.values()[k]);
            }
        }
        coo.push(i, i, 8.0 + (i % 5) as f64);
    }
    coo.to_csr()
}

/// The level-granularity settings the solve sweep exercises:
/// every level parallel (maximum barriers), the shipped auto merge, and
/// everything merged into one serial chunk (zero barriers).
pub fn solve_granularities() -> Vec<(&'static str, usize)> {
    vec![("parallel-all", 1), ("auto", 0), ("serial-all", usize::MAX)]
}

/// Outcome of one solve-schedule check: the plan must pass the
/// dependency-order prover and its parallel execution must be
/// bit-for-bit identical to the sequential reference.
#[derive(Debug)]
pub struct SolveCheck {
    /// Operation exercised: `forward`, `backward`, or `symgs`.
    pub op: &'static str,
    /// Label of the matrix checked.
    pub matrix: String,
    /// Worker count the schedule was built for.
    pub workers: usize,
    /// Level-granularity label from [`solve_granularities`].
    pub granularity: &'static str,
    /// `Ok` on certified + bitwise-equal, a description otherwise.
    pub result: Result<(), String>,
}

/// Solve-schedule sweep: for every suite matrix, build forward SpTRSV
/// (lower triangle), backward SpTRSV (its transpose) and SymGS plans at
/// every (worker count × level granularity), run each through the
/// dependency-order prover, and compare the certified execution
/// bit-for-bit against [`spmv_sparse::solve::sptrsv_seq`] /
/// [`spmv_sparse::solve::symgs_seq`].
///
/// Like the bandwidth sweep, coverage is asserted: at least one plan
/// must carry a parallel (barrier-stepped) step and at least one must
/// have merged levels into fewer barriers than `levels - 1` — a sweep
/// whose schedules all degenerate to serial proves nothing about the
/// prover. Those coverage failures are appended as synthetic checks.
pub fn solve_sweep() -> Vec<SolveCheck> {
    use spmv_autotune::solve::SolveConfig;
    use spmv_sparse::solve::SolveDirection;

    let mut out = Vec::new();
    let mut saw_parallel = false;
    let mut saw_merged = false;
    for (label, a) in matrix_suite() {
        let lower = lower_with_diag(&a);
        let upper = lower.transpose();
        let sym = square_with_diag(&a);
        for workers in [1usize, 4] {
            for (granularity, min_parallel_rows) in solve_granularities() {
                let config = SolveConfig {
                    workers,
                    min_parallel_rows,
                };
                for (op, tri, dir) in [
                    ("forward", &lower, SolveDirection::Forward),
                    ("backward", &upper, SolveDirection::Backward),
                ] {
                    let result = check_solve_plan(tri, dir, config, &mut saw_parallel);
                    if let Ok(merged) = &result {
                        saw_merged |= *merged;
                    }
                    out.push(SolveCheck {
                        op,
                        matrix: label.clone(),
                        workers,
                        granularity,
                        result: result.map(|_| ()),
                    });
                }
                out.push(SolveCheck {
                    op: "symgs",
                    matrix: label.clone(),
                    workers,
                    granularity,
                    result: check_symgs_plan(&sym, config),
                });
            }
        }
    }
    for (flag, what) in [
        (saw_parallel, "no schedule carried a parallel step"),
        (
            saw_merged,
            "no schedule merged levels below levels - 1 barriers",
        ),
    ] {
        out.push(SolveCheck {
            op: "coverage",
            matrix: "-".into(),
            workers: 0,
            granularity: "sweep-wide",
            result: if flag {
                Ok(())
            } else {
                Err(format!("{what}: the sweep never exercised it"))
            },
        });
    }
    out
}

/// Build + verify + execute one triangular plan; `Ok(merged)` reports
/// whether the schedule has fewer barriers than `levels - 1` (level
/// merging actually fired).
fn check_solve_plan(
    tri: &CsrMatrix<f64>,
    dir: spmv_sparse::solve::SolveDirection,
    config: spmv_autotune::solve::SolveConfig,
    saw_parallel: &mut bool,
) -> Result<bool, String> {
    use spmv_autotune::solve::{SolvePlan, SolveStep};
    let plan =
        SolvePlan::build_with(tri, dir, config).map_err(|e| format!("build ({dir:?}): {e}"))?;
    *saw_parallel |= plan.steps().iter().any(SolveStep::is_parallel);
    let merged = plan.n_barriers() < plan.n_levels().saturating_sub(1);
    let verified = plan.verify(tri).map_err(|e| format!("verify: {e}"))?;
    let b = probe(tri.n_rows());
    let mut reference = vec![f64::NAN; tri.n_rows()];
    spmv_sparse::solve::sptrsv_seq(tri, dir, &b, &mut reference)
        .map_err(|e| format!("sptrsv_seq: {e}"))?;
    let mut x = vec![f64::NAN; tri.n_rows()];
    verified
        .solve_unchecked(tri, &b, &mut x)
        .map_err(|e| format!("solve_unchecked: {e}"))?;
    bitwise_eq(&x, &reference, "solve").map(|()| merged)
}

fn check_symgs_plan(
    sym: &CsrMatrix<f64>,
    config: spmv_autotune::solve::SolveConfig,
) -> Result<(), String> {
    let mut plan = spmv_autotune::solve::SymgsPlan::build_with(sym, config)
        .map_err(|e| format!("symgs build: {e}"))?;
    let b = probe(sym.n_rows());
    let mut reference = vec![0.25f64; sym.n_rows()];
    let mut x = vec![0.25f64; sym.n_rows()];
    for sweep in 0..2 {
        spmv_sparse::solve::symgs_seq(sym, &b, &mut reference)
            .map_err(|e| format!("symgs_seq (sweep {sweep}): {e}"))?;
        plan.apply(sym, &b, &mut x)
            .map_err(|e| format!("symgs apply (sweep {sweep}): {e}"))?;
        bitwise_eq(&x, &reference, "symgs")?;
    }
    Ok(())
}

fn bitwise_eq(got: &[f64], want: &[f64], what: &str) -> Result<(), String> {
    if let Some(row) = (0..got.len()).find(|&r| got[r].to_bits() != want[r].to_bits()) {
        return Err(format!(
            "{what} diverges first at row {row}: plan {} vs reference {}",
            got[row], want[row]
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_sweep_is_bit_identical_everywhere() {
        let checks = batched_sweep();
        assert_eq!(checks.len(), 5 * 4 * 2 * 3 * 3, "batched grid changed?");
        for c in &checks {
            assert!(
                c.result.is_ok(),
                "{} on {} over {} (K = {}) failed: {:?}",
                c.strategy,
                c.backend,
                c.matrix,
                c.k,
                c.result
            );
        }
    }

    #[test]
    fn bandwidth_sweep_is_bit_identical_and_covers_new_payloads() {
        let checks = bandwidth_sweep();
        assert_eq!(checks.len(), 3 * 20 * 5 * 2 + 2, "bandwidth grid changed?");
        for c in &checks {
            assert!(
                c.result.is_ok(),
                "[{}] {} on {} over {} failed: {:?}",
                c.tier,
                c.strategy,
                c.backend,
                c.matrix,
                c.result
            );
        }
    }

    #[test]
    fn solve_sweep_is_certified_and_bit_identical_everywhere() {
        let checks = solve_sweep();
        assert_eq!(checks.len(), 3 * 2 * 3 * 3 + 2, "solve grid changed?");
        for c in &checks {
            assert!(
                c.result.is_ok(),
                "{} over {} (workers = {}, granularity = {}) failed: {:?}",
                c.op,
                c.matrix,
                c.workers,
                c.granularity,
                c.result
            );
        }
    }

    #[test]
    fn shrink_guard_rejects_column_shrunk_matrices() {
        shrink_guard_lint().unwrap();
    }

    #[test]
    fn kernel_table_covers_both_directions() {
        kernel_table_lint().unwrap();
    }

    #[test]
    fn specialized_sweep_is_bit_identical_and_covers_every_fast_path() {
        let checks = specialized_sweep();
        assert_eq!(checks.len(), 4 * 20 * 2 + 4, "specialized grid changed?");
        for c in &checks {
            assert!(
                c.result.is_ok(),
                "[{}] {} on {} failed: {:?}",
                c.tier,
                c.strategy,
                c.backend,
                c.result
            );
        }
    }

    #[test]
    fn every_strategy_backend_combination_verifies() {
        let checks = full_sweep();
        assert_eq!(checks.len(), 5 * 4 * 2 * 3, "grid size changed?");
        for c in &checks {
            assert!(
                c.result.is_ok(),
                "{} on {} over {} failed: {:?}",
                c.strategy,
                c.backend,
                c.matrix,
                c.result
            );
        }
    }
}
