//! Injectable monotonic clocks.
//!
//! Telemetry EWMAs and refinement hysteresis are *time-based* policies,
//! and time-based policies are untestable against the wall clock: a
//! loaded CI runner stretches every interval, so an assertion like
//! "no second refinement within the hysteresis window" flakes. The
//! [`Clock`] trait splits the policy from the clock: production code
//! takes `&dyn Clock` (or the [`MonotonicClock`] default) and tests
//! inject a [`FakeClock`] they advance by hand, making every
//! time-dependent branch deterministic.
//!
//! The contract is deliberately tiny — a monotonic nanosecond counter
//! with an arbitrary epoch. Nothing here is wall time: differences are
//! meaningful, absolute values are not.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond counter with an arbitrary epoch.
///
/// Implementations must be monotone (successive [`now_ns`](Clock::now_ns)
/// calls never decrease) and thread-safe; callers only ever subtract two
/// readings.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's (arbitrary) epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: [`Instant`]-backed, epoch fixed at first use so
/// readings fit comfortably in `u64` nanoseconds (~584 years of range).
#[derive(Debug, Default)]
pub struct MonotonicClock;

/// Process-wide epoch shared by every [`MonotonicClock`], so readings
/// from different clock instances are mutually comparable.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        epoch().elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for tests: starts at 0 and only moves when
/// [`advance_ns`](FakeClock::advance_ns) is called. Shared freely across
/// threads (atomic), so a test can drive a background worker's notion of
/// time from the outside.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jump to an absolute reading. Panics if `ns` would move time
    /// backwards — the [`Clock`] contract is monotone.
    pub fn set_ns(&self, ns: u64) {
        let prev = self.now.swap(ns, Ordering::SeqCst);
        assert!(
            prev <= ns,
            "FakeClock must not go backwards ({prev} -> {ns})"
        );
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn two_monotonic_clocks_share_an_epoch() {
        let a = MonotonicClock.now_ns();
        let b = MonotonicClock.now_ns();
        // Different instances, comparable readings: b happened after a.
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_only_moves_when_advanced() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(5);
        c.advance_ns(7);
        assert_eq!(c.now_ns(), 12);
        c.set_ns(40);
        assert_eq!(c.now_ns(), 40);
    }

    #[test]
    #[should_panic(expected = "must not go backwards")]
    fn fake_clock_rejects_time_travel() {
        let c = FakeClock::new();
        c.set_ns(10);
        c.set_ns(3);
    }

    #[test]
    fn fake_clock_is_shareable_across_threads() {
        let c = std::sync::Arc::new(FakeClock::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || c.advance_ns(100));
            }
        });
        assert_eq!(c.now_ns(), 400);
    }
}
