//! Matrix explorer: load a Matrix Market file (or generate a demo
//! matrix), print its Table I features, row histogram, and the strategy
//! the tuner picks for it — with the full candidate table.
//!
//! Run with `cargo run --release --example matrix_explorer [file.mtx]`.

use spmv_repro::autotune::binning::BinningScheme;
use spmv_repro::autotune::prelude::*;
use spmv_repro::sparse::gen::{self, RowRegime};
use spmv_repro::sparse::histogram::RowHistogram;
use spmv_repro::sparse::mm::read_matrix_market_file;
use spmv_repro::sparse::{CsrMatrix, FeatureSet, MatrixFeatures};

fn main() {
    let a: CsrMatrix<f32> = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path} …");
            read_matrix_market_file(std::path::Path::new(&path)).expect("valid Matrix Market file")
        }
        None => {
            println!("no file given — generating a demo mixture matrix");
            gen::mixture(
                25_000,
                25_000,
                &[
                    RowRegime::new(1, 5, 0.6),
                    RowRegime::new(20, 80, 0.3),
                    RowRegime::new(200, 500, 0.1),
                ],
                true,
                1,
            )
        }
    };

    println!("\n-- Table I features --");
    let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
    for (name, val) in MatrixFeatures::attr_names(FeatureSet::TableI)
        .iter()
        .zip(f.to_vec())
    {
        println!("  {name:>8}: {val:.2}");
    }

    println!("\n-- NNZ-per-row histogram --");
    let h = RowHistogram::of_matrix(&a);
    for (label, share) in h.labels().iter().zip(h.shares()) {
        let bar = "#".repeat((share * 50.0).round() as usize);
        println!("  {label:>12}: {:5.1}% {bar}", share * 100.0);
    }

    println!("\n-- Tuning (exhaustive oracle on the simulated APU) --");
    let device = GpuDevice::kaveri();
    let tuned = Tuner::new(device.clone()).tune(&a);
    println!("  candidates:");
    for c in &tuned.candidates {
        let marker = if (c.cycles - tuned.cycles).abs() < 1e-9 {
            " <- best"
        } else {
            ""
        };
        println!(
            "    {:<22} {:>12.0} cycles, {:>3} bins{marker}",
            c.scheme.describe(),
            c.cycles,
            c.choices.len()
        );
    }
    println!("\n  winning strategy: {}", tuned.strategy.describe());
    if let BinningScheme::Coarse { u } = tuned.strategy.binning {
        println!("  (virtual rows of {u} adjacent rows, binId = workload / {u})");
    }
    for c in tuned.winning_choices() {
        println!(
            "    bin {:>3}: {:>7} rows, {:>9} nnz -> {}",
            c.bin_id, c.rows, c.nnz, c.kernel
        );
    }
}
