//! Figure 5 — histogram of non-zeros per row over a UF-like corpus.
//!
//! The paper collects 2760 UF matrices and finds ≈98.7% of all rows have
//! ≤100 non-zeros — the motivation for capping the kernel pool at one
//! work-group per row. Regenerate with
//! `cargo run --release -p spmv-bench --bin fig5`
//! (`SPMV_FIG5_COUNT` shrinks the corpus).

use spmv_bench::{env_usize, Table};
use spmv_sparse::corpus::{corpus, CorpusConfig};
use spmv_sparse::histogram::RowHistogram;

fn main() {
    let count = env_usize("SPMV_FIG5_COUNT", 2760);
    let cfg = CorpusConfig {
        count,
        min_rows: 500,
        max_rows: 4_000,
        seed: 0xf16_5eed,
    };
    eprintln!("building {count}-matrix corpus …");
    let mut h = RowHistogram::figure5();
    for (i, e) in corpus(&cfg).iter().enumerate() {
        if i % 250 == 0 {
            eprintln!("  {i}/{count}");
        }
        h.add_matrix(&e.generate::<f32>());
    }

    println!("== Figure 5: NNZ-per-row histogram over {count} matrices ==\n");
    let mut t = Table::new(vec![
        "rows with NNZ in",
        "count",
        "share %",
        "cum % (<= upper)",
    ]);
    let mut cum = 0.0;
    for ((label, &c), share) in h.labels().iter().zip(h.counts()).zip(h.shares()) {
        cum += share * 100.0;
        t.row(vec![
            label.clone(),
            c.to_string(),
            format!("{:.2}", share * 100.0),
            format!("{cum:.2}"),
        ]);
    }
    t.print();
    let le100 = h.cumulative_share_below(101) * 100.0;
    println!("\nrows with <= 100 NNZ: {le100:.1}%   (paper: ~98.7%)");
    println!("total rows: {}", h.total_rows());
}
