//! Property tests of the storage formats and I/O: conversions are
//! lossless, structural invariants always hold.

use proptest::prelude::*;
use spmv_sparse::mm::{read_matrix_market, write_matrix_market};
use spmv_sparse::ops::{sparse_add, sparse_elementwise_mul, spgemm};
use spmv_sparse::{CooMatrix, CsrMatrix, FeatureSet, MatrixFeatures};

fn arb_csr() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..30, 1usize..30).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n, 1.0f64..10.0), 0..150).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(m, n);
                for (r, c, v) in triplets {
                    coo.push(r, c, v);
                }
                coo.to_csr()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coo_to_csr_is_canonical(a in arb_csr()) {
        prop_assert!(a.rows_sorted());
        prop_assert!(a.row_ptr().windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*a.row_ptr().last().unwrap(), a.nnz());
    }

    #[test]
    fn matrix_market_roundtrip(a in arb_csr()) {
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn transpose_preserves_spmv_adjoint(a in arb_csr()) {
        // <A v, w> == <v, Aᵀ w> for all v, w — checked with fixed probes.
        let v: Vec<f64> = (0..a.n_cols()).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let w: Vec<f64> = (0..a.n_rows()).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let av = a.spmv_seq_alloc(&v).unwrap();
        let atw = a.transpose().spmv_seq_alloc(&w).unwrap();
        let lhs: f64 = av.iter().zip(&w).map(|(x, y)| x * y).sum();
        let rhs: f64 = v.iter().zip(&atw).map(|(x, y)| x * y).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn features_are_internally_consistent(a in arb_csr()) {
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        prop_assert_eq!(f.m, a.n_rows());
        prop_assert_eq!(f.nnz, a.nnz());
        prop_assert!(f.min_nnz <= f.max_nnz || a.n_rows() == 0);
        if a.n_rows() > 0 {
            prop_assert!(f.min_nnz as f64 <= f.avg_nnz + 1e-12);
            prop_assert!(f.avg_nnz <= f.max_nnz as f64 + 1e-12);
            prop_assert!(f.var_nnz >= 0.0);
        }
    }

    #[test]
    fn spgemm_with_identity_is_neutral(a in arb_csr()) {
        let i = CsrMatrix::<f64>::identity(a.n_cols());
        prop_assert_eq!(spgemm(&a, &i).unwrap(), a);
    }

    #[test]
    fn add_is_commutative(a in arb_csr(), b_seed in 0u64..50) {
        let b = spmv_sparse::gen::random_uniform::<f64>(
            a.n_rows(), a.n_cols(), 0, 4.min(a.n_cols()), b_seed);
        let ab = sparse_add(&a, &b).unwrap();
        let ba = sparse_add(&b, &a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hadamard_nnz_bounded_by_min(a in arb_csr(), b_seed in 0u64..50) {
        let b = spmv_sparse::gen::random_uniform::<f64>(
            a.n_rows(), a.n_cols(), 0, 6.min(a.n_cols()), b_seed);
        let h = sparse_elementwise_mul(&a, &b).unwrap();
        prop_assert!(h.nnz() <= a.nnz().min(b.nnz()));
    }
}
