//! # spmv-sparse
//!
//! Sparse-matrix substrate for the SpMV auto-tuning reproduction
//! (Hou, Feng, Che — IPDPS Workshops 2017).
//!
//! This crate provides everything the auto-tuning framework consumes as
//! input:
//!
//! * [`CsrMatrix`] — the compressed sparse row format the paper is built
//!   around (Figure 1), with a sequential reference SpMV (Algorithm 1).
//! * [`CooMatrix`] — triplet format used for construction and I/O.
//! * [`mm`] — Matrix Market reader/writer, the interchange format of the
//!   UF (SuiteSparse) collection the paper trains on.
//! * [`gen`] — deterministic synthetic generators standing in for the
//!   application-domain matrices of the paper (road networks, meshes,
//!   FEM/structural blocks, power-law graphs, combinatorial incidence
//!   matrices, …).
//! * [`features`] — the Table I sparsity feature parameters
//!   (`M`, `N`, `NNZ`, `Var_NNZ`, `Avg_NNZ`, `Min_NNZ`, `Max_NNZ`) plus the
//!   extended histogram features the paper's §IV-C proposes.
//! * [`suite`] — synthetic analogues of the 16 representative matrices of
//!   Table II, scaled to laptop size.
//! * [`corpus`] — a sampler producing a UF-like training corpus of
//!   thousands of small matrices spanning the same sparsity regimes.

#![warn(missing_docs)]

pub mod coo;
pub mod corpus;
pub mod csr;
pub mod dense;
pub mod dense_block;
pub mod error;
pub mod features;
pub mod gen;
pub mod histogram;
pub mod mm;
pub mod ops;
pub mod packed;
pub mod reorder;
pub mod scalar;
pub mod solve;
pub mod special;
pub mod suite;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dense_block::DenseBlock;
pub use error::{CsrBuildError, SolveBuildError, SparseError};
pub use features::{ColumnLocality, FeatureSet, MatrixFeatures};
pub use histogram::RowHistogram;
pub use packed::{BaseMode, IndexKind, PackedSell, SlabView};
pub use scalar::Scalar;
pub use solve::{
    level_sets, split_triangular, sptrsv_seq, symgs_seq, SolveDirection, TriangularHalves,
    Triangularity,
};
pub use special::{BandSet, DenseRuns, RowRuns};
