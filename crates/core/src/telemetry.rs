//! Per-plan execution telemetry: the measurement half of the online
//! bottleneck classifier ([`crate::adapt`]).
//!
//! Every [`SpmvPlan`](crate::plan::SpmvPlan) carries one
//! [`PlanTelemetry`], updated by the execute paths after each launch
//! with the wall time the backend already measured — the hot path adds
//! a handful of relaxed atomic loads and stores, no locks, no extra
//! clock reads, no allocation. The EWMA update is deliberately a plain
//! load-compute-store (not a CAS loop): a concurrent racer can drop one
//! sample, which lags the average by one observation — acceptable for a
//! feedback signal, and it keeps the hot path wait-free.
//!
//! What is tracked, and why these four (they are the inputs Elafrou-
//! style bottleneck classification needs):
//!
//! * **EWMA of ns per output column** — the plan's observed speed. Per
//!   *column*, not per launch, so a K-wide SpMM batch and a
//!   single-vector execute feed the same average.
//! * **Model-predicted traffic** ([`TrafficStats`], frozen at compile
//!   time) — dividing it by the observed time yields the *effective
//!   bandwidth*; a plan far below the machine's streaming rate is not
//!   memory-bound no matter what its format gate assumed.
//! * **Static shard imbalance** — `max / mean` NNZ over the compiled
//!   shard deal (from the existing tile bookkeeping): the load-skew
//!   prior the Imbalanced class keys on.
//! * **Execute/column counters** — the refinement layer's hysteresis
//!   inputs (no classification before `min_executes` samples).

use crate::plan::TrafficStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Smoothing factor for the ns-per-column EWMA: each new sample
/// contributes 1/8. Small enough to ride out one cold-cache execute,
/// large enough that a genuine regime change (value refresh, co-tenant
/// pressure) shows within ~16 executes.
const EWMA_ALPHA: f64 = 0.125;

/// Lock-free execution telemetry attached to every compiled plan.
///
/// All mutation is through `&self` with relaxed atomics, so the struct
/// is `Sync` and recording composes with the concurrent executes a
/// serving process issues. See the module docs for the field rationale.
#[derive(Debug)]
pub struct PlanTelemetry {
    /// Completed launches (an SpMM batch counts once).
    executes: AtomicU64,
    /// Output columns produced (an SpMM batch counts its width `K`).
    columns: AtomicU64,
    /// EWMA of nanoseconds per output column, stored as `f64` bits
    /// (0 until the first sample).
    ewma_ns: AtomicU64,
    /// Most recent ns-per-column sample, stored as `f64` bits.
    last_ns: AtomicU64,
    /// `2 · nnz`: useful flops per output column (frozen at compile).
    flops_per_column: f64,
    /// Modelled bytes one execution moves (frozen at compile).
    model_bytes: u64,
    /// `max / mean` shard NNZ load of the compiled shard deal
    /// (1.0 for unsharded plans; frozen at compile).
    static_imbalance: f64,
}

impl PlanTelemetry {
    /// Telemetry for a plan covering `nnz` non-zeros with modelled
    /// per-execute `traffic` and per-shard `shard_loads` (NNZ; empty for
    /// unsharded plans).
    pub fn new(nnz: usize, traffic: &TrafficStats, shard_loads: &[usize]) -> Self {
        let static_imbalance = if shard_loads.is_empty() {
            1.0
        } else {
            let max = shard_loads.iter().copied().max().unwrap_or(0) as f64;
            let mean = shard_loads.iter().sum::<usize>() as f64 / shard_loads.len() as f64;
            if mean > 0.0 {
                max / mean
            } else {
                1.0
            }
        };
        Self {
            executes: AtomicU64::new(0),
            columns: AtomicU64::new(0),
            ewma_ns: AtomicU64::new(0.0f64.to_bits()),
            last_ns: AtomicU64::new(0.0f64.to_bits()),
            flops_per_column: 2.0 * nnz as f64,
            model_bytes: (traffic.value_bytes + traffic.index_bytes + traffic.x_gather_bytes)
                as u64,
            static_imbalance,
        }
    }

    /// Record one completed launch of `wall_ns` producing `k` output
    /// columns. O(1), wait-free, relaxed ordering throughout — a lost
    /// race drops one EWMA sample, never corrupts state.
    #[inline]
    pub fn record(&self, wall_ns: u64, k: usize) {
        if k == 0 {
            return;
        }
        let per_column = wall_ns as f64 / k as f64;
        self.executes.fetch_add(1, Ordering::Relaxed);
        self.columns.fetch_add(k as u64, Ordering::Relaxed);
        self.last_ns.store(per_column.to_bits(), Ordering::Relaxed);
        let prev = f64::from_bits(self.ewma_ns.load(Ordering::Relaxed));
        let next = if prev == 0.0 {
            per_column
        } else {
            prev + EWMA_ALPHA * (per_column - prev)
        };
        self.ewma_ns.store(next.to_bits(), Ordering::Relaxed);
    }

    /// A coherent-enough copy of the counters for classification and
    /// reporting (relaxed loads; exact once concurrent executes
    /// quiesce).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            executes: self.executes.load(Ordering::Relaxed),
            columns: self.columns.load(Ordering::Relaxed),
            ewma_ns_per_column: f64::from_bits(self.ewma_ns.load(Ordering::Relaxed)),
            last_ns_per_column: f64::from_bits(self.last_ns.load(Ordering::Relaxed)),
            flops_per_column: self.flops_per_column,
            model_bytes: self.model_bytes,
            static_imbalance: self.static_imbalance,
        }
    }

    /// Reset the measured state (counters and EWMA) while keeping the
    /// compile-time constants — used when a refined plan inherits an
    /// incumbent's slot and must earn its own history.
    pub fn reset_measurements(&self) {
        self.executes.store(0, Ordering::Relaxed);
        self.columns.store(0, Ordering::Relaxed);
        self.ewma_ns.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.last_ns.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// One observation of a plan's [`PlanTelemetry`] — plain values, safe to
/// hold across classification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// Completed launches.
    pub executes: u64,
    /// Output columns produced across all launches.
    pub columns: u64,
    /// EWMA of ns per output column (0.0 before the first sample).
    pub ewma_ns_per_column: f64,
    /// Most recent ns-per-column sample.
    pub last_ns_per_column: f64,
    /// `2 · nnz` — flops per output column.
    pub flops_per_column: f64,
    /// Modelled bytes one execution moves (compile-time traffic model).
    pub model_bytes: u64,
    /// `max / mean` shard load of the compiled deal (1.0 unsharded).
    pub static_imbalance: f64,
}

impl TelemetrySnapshot {
    /// Observed GFLOP/s per column from the EWMA (0.0 with no samples).
    pub fn gflops(&self) -> f64 {
        if self.ewma_ns_per_column <= 0.0 {
            return 0.0;
        }
        self.flops_per_column / self.ewma_ns_per_column
    }

    /// Observed effective bandwidth in bytes/ns (= GB/s) against the
    /// *modelled* traffic: what the memory system actually sustained if
    /// the traffic model is right, an overestimate where caches absorb
    /// modelled bytes. 0.0 with no samples.
    pub fn effective_bandwidth(&self) -> f64 {
        if self.ewma_ns_per_column <= 0.0 {
            return 0.0;
        }
        self.model_bytes as f64 / self.ewma_ns_per_column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(bytes: usize) -> TrafficStats {
        TrafficStats {
            value_bytes: bytes,
            index_bytes: 0,
            x_gather_bytes: 0,
            nnz: 100,
        }
    }

    #[test]
    fn first_sample_seeds_the_ewma() {
        let t = PlanTelemetry::new(100, &traffic(800), &[]);
        t.record(1_000, 1);
        let s = t.snapshot();
        assert_eq!(s.executes, 1);
        assert_eq!(s.columns, 1);
        assert_eq!(s.ewma_ns_per_column, 1_000.0);
        assert_eq!(s.last_ns_per_column, 1_000.0);
    }

    #[test]
    fn ewma_converges_toward_sustained_rate() {
        let t = PlanTelemetry::new(100, &traffic(800), &[]);
        t.record(1_000, 1);
        for _ in 0..64 {
            t.record(2_000, 1);
        }
        let s = t.snapshot();
        assert!(
            (s.ewma_ns_per_column - 2_000.0).abs() < 2.0,
            "ewma {} should have converged to 2000",
            s.ewma_ns_per_column
        );
    }

    #[test]
    fn batches_normalise_per_column() {
        let t = PlanTelemetry::new(100, &traffic(800), &[]);
        // An 8-wide batch in 8000 ns is 1000 ns/column.
        t.record(8_000, 8);
        let s = t.snapshot();
        assert_eq!(s.executes, 1);
        assert_eq!(s.columns, 8);
        assert_eq!(s.ewma_ns_per_column, 1_000.0);
    }

    #[test]
    fn zero_width_records_are_ignored() {
        let t = PlanTelemetry::new(100, &traffic(800), &[]);
        t.record(5_000, 0);
        assert_eq!(t.snapshot().executes, 0);
    }

    #[test]
    fn derived_rates() {
        let t = PlanTelemetry::new(500, &traffic(4_000), &[]);
        t.record(1_000, 1);
        let s = t.snapshot();
        // 1000 flops in 1000 ns = 1 GFLOP/s; 4000 bytes in 1000 ns = 4 GB/s.
        assert!((s.gflops() - 1.0).abs() < 1e-12);
        assert!((s.effective_bandwidth() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let t = PlanTelemetry::new(100, &traffic(800), &[300, 100, 200]);
        assert!((t.snapshot().static_imbalance - 1.5).abs() < 1e-12);
        let flat = PlanTelemetry::new(100, &traffic(800), &[]);
        assert_eq!(flat.snapshot().static_imbalance, 1.0);
    }

    #[test]
    fn reset_keeps_compile_time_constants() {
        let t = PlanTelemetry::new(500, &traffic(4_000), &[200, 100]);
        t.record(1_000, 4);
        t.reset_measurements();
        let s = t.snapshot();
        assert_eq!((s.executes, s.columns), (0, 0));
        assert_eq!(s.ewma_ns_per_column, 0.0);
        assert_eq!(s.flops_per_column, 1_000.0);
        assert_eq!(s.model_bytes, 4_000);
        assert!((s.static_imbalance - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_records_never_corrupt_counters() {
        let t = std::sync::Arc::new(PlanTelemetry::new(100, &traffic(800), &[]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        t.record(1_000, 1);
                    }
                });
            }
        });
        let s = t.snapshot();
        // Counters are fetch_add: exact. The EWMA may have dropped
        // racing samples but must remain a sane value.
        assert_eq!(s.executes, 4_000);
        assert_eq!(s.columns, 4_000);
        assert!(s.ewma_ns_per_column > 0.0 && s.ewma_ns_per_column <= 1_000.0 + 1e-9);
    }
}
