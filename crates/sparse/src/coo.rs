//! Coordinate (triplet) format, the natural construction and interchange
//! format: generators and the Matrix Market reader build a [`CooMatrix`]
//! and convert it to CSR once.

use crate::csr::CsrMatrix;

use crate::scalar::Scalar;

/// A sparse matrix as an unordered list of `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct CooMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// An empty `n_rows × n_cols` triplet list.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows <= u32::MAX as usize && n_cols <= u32::MAX as usize);
        Self {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Pre-allocate space for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        let mut m = Self::new(n_rows, n_cols);
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.vals.reserve(cap);
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append one entry. Panics in debug builds if out of range.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: T) {
        debug_assert!(row < self.n_rows, "row {row} out of range {}", self.n_rows);
        debug_assert!(col < self.n_cols, "col {col} out of range {}", self.n_cols);
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Iterate over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Convert to CSR, summing duplicate `(row, col)` entries.
    ///
    /// The conversion is a counting sort on rows followed by an in-row
    /// sort on columns, so it is `O(nnz log nnz_row)` and deterministic.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // Counting sort by row.
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut next = counts.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let slot = next[r as usize];
            next[r as usize] += 1;
            col_idx[slot] = c;
            values[slot] = v;
        }
        // Sort within each row and merge duplicates.
        let mut out_ptr = vec![0usize; self.n_rows + 1];
        let mut out_cols: Vec<u32> = Vec::with_capacity(self.nnz());
        let mut out_vals: Vec<T> = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for i in 0..self.n_rows {
            let (s, e) = (counts[i], counts[i + 1]);
            scratch.clear();
            scratch.extend(
                col_idx[s..e]
                    .iter()
                    .copied()
                    .zip(values[s..e].iter().copied()),
            );
            scratch.sort_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < scratch.len() {
                let (c, mut v) = scratch[k];
                let mut j = k + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                k = j;
            }
            out_ptr[i + 1] = out_cols.len();
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, out_ptr, out_cols, out_vals)
    }

    /// Symmetrise: for every off-diagonal `(i, j, v)` also store `(j, i, v)`.
    /// Requires a square triplet list; used when expanding Matrix Market
    /// `symmetric` files.
    pub fn symmetrise(&mut self) {
        assert_eq!(self.n_rows, self.n_cols, "symmetrise needs a square matrix");
        let n = self.nnz();
        for k in 0..n {
            if self.rows[k] != self.cols[k] {
                let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
                self.rows.push(c);
                self.cols.push(r);
                self.vals.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_csr_sorts_and_merges_duplicates() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 5.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 7.0); // duplicate of (1,2)
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 3);
        assert!(a.rows_sorted());
        let (cols, vals) = a.row(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[2.0, 12.0]);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 0, 1.0);
        let a = coo.to_csr();
        assert_eq!(a.row_nnz(0), 0);
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.row_nnz(2), 0);
        assert_eq!(a.row_nnz(3), 1);
    }

    #[test]
    fn symmetrise_mirrors_off_diagonals() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 9.0); // diagonal: not duplicated
        coo.symmetrise();
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 3);
        let d = a.to_dense();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 0), 2.0);
        assert_eq!(d.get(1, 1), 9.0);
    }

    #[test]
    fn roundtrip_csr_coo_csr() {
        let a = crate::csr::figure1_example::<f64>();
        let b = a.to_coo().to_csr();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_reports_pushed_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        let t: Vec<_> = coo.iter().collect();
        assert_eq!(t, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }
}
