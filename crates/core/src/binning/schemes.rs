//! The alternative binning schemes of §III-B/§IV-C and the dispatch
//! helper that applies any [`BinningScheme`].

use super::coarse::coarse_binning;
use super::{BinningScheme, Bins, MAX_BINS};
use spmv_sparse::{CsrMatrix, Scalar};

/// Fine-grained binning: every single row is an entry, binned by its own
/// NNZ. This is the high-overhead scheme the paper declines to use by
/// default (Figure 8) but keeps in the design space.
pub fn fine_binning<T: Scalar>(a: &CsrMatrix<T>) -> Bins {
    coarse_binning(a, 1)
}

/// Single-bin "binning": all rows in bin 0 (§IV-C, Figure 9). The span is
/// 1 so the bin expands to every row.
pub fn single_binning<T: Scalar>(a: &CsrMatrix<T>) -> Bins {
    let m = a.n_rows();
    let mut bins: Vec<Vec<u32>> = vec![Vec::new()];
    bins[0] = (0..m as u32).collect();
    Bins { m, span: 1, bins }
}

/// Hybrid binning: rows whose NNZ is below `threshold` are binned
/// per-row (fine); runs of `u` adjacent rows at or above the threshold
/// are binned coarsely. §III-B sketches this as an extension; we place
/// coarse entries in the upper half of the bin space so the two regimes
/// keep distinct kernels.
///
/// Fine entries occupy bins `[0, MAX_BINS/2)` by `min(nnz, MAX_BINS/2−1)`;
/// coarse virtual rows occupy `[MAX_BINS/2, MAX_BINS)` by
/// `MAX_BINS/2 + min(wl/u, MAX_BINS/2−1)`.
///
/// The returned [`Bins`] has `span = 1`; coarse groups are expanded to
/// explicit rows at construction (costlier — that is the documented
/// trade-off of hybrid schemes).
pub fn hybrid_binning<T: Scalar>(a: &CsrMatrix<T>, threshold: usize, u: usize) -> Bins {
    assert!(u >= 1);
    let m = a.n_rows();
    let half = MAX_BINS / 2;
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); MAX_BINS];
    let mut i = 0usize;
    while i < m {
        let nnz = a.row_nnz(i);
        if nnz < threshold {
            bins[nnz.min(half - 1)].push(i as u32);
            i += 1;
        } else {
            // Start a coarse virtual row of up to `u` adjacent rows, all
            // at/above threshold.
            let start = i;
            let mut end = i;
            while end < m && end - start < u && a.row_nnz(end) >= threshold {
                end += 1;
            }
            let wl = a.range_nnz(start, end);
            let bin = half + (wl / u).min(half - 1);
            for r in start..end {
                bins[bin].push(r as u32);
            }
            i = end;
        }
    }
    Bins { m, span: 1, bins }
}

/// Apply any [`BinningScheme`] to a matrix.
pub fn bin_matrix<T: Scalar>(a: &CsrMatrix<T>, scheme: BinningScheme) -> Bins {
    match scheme {
        BinningScheme::Coarse { u } => coarse_binning(a, u),
        BinningScheme::Fine => fine_binning(a),
        BinningScheme::Hybrid { threshold, u } => hybrid_binning(a, threshold, u),
        BinningScheme::Single => single_binning(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;

    fn irregular() -> CsrMatrix<f64> {
        gen::mixture(
            500,
            2000,
            &[
                RowRegime::new(1, 3, 0.6),
                RowRegime::new(20, 40, 0.3),
                RowRegime::new(200, 400, 0.1),
            ],
            true,
            9,
        )
    }

    #[test]
    fn single_binning_holds_every_row() {
        let a = irregular();
        let bins = single_binning(&a);
        assert_eq!(bins.populated(), 1);
        assert_eq!(bins.expand(0).len(), 500);
        assert!(bins.validate().is_ok());
    }

    #[test]
    fn fine_binning_is_per_row() {
        let a = irregular();
        let bins = fine_binning(&a);
        assert_eq!(bins.entries(), 500);
        assert!(bins.validate().is_ok());
    }

    #[test]
    fn hybrid_separates_regimes() {
        let a = irregular();
        let bins = hybrid_binning(&a, 10, 50);
        assert!(bins.validate().is_ok());
        let half = MAX_BINS / 2;
        // Short rows live strictly below `half`, long rows at/above.
        for (b, bin) in bins.bins.iter().enumerate() {
            for &r in bin {
                let nnz = a.row_nnz(r as usize);
                if b < half {
                    assert!(nnz < 10, "row {r} (nnz {nnz}) in fine bin {b}");
                } else {
                    assert!(nnz >= 10, "row {r} (nnz {nnz}) in coarse bin {b}");
                }
            }
        }
    }

    #[test]
    fn bin_matrix_dispatches_all_schemes() {
        let a = irregular();
        for scheme in [
            BinningScheme::Coarse { u: 20 },
            BinningScheme::Fine,
            BinningScheme::Hybrid {
                threshold: 10,
                u: 50,
            },
            BinningScheme::Single,
        ] {
            let bins = bin_matrix(&a, scheme);
            assert!(bins.validate().is_ok(), "{scheme:?}");
        }
    }
}
