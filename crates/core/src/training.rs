//! The two-stage off-line training pipeline (§III-C).
//!
//! Stage 1 learns `features → best binning granularity U`; stage 2 learns
//! `features + U + binId → best kernel`. Ground-truth labels come from
//! the exhaustive [`Tuner`] run over a synthetic UF-like corpus; 75% of
//! matrices train, 25% test (the paper's split). The paper reports ≈5%
//! stage-1 and ≈15% stage-2 test error.

use crate::binning::BinningScheme;
use crate::kernels::{KernelId, ALL_KERNELS};
use crate::strategy::Strategy;
use crate::tuner::{Tuner, TunerConfig};
use spmv_gpusim::GpuDevice;
use spmv_ml::cv::fold_indices;
use spmv_ml::{AttrSpec, ConfusionMatrix, Dataset, DecisionTree, RuleSet, TreeConfig};
use spmv_parallel::parallel_map_collect;
use spmv_sparse::corpus::{corpus, CorpusConfig};
use spmv_sparse::{CsrMatrix, FeatureSet, MatrixFeatures, Scalar};

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// The synthetic corpus standing in for the UF collection.
    pub corpus: CorpusConfig,
    /// Fraction of matrices used for training (paper: 0.75).
    pub train_frac: f64,
    /// Split seed.
    pub seed: u64,
    /// Decision-tree hyper-parameters.
    pub tree: TreeConfig,
    /// Oracle search space used to produce labels.
    pub tuner: TunerConfig,
    /// Feature set extracted per matrix.
    pub features: FeatureSet,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            corpus: CorpusConfig {
                count: 300,
                min_rows: 500,
                max_rows: 4_000,
                seed: 0x5eed_c0de,
            },
            train_frac: 0.75,
            seed: 17,
            tree: TreeConfig::default(),
            tuner: TunerConfig::training(),
            features: FeatureSet::TableI,
        }
    }
}

/// The trained two-stage model: what ships with the runtime.
pub struct TrainedModel {
    /// Stage-1 rule-set: features → granularity class.
    pub stage1: RuleSet,
    /// Stage-2 rule-set: features + U + binId → kernel class.
    pub stage2: RuleSet,
    /// Class index → granularity value.
    pub u_classes: Vec<usize>,
    /// Feature set the model was trained on.
    pub features: FeatureSet,
}

impl TrainedModel {
    /// Predict the binning granularity for a feature vector.
    pub fn predict_u(&self, f: &MatrixFeatures) -> usize {
        let class = self.stage1.predict(&f.to_vec());
        self.u_classes[class]
    }

    /// Predict the kernel for one bin under granularity `u`.
    pub fn predict_kernel(&self, f: &MatrixFeatures, u: usize, bin_id: usize) -> KernelId {
        let mut row = f.to_vec();
        row.push(u as f64);
        row.push(bin_id as f64);
        KernelId::from_index(self.stage2.predict(&row))
    }

    /// Predict a complete strategy for a matrix (the runtime path in
    /// Figure 3's "predict process").
    pub fn predict_strategy<T: Scalar>(&self, a: &CsrMatrix<T>) -> Strategy {
        let f = MatrixFeatures::extract(a, self.features);
        let u = self.predict_u(&f);
        let kernels: Vec<KernelId> = (0..crate::binning::MAX_BINS)
            .map(|bin_id| self.predict_kernel(&f, u, bin_id))
            .collect();
        Strategy {
            binning: BinningScheme::Coarse { u },
            kernels,
        }
    }
}

/// Quality report of one training run.
#[derive(Clone, Debug)]
pub struct TrainingReport {
    /// Matrices labelled.
    pub n_matrices: usize,
    /// Stage-1 test confusion matrix (granularity classes).
    pub stage1_cm: ConfusionMatrix,
    /// Stage-2 test confusion matrix (kernel classes).
    pub stage2_cm: ConfusionMatrix,
    /// Stage-1 training-set error.
    pub stage1_train_error: f64,
    /// Stage-2 training-set error.
    pub stage2_train_error: f64,
    /// Examples in the stage-2 dataset (one per populated bin).
    pub stage2_examples: usize,
}

impl TrainingReport {
    /// Stage-1 test error rate (paper: ≈5%).
    pub fn stage1_error(&self) -> f64 {
        self.stage1_cm.error_rate()
    }

    /// Stage-2 test error rate (paper: up to 15%).
    pub fn stage2_error(&self) -> f64 {
        self.stage2_cm.error_rate()
    }
}

/// Labels produced by the oracle for one matrix.
#[derive(Clone, Debug, Default)]
struct MatrixLabels {
    features: Vec<f64>,
    u_class: usize,
    /// `(bin_id, kernel index, bin nnz)` per populated bin of the best U.
    bins: Vec<(usize, usize, usize)>,
}

/// The off-line trainer.
pub struct Trainer {
    device: GpuDevice,
    config: TrainerConfig,
}

impl Trainer {
    /// Trainer for `device` with default configuration.
    pub fn new(device: GpuDevice) -> Self {
        Self {
            device,
            config: TrainerConfig::default(),
        }
    }

    /// Trainer with explicit configuration.
    pub fn with_config(device: GpuDevice, config: TrainerConfig) -> Self {
        Self { device, config }
    }

    /// Run the whole pipeline: corpus generation, oracle labelling,
    /// two-stage fitting, and held-out evaluation.
    pub fn train(&self) -> (TrainedModel, TrainingReport) {
        let cfg = &self.config;
        let entries = corpus(&cfg.corpus);
        let granularities = cfg.tuner.granularities.clone();
        let tuner = Tuner::with_config(self.device.clone(), cfg.tuner.clone());

        // Label every corpus matrix with the oracle (parallel across
        // matrices; the tuner itself then runs sequentially per matrix).
        let labels: Vec<MatrixLabels> = parallel_map_collect(entries.len(), 1, |i| {
            let a: CsrMatrix<f32> = entries[i].generate();
            let f = MatrixFeatures::extract(&a, cfg.features);
            let tuned = tuner.tune(&a);
            let u = match tuned.strategy.binning {
                BinningScheme::Coarse { u } => u,
                _ => granularities[0],
            };
            let u_class = granularities.iter().position(|&g| g == u).unwrap_or(0);
            let bins = tuned
                .winning_choices()
                .iter()
                .map(|c| (c.bin_id, c.kernel.index(), c.nnz))
                .collect();
            MatrixLabels {
                features: f.to_vec(),
                u_class,
                bins,
            }
        });

        // Split by matrix.
        let (train_idx, test_idx) = split(labels.len(), cfg.train_frac, cfg.seed);

        // Stage 1 dataset.
        let attr_names = MatrixFeatures::attr_names(cfg.features);
        let s1_attrs: Vec<AttrSpec> = attr_names.iter().map(|n| AttrSpec::numeric(*n)).collect();
        let s1_classes: Vec<String> = granularities.iter().map(|u| format!("U={u}")).collect();
        let mut s1_train = Dataset::new(s1_attrs.clone(), s1_classes.clone());
        for &i in &train_idx {
            s1_train.push(&labels[i].features, labels[i].u_class);
        }

        // Stage 2 dataset: features + U + binId → kernel.
        let mut s2_attrs = s1_attrs;
        s2_attrs.push(AttrSpec::numeric("U"));
        s2_attrs.push(AttrSpec::numeric("binID"));
        let s2_classes: Vec<String> = ALL_KERNELS.iter().map(|k| k.label()).collect();
        let mut s2_train = Dataset::new(s2_attrs.clone(), s2_classes.clone());
        let s2_rows = |ds: &mut Dataset, idx: &[usize]| {
            for &i in idx {
                let l = &labels[i];
                let u = granularities[l.u_class] as f64;
                for &(bin_id, kernel_idx, _nnz) in &l.bins {
                    let mut row = l.features.clone();
                    row.push(u);
                    row.push(bin_id as f64);
                    ds.push(&row, kernel_idx);
                }
            }
        };
        s2_rows(&mut s2_train, &train_idx);

        // Fit trees and extract rule-sets.
        let s1_tree = DecisionTree::fit(&s1_train, &cfg.tree);
        let s1_rules = RuleSet::from_tree(&s1_tree, &s1_train, cfg.tree.cf);
        let s2_tree = DecisionTree::fit(&s2_train, &cfg.tree);
        let s2_rules = RuleSet::from_tree(&s2_tree, &s2_train, cfg.tree.cf);

        // Evaluate.
        let mut s1_cm = ConfusionMatrix::new(granularities.len());
        for &i in &test_idx {
            s1_cm.record(labels[i].u_class, s1_rules.predict(&labels[i].features));
        }
        let mut s2_cm = ConfusionMatrix::new(ALL_KERNELS.len());
        let mut stage2_examples = s2_train.len();
        for &i in &test_idx {
            let l = &labels[i];
            let u = granularities[l.u_class] as f64;
            for &(bin_id, kernel_idx, _) in &l.bins {
                let mut row = l.features.clone();
                row.push(u);
                row.push(bin_id as f64);
                s2_cm.record(kernel_idx, s2_rules.predict(&row));
                stage2_examples += 1;
            }
        }
        let train_err = |rules: &RuleSet, ds: &Dataset| -> f64 {
            if ds.is_empty() {
                return 0.0;
            }
            let wrong = (0..ds.len())
                .filter(|&i| rules.predict(ds.row(i)) != ds.label(i))
                .count();
            wrong as f64 / ds.len() as f64
        };

        let report = TrainingReport {
            n_matrices: labels.len(),
            stage1_train_error: train_err(&s1_rules, &s1_train),
            stage2_train_error: train_err(&s2_rules, &s2_train),
            stage1_cm: s1_cm,
            stage2_cm: s2_cm,
            stage2_examples,
        };
        let model = TrainedModel {
            stage1: s1_rules,
            stage2: s2_rules,
            u_classes: granularities,
            features: cfg.features,
        };
        (model, report)
    }
}

fn split(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    // Reuse the ML crate's deterministic fold machinery: k folds where
    // roughly (1-frac)·k folds form the test set.
    let k = 8usize.min(n.max(2));
    let folds = fold_indices(n, k, seed);
    let test_folds = (((1.0 - train_frac) * k as f64).round() as usize).clamp(1, k - 1);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (fi, fold) in folds.into_iter().enumerate() {
        if fi < test_folds {
            test.extend(fold);
        } else {
            train.extend(fold);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn tiny_config() -> TrainerConfig {
        TrainerConfig {
            corpus: CorpusConfig {
                count: 40,
                min_rows: 400,
                max_rows: 1_500,
                seed: 99,
            },
            tuner: TunerConfig {
                granularities: vec![10, 100, 1000],
                kernels: ALL_KERNELS.to_vec(),
                include_single_bin: false,
            },
            ..Default::default()
        }
    }

    /// Training is the expensive step; run it once, share it below.
    fn shared_model() -> &'static (TrainedModel, TrainingReport) {
        static MODEL: OnceLock<(TrainedModel, TrainingReport)> = OnceLock::new();
        MODEL.get_or_init(|| Trainer::with_config(GpuDevice::kaveri(), tiny_config()).train())
    }

    #[test]
    fn training_produces_a_usable_model() {
        let (model, report) = shared_model();
        assert_eq!(report.n_matrices, 40);
        assert!(report.stage1_cm.total() > 0);
        assert!(report.stage2_cm.total() > 0);
        // The model must produce valid predictions for arbitrary inputs.
        let a = spmv_sparse::gen::random_uniform::<f32>(500, 500, 1, 30, 1);
        let s = model.predict_strategy(&a);
        match s.binning {
            BinningScheme::Coarse { u } => assert!([10, 100, 1000].contains(&u)),
            other => panic!("unexpected scheme {other:?}"),
        }
        assert_eq!(s.kernels.len(), crate::binning::MAX_BINS);
    }

    #[test]
    fn split_respects_fraction_and_partitions() {
        let (train, test) = split(100, 0.75, 3);
        assert_eq!(train.len() + test.len(), 100);
        assert!(
            test.len() >= 13 && test.len() <= 38,
            "test = {}",
            test.len()
        );
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn model_predictions_are_deterministic() {
        let (model, _) = shared_model();
        let a = spmv_sparse::gen::powerlaw::<f32>(800, 1, 100, 2.0, 5);
        let s1 = model.predict_strategy(&a);
        let s2 = model.predict_strategy(&a);
        assert_eq!(s1, s2);
    }

    #[test]
    fn stage1_learns_something_on_separable_corpus() {
        // Sanity: test error must beat the trivial always-majority rate
        // by a reasonable margin... unless the corpus collapses to one
        // class, in which case error is ~0 anyway.
        let (_, report) = shared_model();
        assert!(
            report.stage1_error() < 0.5,
            "stage-1 error {}",
            report.stage1_error()
        );
    }
}
