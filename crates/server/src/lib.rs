//! # spmv-serve — multi-tenant SpMV serving layer
//!
//! Everything below this crate answers *one* query shape — `y = A x`
//! for a registered sparse matrix — but a serving process answers it
//! for many tenants against a shared pool of matrices, where the two
//! dominant costs are ones a single-shot CLI never sees:
//!
//! * **Plan compilation amortization.** Building and verifying a plan
//!   costs orders of magnitude more than executing it. The
//!   [`cache::PlanCache`] keys verified plans by pattern fingerprint +
//!   frozen [`PlanConfig`](spmv_autotune::PlanConfig), dedups
//!   concurrent builds (single-flight), serves hits without an
//!   exclusive lock, and confirms every fingerprint match with an
//!   independent row-pointer checksum so a hash collision can never
//!   smuggle the wrong plan to a tenant.
//! * **Memory-traffic amortization.** `K` requests against the same
//!   matrix as one SpMM batch walk the pattern once instead of `K`
//!   times. The [`serve::SpmvServer`] admission queue coalesces
//!   same-matrix requests (bounded by `max_batch` and a per-anchor
//!   `coalesce_window`) while a deficit-round-robin scheduler with
//!   earliest-deadline tie-breaks keeps tenants fair. Batched responses
//!   are bit-for-bit identical to standalone single-vector executes.
//!
//! * **Measured-feedback refinement.** Compile-time plan selection is
//!   a prediction; the serving process can check it. The
//!   [`refine`] module watches each cached plan's execute telemetry,
//!   classifies divergence from the traffic model into a bottleneck,
//!   and (under `SPMV_REFINE=auto`) compiles the suggested fix in the
//!   background, A/B-times it against the incumbent, and publishes it
//!   via [`cache::PlanCache::swap`] only when it measures faster —
//!   with bit-for-bit identical responses across the swap.
//!
//! The dispatcher's lost-wakeup-free sleep protocol is exhaustively
//! model-checked by `AdmissionModel` in the analysis crate; the
//! refiner's publish protocol (verify *before* swap, never racing a
//! builder) is checked the same way by `RefineModel`.

pub mod cache;
pub mod refine;
pub mod serve;

pub use cache::{CacheConfig, CacheError, CacheStats, PlanCache, PlanKey};
pub use refine::{
    classify_plan, probe_candidate, ProbeReport, RefineConfig, RefineError, RefineMode,
    RefineScheduler, RefineStats,
};
pub use serve::{
    MatrixId, Response, ServeConfig, ServeError, ServeStats, SpmvServer, TenantId, Ticket,
};
