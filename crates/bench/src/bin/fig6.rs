//! Figure 6 — kernel-auto versus the single-kernel defaults
//! (kernel-serial, kernel-vector) over the 16 representative matrices.
//!
//! The paper reports 1.7×–11.9× speedups over kernel-serial and
//! 1.2×–52.0× over kernel-vector, with kernel-auto winning on all 16.
//! Regenerate with `cargo run --release -p spmv-bench --bin fig6`.

use spmv_autotune::prelude::*;
use spmv_bench::table::{f3, Table};
use spmv_bench::{load_suite, train_default_model};

fn main() {
    let device = GpuDevice::kaveri();
    let (model, report) = train_default_model(&device);
    eprintln!(
        "model: stage-1 test error {:.1}%, stage-2 test error {:.1}%",
        report.stage1_error() * 100.0,
        report.stage2_error() * 100.0
    );
    let auto = AutoSpmv::with_model(device.clone(), model);

    println!("== Figure 6: normalised execution time (kernel-auto = 1.0) ==\n");
    let mut t = Table::new(vec![
        "matrix",
        "serial/auto",
        "vector/auto",
        "auto strategy",
    ]);
    let mut s_speedups: Vec<f64> = Vec::new();
    let mut v_speedups: Vec<f64> = Vec::new();
    for case in load_suite() {
        let a = &case.matrix;
        let v = vec![1.0f32; a.n_cols()];
        let mut u = vec![0.0f32; a.n_rows()];
        // Compile the predicted strategy into a plan, then execute it —
        // the same plan/execute path iterative callers use.
        let plan = auto.plan(a);
        let cost = plan
            .execute(a, &v, &mut u)
            .expect("plan compiled for this matrix");
        let auto_stats = cost.stats.unwrap_or_default();
        let serial = run_single_kernel(&device, a, KernelId::Serial, &v, &mut u);
        let vector = run_single_kernel(&device, a, KernelId::Vector, &v, &mut u);
        let su = serial.cycles / auto_stats.cycles;
        let vu = vector.cycles / auto_stats.cycles;
        s_speedups.push(su);
        v_speedups.push(vu);
        t.row(vec![
            case.meta.name.to_string(),
            f3(su),
            f3(vu),
            plan.strategy().describe(),
        ]);
    }
    t.print();

    let min_max = |v: &[f64]| {
        (
            v.iter().copied().fold(f64::INFINITY, f64::min),
            v.iter().copied().fold(0.0f64, f64::max),
        )
    };
    let (smin, smax) = min_max(&s_speedups);
    let (vmin, vmax) = min_max(&v_speedups);
    let wins = s_speedups
        .iter()
        .zip(&v_speedups)
        .filter(|(&s, &v)| s >= 1.0 && v >= 1.0)
        .count();
    println!("\nspeedup over kernel-serial: {smin:.1}x – {smax:.1}x   (paper: 1.7x – 11.9x)");
    println!("speedup over kernel-vector: {vmin:.1}x – {vmax:.1}x   (paper: 1.2x – 52.0x)");
    println!("kernel-auto at least as fast as both defaults on {wins}/16 matrices (paper: 16/16)");
}
