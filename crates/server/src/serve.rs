//! Admission-queue serving: deficit round-robin fairness and SpMM
//! coalescing over the concurrent plan cache.
//!
//! The server accepts single-vector requests tagged `(tenant, matrix,
//! deadline)` and turns same-matrix requests into one SpMM launch: the
//! plan/execute split makes a `K`-column batch cost barely more than a
//! single `y = Ax` (the pattern walk amortizes across columns), so at
//! saturation a coalesced server clears the queue `~K×` faster than a
//! one-at-a-time loop. Batched results are **bit-for-bit** what the
//! standalone single-vector path produces (a repo-wide invariant of
//! `execute_batch`), so coalescing is invisible to tenants.
//!
//! Scheduling is two-level:
//!
//! 1. **Deficit round-robin across tenants.** Every backlogged tenant
//!    holds a deficit counter; dispatching a request costs one unit.
//!    When no backlogged tenant has deficit left, every backlogged
//!    tenant is topped up by [`ServeConfig::quantum`] — a new round.
//!    Among eligible tenants the dispatcher picks the one whose head
//!    request has the **earliest deadline** (ties: lowest tenant id),
//!    so fairness is long-run per-tenant throughput while short-run
//!    order respects urgency.
//! 2. **Same-matrix coalescing.** The selected request anchors a batch.
//!    The dispatcher then pulls *riders* — queued requests for the same
//!    matrix, from any tenant, each charged one deficit unit (possibly
//!    driving the counter negative, which the next quantum repays) —
//!    until the batch holds [`ServeConfig::max_batch`] columns or the
//!    anchor has waited [`ServeConfig::coalesce_window`] since arrival.
//!    The window bounds the latency cost of coalescing: an anchor never
//!    waits past `enqueued + coalesce_window` for company.
//!
//! The dispatcher's sleep/wake protocol — re-check the queue *after*
//! every dispatch and only then sleep, with the "going to sleep"
//! decision made atomically under the queue lock — is exactly the
//! `AdmissionModel` interleaving exhaustively checked in the analysis
//! crate (`spmv-lint`): an arrival can never slip between "batch
//! dispatched" and "dispatcher asleep" and be stranded.
//!
//! Value refreshes ride the `values_id` mechanism: [`SpmvServer::
//! update_values`] swaps the registered matrix for a value-updated
//! clone (same pattern, new id), and cached plans re-gather their
//! packed value slabs lazily on next execute — no plan rebuild, no
//! cache invalidation.

use crate::cache::{CacheConfig, CacheError, CacheStats, PlanCache, PlanKey};
use crate::refine::{
    classify_plan, feature_row, learner_schema, probe_candidate, RefineConfig, RefineCounters,
    RefineMode, RefineScheduler, RefineStats, CLASS_INCUMBENT, CLASS_REFINED,
};
use spmv_autotune::{
    confirm_row_ptr, NativeCpuBackend, PatternFingerprint, PlanConfig, SpmvPlan, Strategy,
};
use spmv_ml::{IncrementalLearner, OnlineConfig, RetrainOutcome};
use spmv_parallel::{Clock, MonotonicClock};
use spmv_sparse::{CsrMatrix, DenseBlock, Scalar};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tenant identity; fairness is accounted per tenant.
pub type TenantId = u32;

/// Registered-matrix identity; coalescing groups by matrix.
pub type MatrixId = u64;

/// Why a request (or a registry call) failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request names a matrix that was never registered.
    UnknownMatrix(MatrixId),
    /// The request vector length does not match the matrix width.
    DimensionMismatch {
        matrix: MatrixId,
        expected: usize,
        got: usize,
    },
    /// Plan compile/verify failed (shared by every request that joined
    /// the build).
    Plan(String),
    /// The batched launch itself failed.
    Exec(String),
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownMatrix(id) => write!(f, "unknown matrix id {id}"),
            ServeError::DimensionMismatch {
                matrix,
                expected,
                got,
            } => write!(
                f,
                "matrix {matrix} expects a length-{expected} vector, got {got}"
            ),
            ServeError::Plan(msg) => write!(f, "plan build failed: {msg}"),
            ServeError::Exec(msg) => write!(f, "batched execute failed: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving knobs. Defaults suit a latency-sensitive multi-tenant mix;
/// `max_batch: 1` plus a zero window degrades to a one-at-a-time
/// baseline server (the bench's control arm).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum SpMM batch width; a full batch dispatches immediately.
    pub max_batch: usize,
    /// How long an anchor request may wait (from its arrival) for
    /// same-matrix riders before the batch dispatches anyway.
    pub coalesce_window: Duration,
    /// Deficit round-robin top-up per round: how many requests a
    /// backlogged tenant may dispatch before yielding the round.
    pub quantum: u32,
    /// Worker threads for the execution backend (0 = backend default).
    pub workers: usize,
    /// Plan cache sizing.
    pub cache: CacheConfig,
    /// Configuration every served plan is compiled with (part of the
    /// cache key).
    pub plan: PlanConfig,
    /// Online refinement knobs; defaults come from the environment
    /// (`SPMV_REFINE` and friends, off when unset), so a deployment
    /// can turn the loop on without touching code.
    pub refine: RefineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            coalesce_window: Duration::from_micros(200),
            quantum: 4,
            workers: 0,
            cache: CacheConfig::default(),
            plan: PlanConfig::default(),
            refine: RefineConfig::from_env(),
        }
    }
}

/// A completed request: the result column plus how it was served.
#[derive(Clone, Debug)]
pub struct Response<T> {
    /// `y = A x` for this request's vector — bit-for-bit equal to a
    /// standalone single-vector execute through the same plan.
    pub y: Vec<T>,
    /// Width of the SpMM batch this request rode in (1 = unbatched).
    pub batch_k: usize,
    /// When the batch's launch finished.
    pub completed: Instant,
}

struct TicketInner<T> {
    slot: Mutex<Option<Result<Response<T>, ServeError>>>,
    cv: Condvar,
}

impl<T> TicketInner<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, r: Result<Response<T>, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        *slot = Some(r);
        self.cv.notify_all();
    }
}

/// Handle for one admitted request; [`wait`](Ticket::wait) blocks until
/// the batch it rides in completes.
pub struct Ticket<T> {
    inner: Arc<TicketInner<T>>,
}

impl<T: Clone> Ticket<T> {
    /// Block until the request is served (or failed).
    pub fn wait(self) -> Result<Response<T>, ServeError> {
        let mut slot = self.inner.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.inner.cv.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }
}

struct Pending<T> {
    matrix: MatrixId,
    x: Vec<T>,
    deadline: Instant,
    enqueued: Instant,
    ticket: Arc<TicketInner<T>>,
}

struct QueueState<T> {
    queues: HashMap<TenantId, VecDeque<Pending<T>>>,
    deficits: HashMap<TenantId, i64>,
    shutdown: bool,
}

impl<T> QueueState<T> {
    fn total_queued(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// DRR tenant selection: among backlogged tenants with deficit
    /// remaining, the one whose head request has the earliest deadline
    /// (tie: lowest tenant id). Refills every backlogged tenant's
    /// deficit by `quantum` when none is eligible — a new round.
    fn select_tenant(&mut self, quantum: i64) -> TenantId {
        loop {
            let pick = self
                .queues
                .iter()
                .filter(|(t, q)| !q.is_empty() && self.deficits[*t] > 0)
                .min_by_key(|(t, q)| (q.front().unwrap().deadline, **t))
                .map(|(t, _)| *t);
            if let Some(t) = pick {
                return t;
            }
            let backlogged: Vec<TenantId> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, _)| *t)
                .collect();
            debug_assert!(!backlogged.is_empty(), "select_tenant on empty queues");
            for t in backlogged {
                *self.deficits.entry(t).or_insert(0) += quantum;
            }
        }
    }

    /// Pull queued same-matrix requests into `batch` (from any tenant,
    /// any queue position — requests are independent, so out-of-order
    /// completion within a tenant is observable only as lower latency).
    /// Each rider is charged one deficit unit; the counter may go
    /// negative and is repaid by future quanta.
    fn pull_riders(&mut self, matrix: MatrixId, batch: &mut Vec<Pending<T>>, max_batch: usize) {
        if batch.len() >= max_batch {
            return;
        }
        let mut tenants: Vec<TenantId> = self.queues.keys().copied().collect();
        tenants.sort_unstable();
        for t in tenants {
            let queue = self.queues.get_mut(&t).unwrap();
            let mut i = 0;
            while i < queue.len() && batch.len() < max_batch {
                if queue[i].matrix == matrix {
                    batch.push(queue.remove(i).unwrap());
                    *self.deficits.entry(t).or_insert(0) -= 1;
                } else {
                    i += 1;
                }
            }
            if batch.len() >= max_batch {
                return;
            }
        }
    }
}

struct Registered<T: Scalar> {
    matrix: Arc<CsrMatrix<T>>,
    strategy: Strategy,
}

struct Inner<T: Scalar> {
    config: ServeConfig,
    registry: RwLock<HashMap<MatrixId, Registered<T>>>,
    cache: PlanCache<T>,
    queue: Mutex<QueueState<T>>,
    arrivals: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    /// `occupancy[k-1]` counts batches dispatched with width `k`.
    occupancy: Vec<AtomicU64>,
    /// Background-refinement counters (worker increments).
    refine: RefineCounters,
    /// Stop flag + wakeup for the refinement worker. Separate from the
    /// dispatcher's queue condvar: refinement paces itself on
    /// `scan_interval`, not on arrivals.
    refine_stop: Mutex<bool>,
    refine_halt: Condvar,
}

/// Snapshot of serving counters ([`SpmvServer::stats`]).
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// SpMM batches dispatched.
    pub batches: u64,
    /// Batch-width histogram: `occupancy[k-1]` = batches of width `k`.
    pub occupancy: Vec<u64>,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Online-refinement counters (zero when `SPMV_REFINE` is off).
    pub refine: RefineStats,
}

impl ServeStats {
    /// Mean columns per dispatched batch (1.0 = no coalescing won).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let served: u64 = self
            .occupancy
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        served as f64 / self.batches as f64
    }
}

/// Multi-tenant SpMV server: matrix registry, plan cache, admission
/// queue, and one dispatcher thread. See the module docs for the
/// scheduling contract.
pub struct SpmvServer<T: Scalar> {
    inner: Arc<Inner<T>>,
    dispatcher: Option<JoinHandle<()>>,
    refiner: Option<JoinHandle<()>>,
}

impl<T: Scalar> SpmvServer<T> {
    /// Start a server (spawns the dispatcher thread, plus the
    /// refinement worker when [`RefineConfig::mode`] is not `Off`).
    pub fn start(config: ServeConfig) -> Self {
        let max_batch = config.max_batch.max(1);
        let config = ServeConfig {
            max_batch,
            quantum: config.quantum.max(1),
            ..config
        };
        let cache = PlanCache::new(config.cache);
        let inner = Arc::new(Inner {
            occupancy: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            config,
            registry: RwLock::new(HashMap::new()),
            cache,
            queue: Mutex::new(QueueState {
                queues: HashMap::new(),
                deficits: HashMap::new(),
                shutdown: false,
            }),
            arrivals: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            refine: RefineCounters::default(),
            refine_stop: Mutex::new(false),
            refine_halt: Condvar::new(),
        });
        let worker = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("spmv-serve-dispatch".into())
            .spawn(move || dispatcher_loop(worker))
            .expect("spawn dispatcher");
        let refiner = (inner.config.refine.mode != RefineMode::Off).then(|| {
            let worker = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("spmv-serve-refine".into())
                .spawn(move || refiner_loop(worker))
                .expect("spawn refiner")
        });
        Self {
            inner,
            dispatcher: Some(dispatcher),
            refiner,
        }
    }

    /// Register (or replace) a matrix under `id`. Requests may name it
    /// immediately; its plan is built on first use and cached by
    /// pattern, so replacing a matrix with an identical pattern keeps
    /// the cached plan warm.
    pub fn register_matrix(&self, id: MatrixId, a: CsrMatrix<T>, strategy: Strategy) {
        let mut reg = self.inner.registry.write().unwrap();
        reg.insert(
            id,
            Registered {
                matrix: Arc::new(a),
                strategy,
            },
        );
    }

    /// Refresh the numeric values of a registered matrix in place (same
    /// pattern). Cached plans are *not* invalidated: the swapped-in
    /// clone carries a fresh `values_id`, and packed value slabs
    /// re-gather lazily on the next execute.
    pub fn update_values(&self, id: MatrixId, f: impl FnMut(usize) -> T) -> Result<(), ServeError> {
        let mut reg = self.inner.registry.write().unwrap();
        let entry = reg.get_mut(&id).ok_or(ServeError::UnknownMatrix(id))?;
        let mut refreshed = (*entry.matrix).clone();
        refreshed.fill_values_with(f);
        entry.matrix = Arc::new(refreshed);
        Ok(())
    }

    /// Admit a request: `y = A_matrix · x` for `tenant`, scheduled no
    /// later than its DRR turn and preferentially by `deadline`.
    /// Validation (matrix known, dimensions right) happens here, so a
    /// ticket always resolves with an execution outcome.
    pub fn submit(
        &self,
        tenant: TenantId,
        matrix: MatrixId,
        x: Vec<T>,
        deadline: Instant,
    ) -> Result<Ticket<T>, ServeError> {
        let expected = {
            let reg = self.inner.registry.read().unwrap();
            reg.get(&matrix)
                .ok_or(ServeError::UnknownMatrix(matrix))?
                .matrix
                .n_cols()
        };
        if x.len() != expected {
            return Err(ServeError::DimensionMismatch {
                matrix,
                expected,
                got: x.len(),
            });
        }
        let ticket = Arc::new(TicketInner::new());
        {
            let mut q = self.inner.queue.lock().unwrap();
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            q.deficits.entry(tenant).or_insert(0);
            q.queues.entry(tenant).or_default().push_back(Pending {
                matrix,
                x,
                deadline,
                enqueued: Instant::now(),
                ticket: Arc::clone(&ticket),
            });
            self.inner.submitted.fetch_add(1, Ordering::Relaxed);
            // Wake the dispatcher: a new arrival can complete a batch
            // or end an idle sleep. (Never lost: the dispatcher only
            // sleeps while holding this lock — the AdmissionModel
            // invariant.)
            self.inner.arrivals.notify_all();
        }
        Ok(Ticket { inner: ticket })
    }

    /// Serving counters (dispatch side quiesced = exact).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            occupancy: self
                .inner
                .occupancy
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cache: self.inner.cache.stats(),
            refine: self.inner.refine.snapshot(),
        }
    }

    /// Stop admitting, drain every queued request, and join the worker
    /// threads. Tickets submitted before the call all resolve.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        self.join_workers();
    }

    fn begin_shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.shutdown = true;
            self.inner.arrivals.notify_all();
        }
        let mut stop = self.inner.refine_stop.lock().unwrap();
        *stop = true;
        self.inner.refine_halt.notify_all();
    }

    fn join_workers(&mut self) {
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.refiner.take() {
            let _ = h.join();
        }
    }
}

impl<T: Scalar> Drop for SpmvServer<T> {
    fn drop(&mut self) {
        if self.dispatcher.is_some() || self.refiner.is_some() {
            self.begin_shutdown();
            self.join_workers();
        }
    }
}

/// The dispatcher: wait for work → select anchor by DRR/EDF → coalesce
/// riders within the window → execute the batch with no queue lock held
/// → loop (re-checking the queue *before* the next sleep, so a request
/// that arrived during the execute is picked up immediately).
fn dispatcher_loop<T: Scalar>(inner: Arc<Inner<T>>) {
    loop {
        let (matrix, batch) = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if q.total_queued() > 0 {
                    break;
                }
                if q.shutdown {
                    return;
                }
                // Sleep decision is made while holding the queue lock;
                // submit() can't enqueue-and-notify in the gap. This is
                // the atomicity the AdmissionModel proves necessary.
                q = inner.arrivals.wait(q).unwrap();
            }
            let quantum = i64::from(inner.config.quantum);
            let tenant = q.select_tenant(quantum);
            let anchor = q.queues.get_mut(&tenant).unwrap().pop_front().unwrap();
            *q.deficits.entry(tenant).or_insert(0) -= 1;
            let matrix = anchor.matrix;
            let window_ends = anchor.enqueued + inner.config.coalesce_window;
            let mut batch = vec![anchor];
            loop {
                q.pull_riders(matrix, &mut batch, inner.config.max_batch);
                if batch.len() >= inner.config.max_batch || q.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= window_ends {
                    break;
                }
                let (guard, _timeout) = inner.arrivals.wait_timeout(q, window_ends - now).unwrap();
                q = guard;
            }
            (matrix, batch)
        };
        serve_batch(&inner, matrix, batch);
    }
}

fn fail_all<T>(batch: Vec<Pending<T>>, err: ServeError) {
    for p in batch {
        p.ticket.resolve(Err(err.clone()));
    }
}

/// Execute one coalesced batch and resolve its tickets. Runs with no
/// queue lock held; the plan comes from the cache (single-flight cold,
/// wait-free warm).
fn serve_batch<T: Scalar>(inner: &Inner<T>, matrix: MatrixId, batch: Vec<Pending<T>>) {
    let k = batch.len();
    debug_assert!(k >= 1);
    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner.occupancy[(k - 1).min(inner.occupancy.len() - 1)].fetch_add(1, Ordering::Relaxed);

    let registered = {
        let reg = inner.registry.read().unwrap();
        reg.get(&matrix)
            .map(|r| (Arc::clone(&r.matrix), r.strategy.clone()))
    };
    let Some((a, strategy)) = registered else {
        // Registration is validated at submit; a replaced-away matrix
        // between submit and dispatch still fails cleanly.
        fail_all(batch, ServeError::UnknownMatrix(matrix));
        return;
    };

    let plan = inner.cache.get_or_build(&a, &inner.config.plan, || {
        let backend = if inner.config.workers > 0 {
            NativeCpuBackend::new().with_workers(inner.config.workers)
        } else {
            NativeCpuBackend::new()
        };
        SpmvPlan::compile_with(&a, strategy.clone(), Box::new(backend), inner.config.plan)
            .verify(&a)
            .map_err(|e| CacheError::Build(e.to_string()))
    });
    let plan = match plan {
        Ok(p) => p,
        Err(e) => {
            fail_all(batch, ServeError::Plan(e.to_string()));
            return;
        }
    };

    let mut columns = Vec::with_capacity(k);
    let mut tickets = Vec::with_capacity(k);
    for p in batch {
        columns.push(p.x);
        tickets.push(p.ticket);
    }
    let x = DenseBlock::from_columns(&columns);
    let mut y = DenseBlock::zeros(a.n_rows(), k);
    match plan.execute_batch_unchecked(&a, &x, &mut y) {
        Ok(_) => {
            let completed = Instant::now();
            // Count before resolving: a ticket-holder reading stats()
            // right after wait() must see its own completion.
            inner.completed.fetch_add(k as u64, Ordering::Relaxed);
            for (j, ticket) in tickets.iter().enumerate() {
                ticket.resolve(Ok(Response {
                    y: y.column(j),
                    batch_k: k,
                    completed,
                }));
            }
        }
        Err(e) => {
            let err = ServeError::Exec(e.to_string());
            for ticket in &tickets {
                ticket.resolve(Err(err.clone()));
            }
        }
    }
}

/// The background refinement worker: every `scan_interval`, scan the
/// cache's Ready plans, classify each against its telemetry, and — in
/// `auto` mode — build, A/B-probe, and publish the suggested
/// configuration when it measures faster. Runs at the cadence of
/// [`RefineConfig::scan_interval`] with hysteresis per plan, entirely
/// off the request path: the only shared state it writes is the cache
/// slot (via [`PlanCache::swap`]) and its own counters.
///
/// Every completed A/B also feeds the incremental learner; after
/// [`RefineConfig::retrain_every`] observations it refits the rule-set
/// behind the lint gate (see [`crate::refine`] module docs).
fn refiner_loop<T: Scalar>(inner: Arc<Inner<T>>) {
    let cfg = inner.config.refine;
    let clock = MonotonicClock;
    let mut sched: RefineScheduler<PlanKey> = RefineScheduler::new();
    let (attrs, classes) = learner_schema();
    let mut learner = IncrementalLearner::new(attrs, classes, OnlineConfig::default());
    let mut since_retrain = 0usize;
    loop {
        {
            let stop = inner.refine_stop.lock().unwrap();
            if *stop {
                return;
            }
            let (stop, _timeout) = inner
                .refine_halt
                .wait_timeout(stop, cfg.scan_interval)
                .unwrap();
            if *stop {
                return;
            }
        }
        inner.refine.scans.fetch_add(1, Ordering::Relaxed);

        // Collect outside the scan: for_each_ready holds shard read
        // locks, and acting on a plan re-enters the cache.
        let mut ready: Vec<(PlanKey, u64, Arc<spmv_autotune::VerifiedPlan<T>>)> = Vec::new();
        inner
            .cache
            .for_each_ready(|key, confirm, plan| ready.push((*key, confirm, Arc::clone(plan))));

        for (key, confirm, plan) in ready {
            let (_bottleneck, Some(suggestion)) = classify_plan(&plan, &cfg.adapt) else {
                continue;
            };
            inner.refine.eligible.fetch_add(1, Ordering::Relaxed);
            let now = clock.now_ns();
            if !sched.ready(&key, now, cfg.hysteresis_ns) {
                inner
                    .refine
                    .hysteresis_skips
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if cfg.mode == RefineMode::Observe {
                sched.record(&key, now);
                inner.refine.observed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Find the live matrix this plan serves: same pattern (the
            // key's fingerprint) *and* same confirm checksum, the exact
            // pair the cache itself trusts.
            let matched = {
                let reg = inner.registry.read().unwrap();
                reg.values().find_map(|r| {
                    (PatternFingerprint::of(r.matrix.as_ref()) == key.0
                        && confirm_row_ptr(r.matrix.row_ptr()) == confirm)
                        .then(|| Arc::clone(&r.matrix))
                })
            };
            let Some(a) = matched else {
                // Unregistered since caching; the entry will age out.
                continue;
            };
            sched.record(&key, now);
            match probe_candidate(&a, &plan, suggestion, inner.config.workers, &cfg) {
                Ok(report) => {
                    inner.refine.built.fetch_add(1, Ordering::Relaxed);
                    let label = if report.improved {
                        CLASS_REFINED
                    } else {
                        CLASS_INCUMBENT
                    };
                    learner.observe(&feature_row(plan.plan().features()), label);
                    inner
                        .refine
                        .learner_observations
                        .fetch_add(1, Ordering::Relaxed);
                    since_retrain += 1;
                    if since_retrain >= cfg.retrain_every.max(1) {
                        since_retrain = 0;
                        match learner.retrain_incremental() {
                            RetrainOutcome::Accepted { .. } => {
                                inner
                                    .refine
                                    .learner_retrains
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            RetrainOutcome::RejectedByLinter { .. } => {
                                inner
                                    .refine
                                    .learner_rejections
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            RetrainOutcome::TooFewExamples { .. } => {}
                        }
                    }
                    let published = report.improved
                        && inner
                            .cache
                            .swap(key, confirm, report.build_ns, report.candidate);
                    if published {
                        inner.refine.swapped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        inner.refine.kept.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    inner.refine.failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_autotune::{BinningScheme, KernelId};
    use spmv_sparse::gen;

    fn strategy() -> Strategy {
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        }
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn round_trip_matches_direct_execute() {
        let server = SpmvServer::start(ServeConfig::default());
        let a = gen::random_uniform::<f64>(400, 380, 1, 6, 11);
        let x: Vec<f64> = (0..380).map(|i| (i % 13) as f64 * 0.25 - 1.0).collect();
        let mut expect = vec![0.0; 400];
        SpmvPlan::compile_with(
            &a,
            strategy(),
            Box::new(NativeCpuBackend::new()),
            PlanConfig::default(),
        )
        .verify(&a)
        .unwrap()
        .execute(&a, &x, &mut expect)
        .unwrap();

        server.register_matrix(7, a, strategy());
        let resp = server
            .submit(0, 7, x, far_deadline())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.y, expect, "served response must be bit-for-bit");
        server.shutdown();
    }

    #[test]
    fn submit_validates_matrix_and_dimensions() {
        let server = SpmvServer::start(ServeConfig::default());
        let a = gen::random_uniform::<f64>(50, 40, 1, 3, 2);
        server.register_matrix(1, a, strategy());
        assert_eq!(
            server
                .submit(0, 99, vec![0.0; 40], far_deadline())
                .err()
                .unwrap(),
            ServeError::UnknownMatrix(99)
        );
        assert_eq!(
            server
                .submit(0, 1, vec![0.0; 41], far_deadline())
                .err()
                .unwrap(),
            ServeError::DimensionMismatch {
                matrix: 1,
                expected: 40,
                got: 41
            }
        );
    }

    #[test]
    fn same_matrix_requests_coalesce_into_one_batch() {
        // A wide window plus exactly max_batch requests: the anchor
        // waits, riders join, and the full batch dispatches early.
        let server = SpmvServer::start(ServeConfig {
            max_batch: 8,
            coalesce_window: Duration::from_secs(5),
            ..ServeConfig::default()
        });
        let a = gen::random_uniform::<f64>(300, 300, 1, 5, 3);
        server.register_matrix(1, a, strategy());
        // Warm the plan so the first dispatch doesn't spend its window
        // compiling.
        server
            .submit(0, 1, vec![1.0; 300], far_deadline())
            .unwrap()
            .wait()
            .unwrap();
        let tickets: Vec<_> = (0..8)
            .map(|t| {
                server
                    .submit(t, 1, vec![t as f64; 300], far_deadline())
                    .unwrap()
            })
            .collect();
        for t in tickets {
            let r = t.wait().unwrap();
            assert!(r.batch_k >= 1);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 9);
        assert!(
            stats.occupancy.iter().skip(1).any(|&c| c > 0),
            "no coalescing at all under a 5s window: {:?}",
            stats.occupancy
        );
        assert_eq!(stats.cache.builds, 1, "one matrix, one plan build");
        server.shutdown();
    }

    #[test]
    fn drr_prefers_earliest_deadline_and_refills_rounds() {
        let now = Instant::now();
        let pending = |matrix: MatrixId, deadline: Instant| Pending::<f64> {
            matrix,
            x: vec![],
            deadline,
            enqueued: now,
            ticket: Arc::new(TicketInner::new()),
        };
        let mut q = QueueState {
            queues: HashMap::new(),
            deficits: HashMap::new(),
            shutdown: false,
        };
        let late = now + Duration::from_millis(50);
        let soon = now + Duration::from_millis(5);
        q.queues.entry(3).or_default().push_back(pending(1, late));
        q.queues.entry(7).or_default().push_back(pending(1, soon));
        q.deficits.insert(3, 0);
        q.deficits.insert(7, 0);
        // Both start exhausted: selection refills both (one round) and
        // picks the earlier deadline.
        assert_eq!(q.select_tenant(2), 7);
        assert_eq!(q.deficits[&3], 2);
        assert_eq!(q.deficits[&7], 2);
        // Exhaust tenant 7's deficit: tenant 3 wins despite the later
        // deadline — that's the fairness half.
        *q.deficits.get_mut(&7).unwrap() = 0;
        assert_eq!(q.select_tenant(2), 3);
        // Equal deadlines tie-break on the lower tenant id.
        q.queues.entry(2).or_default().push_back(pending(1, late));
        q.deficits.insert(2, 1);
        assert_eq!(q.select_tenant(2), 2);
    }

    #[test]
    fn riders_are_charged_deficit_and_capped_at_max_batch() {
        let now = Instant::now();
        let mut q = QueueState {
            queues: HashMap::new(),
            deficits: HashMap::new(),
            shutdown: false,
        };
        for t in 0..3u32 {
            for _ in 0..4 {
                q.queues.entry(t).or_default().push_back(Pending::<f64> {
                    matrix: 1,
                    x: vec![],
                    deadline: now,
                    enqueued: now,
                    ticket: Arc::new(TicketInner::new()),
                });
            }
            q.deficits.insert(t, 1);
        }
        let mut batch = Vec::new();
        q.pull_riders(1, &mut batch, 8);
        assert_eq!(batch.len(), 8);
        assert_eq!(q.total_queued(), 4);
        // Tenants 0 and 1 each contributed 4 riders (charged below
        // zero); tenant 2 untouched.
        assert_eq!(q.deficits[&0], -3);
        assert_eq!(q.deficits[&1], -3);
        assert_eq!(q.deficits[&2], 1);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let server = SpmvServer::start(ServeConfig {
            coalesce_window: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let a = gen::random_uniform::<f64>(200, 200, 1, 4, 5);
        server.register_matrix(1, a, strategy());
        let tickets: Vec<_> = (0..12)
            .map(|t| {
                server
                    .submit(t % 3, 1, vec![1.0 + t as f64; 200], far_deadline())
                    .unwrap()
            })
            .collect();
        server.shutdown();
        for t in tickets {
            t.wait().expect("shutdown must drain, not drop, requests");
        }
    }

    /// The online-refinement satellite: with the loop forced hot
    /// (`min_speedup: 0.0` publishes any verified candidate, zero
    /// hysteresis, 1 ms scans), a mispredicted forced-CSR plan on a
    /// banded matrix must get refined *while requests are in flight*,
    /// and every response before, across, and after the swap must be
    /// bit-for-bit the forced-CSR reference.
    #[test]
    fn live_refinement_swap_keeps_responses_bit_for_bit() {
        let plan_cfg = PlanConfig {
            pack: false,
            cache_block: false,
            specialize: false,
            ..PlanConfig::default()
        };
        let server = SpmvServer::start(ServeConfig {
            plan: plan_cfg,
            refine: RefineConfig {
                mode: RefineMode::Auto,
                min_speedup: 0.0,
                hysteresis_ns: 0,
                scan_interval: Duration::from_millis(1),
                ..RefineConfig::default()
            },
            ..ServeConfig::default()
        });
        let a = gen::banded::<f64>(2_000, 3, 2);
        let x: Vec<f64> = (0..a.n_cols())
            .map(|i| (i % 17) as f64 * 0.5 - 4.0)
            .collect();
        let mut expect = vec![0.0; a.n_rows()];
        SpmvPlan::compile_with(&a, strategy(), Box::new(NativeCpuBackend::new()), plan_cfg)
            .verify(&a)
            .unwrap()
            .execute(&a, &x, &mut expect)
            .unwrap();
        server.register_matrix(1, a, strategy());

        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            // A few tenants at once, so executes overlap the refiner's
            // probe/swap window.
            let tickets: Vec<_> = (0..4)
                .map(|t| server.submit(t, 1, x.clone(), far_deadline()).unwrap())
                .collect();
            for t in tickets {
                let r = t.wait().unwrap();
                assert_eq!(r.y, expect, "response changed across refinement");
            }
            let s = server.stats();
            if s.refine.swapped >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "refiner never published: {:?}",
                s.refine
            );
        }
        // Served from the refined plan now; still bit-for-bit.
        for _ in 0..4 {
            let r = server
                .submit(0, 1, x.clone(), far_deadline())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.y, expect);
        }
        let s = server.stats();
        assert!(s.refine.built >= 1, "no candidate was ever built");
        assert_eq!(
            s.cache.swaps, s.refine.swapped,
            "every publish must go through the cache swap point"
        );
        server.shutdown();
    }

    #[test]
    fn observe_mode_counts_divergence_but_never_builds() {
        let plan_cfg = PlanConfig {
            pack: false,
            cache_block: false,
            specialize: false,
            ..PlanConfig::default()
        };
        let server = SpmvServer::start(ServeConfig {
            plan: plan_cfg,
            refine: RefineConfig {
                mode: RefineMode::Observe,
                hysteresis_ns: 0,
                scan_interval: Duration::from_millis(1),
                ..RefineConfig::default()
            },
            ..ServeConfig::default()
        });
        let a = gen::banded::<f64>(2_000, 3, 2);
        let x = vec![1.0; a.n_cols()];
        server.register_matrix(1, a, strategy());
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            server
                .submit(0, 1, x.clone(), far_deadline())
                .unwrap()
                .wait()
                .unwrap();
            let s = server.stats();
            if s.refine.observed >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "observe mode never classified: {:?}",
                s.refine
            );
        }
        let s = server.stats();
        assert_eq!(s.refine.built, 0, "observe mode must not compile");
        assert_eq!(s.refine.swapped, 0);
        assert_eq!(s.cache.swaps, 0);
        server.shutdown();
    }

    #[test]
    fn value_refresh_is_visible_without_plan_rebuild() {
        let server = SpmvServer::start(ServeConfig::default());
        let a = gen::random_uniform::<f64>(250, 250, 1, 5, 8);
        server.register_matrix(1, a.clone(), strategy());
        let x = vec![1.0; 250];
        let before = server
            .submit(0, 1, x.clone(), far_deadline())
            .unwrap()
            .wait()
            .unwrap();
        server.update_values(1, |i| (i % 7) as f64 - 3.0).unwrap();
        let after = server
            .submit(0, 1, x.clone(), far_deadline())
            .unwrap()
            .wait()
            .unwrap();
        assert_ne!(before.y, after.y, "new values must be served");
        // Same pattern ⇒ same plan: no rebuild happened.
        let stats = server.stats();
        assert_eq!(stats.cache.builds, 1);
        // And the refreshed result matches a from-scratch execute on the
        // refreshed matrix.
        let mut refreshed = a;
        refreshed.fill_values_with(|i| (i % 7) as f64 - 3.0);
        let mut expect = vec![0.0; 250];
        SpmvPlan::compile_with(
            &refreshed,
            strategy(),
            Box::new(NativeCpuBackend::new()),
            PlanConfig::default(),
        )
        .verify(&refreshed)
        .unwrap()
        .execute(&refreshed, &x, &mut expect)
        .unwrap();
        assert_eq!(after.y, expect);
        server.shutdown();
    }
}
