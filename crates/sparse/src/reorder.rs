//! Row/column reordering: reverse Cuthill–McKee (RCM) bandwidth
//! reduction and permutation application.
//!
//! Reordering is the classic complement to the paper's binning: binning
//! fixes *load* imbalance, reordering fixes *locality* (the `v[colIdx]`
//! gather that every kernel pays). The ablation benches use this to show
//! the simulated coalescing model responds to locality the way real
//! hardware does.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::VecDeque;

/// A row/column permutation: `perm[new_index] = old_index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<u32>,
    inv: Vec<u32>,
}

impl Permutation {
    /// Build from `perm[new] = old`, validating it is a bijection.
    pub fn new(perm: Vec<u32>) -> Result<Self, String> {
        let n = perm.len();
        let mut inv = vec![u32::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old as usize >= n {
                return Err(format!("index {old} out of range {n}"));
            }
            if inv[old as usize] != u32::MAX {
                return Err(format!("index {old} appears twice"));
            }
            inv[old as usize] = new as u32;
        }
        Ok(Self { perm, inv })
    }

    /// The identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n as u32).collect(),
            inv: (0..n as u32).collect(),
        }
    }

    /// Size of the permuted index space.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `perm[new] = old`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new] as usize
    }

    /// `inv[old] = new`.
    pub fn new_of(&self, old: usize) -> usize {
        self.inv[old] as usize
    }

    /// Permute a dense vector from old ordering to new ordering.
    pub fn apply_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        self.perm.iter().map(|&old| x[old as usize]).collect()
    }

    /// Undo [`apply_vec`](Self::apply_vec).
    pub fn unapply_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        self.inv.iter().map(|&new| x[new as usize]).collect()
    }
}

/// Symmetrically permute a square matrix: `B = P A Pᵀ`
/// (`B[new_i, new_j] = A[old_i, old_j]`).
pub fn permute_symmetric<T: Scalar>(a: &CsrMatrix<T>, p: &Permutation) -> CsrMatrix<T> {
    assert_eq!(
        a.n_rows(),
        a.n_cols(),
        "symmetric permutation needs a square matrix"
    );
    assert_eq!(a.n_rows(), p.len());
    let n = a.n_rows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    let mut scratch: Vec<(u32, T)> = Vec::new();
    for new_i in 0..n {
        let old_i = p.old_of(new_i);
        let (cols, vals) = a.row(old_i);
        scratch.clear();
        scratch.extend(
            cols.iter()
                .zip(vals)
                .map(|(&c, &v)| (p.new_of(c as usize) as u32, v)),
        );
        scratch.sort_by_key(|&(c, _)| c);
        for &(c, v) in &scratch {
            col_idx.push(c);
            values.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts_unchecked(n, n, row_ptr, col_idx, values)
}

/// Matrix bandwidth: `max |i - j|` over stored entries (0 for empty).
pub fn bandwidth<T: Scalar>(a: &CsrMatrix<T>) -> usize {
    let mut bw = 0usize;
    for (i, j, _) in a.iter() {
        bw = bw.max(i.abs_diff(j as usize));
    }
    bw
}

/// Reverse Cuthill–McKee ordering of a square matrix's adjacency
/// structure (the pattern of `A + Aᵀ` is traversed implicitly by using
/// `A`'s rows; pass a structurally symmetric matrix for the classic
/// guarantee). Disconnected components are each seeded from their
/// minimum-degree vertex.
pub fn reverse_cuthill_mckee<T: Scalar>(a: &CsrMatrix<T>) -> Permutation {
    assert_eq!(a.n_rows(), a.n_cols(), "RCM needs a square matrix");
    let n = a.n_rows();
    let degree = |i: usize| a.row_nnz(i);
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut neighbours: Vec<u32> = Vec::new();

    // Vertices sorted by degree give deterministic component seeds.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&i| (degree(i), i));

    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v as u32);
            let (cols, _) = a.row(v);
            neighbours.clear();
            neighbours.extend(cols.iter().copied().filter(|&c| !visited[c as usize]));
            neighbours.sort_by_key(|&c| (degree(c as usize), c));
            for &c in &neighbours {
                if !visited[c as usize] {
                    visited[c as usize] = true;
                    queue.push_back(c as usize);
                }
            }
        }
    }
    order.reverse();
    Permutation::new(order).expect("BFS order is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn permutation_validates_bijection() {
        assert!(Permutation::new(vec![2, 0, 1]).is_ok());
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3]).is_err());
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let x = vec![10.0, 11.0, 12.0, 13.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![12.0, 10.0, 13.0, 11.0]);
        assert_eq!(p.unapply_vec(&y), x);
    }

    #[test]
    fn symmetric_permutation_preserves_spmv() {
        // (P A Pᵀ)(P v) = P (A v).
        let a = gen::laplacian_2d::<f64>(7, 5);
        let p = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &p);
        let v: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64).cos()).collect();
        let av = a.spmv_seq_alloc(&v).unwrap();
        let bv = b.spmv_seq_alloc(&p.apply_vec(&v)).unwrap();
        // Permutation reorders each row's accumulation, so compare with a
        // small relative tolerance rather than bit-exactly.
        for (x, y) in p.apply_vec(&av).iter().zip(&bv) {
            assert!(
                (x - y).abs() <= 1e-12 * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn rcm_restores_banded_structure_after_shuffling() {
        // A banded matrix, symmetrically shuffled, should get most of its
        // bandwidth back under RCM.
        let a = gen::laplacian_1d::<f64>(400);
        let mut idx: Vec<u32> = (0..400).collect();
        idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(5));
        let shuffle = Permutation::new(idx).unwrap();
        let shuffled = permute_symmetric(&a, &shuffle);
        assert!(bandwidth(&shuffled) > 50, "shuffle should destroy the band");
        let rcm = reverse_cuthill_mckee(&shuffled);
        let restored = permute_symmetric(&shuffled, &rcm);
        assert!(
            bandwidth(&restored) <= 2,
            "RCM bandwidth = {} (tridiagonal graph should recover ~1)",
            bandwidth(&restored)
        );
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Block-diagonal (two components) — RCM must order every vertex.
        let mut coo = crate::coo::CooMatrix::<f64>::new(6, 6);
        for (i, j) in [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)] {
            coo.push(i, j, 1.0);
        }
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 6);
        let mut all: Vec<usize> = (0..6).map(|i| p.old_of(i)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        let a = CsrMatrix::<f64>::identity(10);
        assert_eq!(bandwidth(&a), 0);
        let b = gen::laplacian_1d::<f64>(10);
        assert_eq!(bandwidth(&b), 1);
    }
}
