//! Row-length (NNZ-per-row) histograms.
//!
//! Figure 5 of the paper plots the histogram of non-zeros per row over
//! 2760 UF-collection matrices to motivate the kernel pool: about 98.7%
//! of all rows have ≤ 100 non-zeros, so no multi-work-group kernels are
//! needed. [`RowHistogram`] regenerates that figure over our synthetic
//! corpus and also backs the extended feature set.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A histogram over the number of non-zeros per row.
///
/// Buckets are `[lo, hi)` ranges; an implicit overflow bucket catches
/// everything at or above the last edge.
#[derive(Clone, Debug, PartialEq)]
pub struct RowHistogram {
    /// Bucket lower edges; bucket `i` covers `[edges[i], edges[i+1])` and
    /// the last bucket covers `[edges.last(), ∞)`.
    edges: Vec<usize>,
    counts: Vec<u64>,
    total_rows: u64,
}

impl RowHistogram {
    /// Histogram with the given ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn with_edges(edges: Vec<usize>) -> Self {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let n = edges.len();
        Self {
            edges,
            counts: vec![0; n],
            total_rows: 0,
        }
    }

    /// The bucket layout used throughout the reproduction (and by the
    /// extended features): `0, [1,10), [10,100), [100,1000), ≥1000`.
    pub fn decades() -> Self {
        Self::with_edges(vec![0, 1, 10, 100, 1000])
    }

    /// Figure-5 style buckets: finer granularity under 100 NNZ.
    pub fn figure5() -> Self {
        Self::with_edges(vec![0, 1, 2, 4, 8, 16, 32, 64, 100, 1000, 10_000])
    }

    /// Build the decade histogram of one matrix.
    pub fn of_matrix<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let mut h = Self::decades();
        h.add_matrix(a);
        h
    }

    /// Record one row length.
    #[inline]
    pub fn add_row(&mut self, nnz: usize) {
        // Linear scan: bucket counts are tiny (≤ ~12) so this beats a
        // binary search in practice.
        let mut idx = self.edges.len() - 1;
        for (i, w) in self.edges.windows(2).enumerate() {
            if nnz >= w[0] && nnz < w[1] {
                idx = i;
                break;
            }
        }
        self.counts[idx] += 1;
        self.total_rows += 1;
    }

    /// Record every row of a matrix.
    pub fn add_matrix<T: Scalar>(&mut self, a: &CsrMatrix<T>) {
        for i in 0..a.n_rows() {
            self.add_row(a.row_nnz(i));
        }
    }

    /// Merge another histogram with identical bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &RowHistogram) {
        assert_eq!(self.edges, other.edges, "histogram layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total_rows += other.total_rows;
    }

    /// Total rows recorded.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[usize] {
        &self.edges
    }

    /// Share of rows per bucket, in bucket order (sums to 1 when any rows
    /// were recorded).
    pub fn shares(&self) -> Vec<f64> {
        if self.total_rows == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total_rows as f64)
            .collect()
    }

    /// Shares for the decade layout (used by the extended feature set).
    pub fn decade_shares(&self) -> Vec<f64> {
        self.shares()
    }

    /// Cumulative share of rows with NNZ strictly below `limit`
    /// (e.g. `limit = 101` reproduces the paper's "98.7% of rows have
    /// ≤ 100 non-zeros" statistic when the bucket edges align).
    pub fn cumulative_share_below(&self, limit: usize) -> f64 {
        if self.total_rows == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, w) in self.edges.windows(2).enumerate() {
            if w[1] <= limit {
                acc += self.counts[i];
            }
        }
        if *self.edges.last().unwrap() < limit {
            acc += self.counts[self.edges.len() - 1];
        }
        acc as f64 / self.total_rows as f64
    }

    /// Human-readable bucket labels (`"[10, 100)"`, `"≥ 1000"`, …).
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .edges
            .windows(2)
            .map(|w| {
                if w[1] == w[0] + 1 {
                    format!("{}", w[0])
                } else {
                    format!("[{}, {})", w[0], w[1])
                }
            })
            .collect();
        out.push(format!(">= {}", self.edges.last().unwrap()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::figure1_example;

    #[test]
    fn decades_bucket_assignment() {
        let mut h = RowHistogram::decades();
        h.add_row(0); // bucket 0 (empty rows)
        h.add_row(1); // [1,10)
        h.add_row(9); // [1,10)
        h.add_row(10); // [10,100)
        h.add_row(99); // [10,100)
        h.add_row(100); // [100,1000)
        h.add_row(5000); // overflow >= 1000
        assert_eq!(h.counts(), &[1, 2, 2, 1, 1]);
        assert_eq!(h.total_rows(), 7);
    }

    #[test]
    fn of_matrix_counts_rows() {
        let h = RowHistogram::of_matrix(&figure1_example::<f64>());
        assert_eq!(h.total_rows(), 4);
        // rows have 2,2,1,3 nnz → all in [1,10)
        assert_eq!(h.counts(), &[0, 4, 0, 0, 0]);
    }

    #[test]
    fn shares_sum_to_one() {
        let h = RowHistogram::of_matrix(&figure1_example::<f64>());
        let s: f64 = h.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_share_below_counts_whole_buckets() {
        let mut h = RowHistogram::decades();
        for nnz in [1, 5, 50, 500, 5000] {
            h.add_row(nnz);
        }
        assert!((h.cumulative_share_below(10) - 0.4).abs() < 1e-12);
        assert!((h.cumulative_share_below(100) - 0.6).abs() < 1e-12);
        assert!((h.cumulative_share_below(1000) - 0.8).abs() < 1e-12);
        assert!((h.cumulative_share_below(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = RowHistogram::decades();
        a.add_row(1);
        let mut b = RowHistogram::decades();
        b.add_row(20);
        b.add_row(2);
        a.merge(&b);
        assert_eq!(a.total_rows(), 3);
        assert_eq!(a.counts(), &[0, 2, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "histogram layouts differ")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = RowHistogram::decades();
        let b = RowHistogram::figure5();
        a.merge(&b);
    }

    #[test]
    fn labels_cover_every_bucket() {
        let h = RowHistogram::decades();
        assert_eq!(h.labels().len(), h.counts().len());
    }

    #[test]
    fn empty_histogram_shares_are_zero() {
        let h = RowHistogram::decades();
        assert_eq!(h.shares(), vec![0.0; 5]);
        assert_eq!(h.cumulative_share_below(100), 0.0);
    }
}
