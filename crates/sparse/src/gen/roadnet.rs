//! Road-network-like graphs (`roadNet-CA`, `europe_osm` in Table II):
//! near-planar grids with degree ~2–4 and enormous row counts — the
//! extreme short-row regime.

use super::{gen_value, seeded_rng};
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// Generate a road-network-like symmetric adjacency matrix on a
/// `gx × gy` lattice: each node connects to its right/down neighbours
/// with probability `keep`, plus occasional "shortcut" edges, yielding
/// average degree ≈ `2·keep` to `4·keep` like real road graphs.
pub fn road_network<T: Scalar>(gx: usize, gy: usize, keep: f64, seed: u64) -> CsrMatrix<T> {
    let n = gx * gy;
    let mut rng = seeded_rng(seed);
    let mut coo = CooMatrix::<T>::with_capacity(n, n, 4 * n);
    let add = |coo: &mut CooMatrix<T>, a: usize, bn: usize, rng: &mut rand::rngs::StdRng| {
        let v = gen_value::<T>(rng);
        coo.push(a, bn, v);
        coo.push(bn, a, v);
    };
    for y in 0..gy {
        for x in 0..gx {
            let i = y * gx + x;
            if x + 1 < gx && rng.gen_bool(keep) {
                add(&mut coo, i, i + 1, &mut rng);
            }
            if y + 1 < gy && rng.gen_bool(keep) {
                add(&mut coo, i, i + gx, &mut rng);
            }
            // Rare shortcut (bridge/highway), ~1% of nodes.
            if rng.gen_bool(0.01) {
                let j = rng.gen_range(0..n);
                if j != i {
                    add(&mut coo, i, j, &mut rng);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_small() {
        let a = road_network::<f64>(50, 50, 0.9, 1);
        let max_deg = (0..a.n_rows()).map(|i| a.row_nnz(i)).max().unwrap();
        let avg = a.nnz() as f64 / a.n_rows() as f64;
        assert!(avg > 1.0 && avg < 5.0, "avg degree = {avg}");
        assert!(max_deg <= 10, "max degree = {max_deg}");
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = road_network::<f64>(20, 20, 0.8, 2);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn keep_probability_thins_the_graph() {
        let dense = road_network::<f64>(40, 40, 1.0, 3);
        let sparse = road_network::<f64>(40, 40, 0.5, 3);
        assert!(sparse.nnz() < dense.nnz());
    }
}
