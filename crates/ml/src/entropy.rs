//! Information-theoretic split criteria: entropy, information gain, split
//! info, and gain ratio — the C4.5 selection machinery.

/// Shannon entropy (bits) of a weighted class distribution.
pub fn entropy(dist: &[f64]) -> f64 {
    let total: f64 = dist.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &w in dist {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Information gain of partitioning a parent distribution (entropy
/// `parent_h`, total weight `parent_w`) into the given child
/// distributions.
pub fn information_gain(parent_h: f64, parent_w: f64, children: &[Vec<f64>]) -> f64 {
    if parent_w <= 0.0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for dist in children {
        let w: f64 = dist.iter().sum();
        if w > 0.0 {
            weighted += (w / parent_w) * entropy(dist);
        }
    }
    parent_h - weighted
}

/// Split information (the entropy of the partition sizes themselves),
/// C4.5's normaliser that penalises high-arity splits.
pub fn split_info(parent_w: f64, child_weights: &[f64]) -> f64 {
    if parent_w <= 0.0 {
        return 0.0;
    }
    let mut si = 0.0;
    for &w in child_weights {
        if w > 0.0 {
            let p = w / parent_w;
            si -= p * p.log2();
        }
    }
    si
}

/// Gain ratio = gain / split-info, with C4.5's guard: a vanishing split
/// info (a near-trivial partition) yields ratio 0 so such splits are
/// never chosen.
pub fn gain_ratio(gain: f64, si: f64) -> f64 {
    if si <= 1e-10 {
        0.0
    } else {
        gain / si
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[10.0, 0.0]), 0.0);
        assert!((entropy(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1.0, 1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_is_weight_scale_invariant() {
        let a = entropy(&[3.0, 7.0]);
        let b = entropy(&[30.0, 70.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_gains_full_entropy() {
        let parent = [5.0, 5.0];
        let h = entropy(&parent);
        let g = information_gain(h, 10.0, &[vec![5.0, 0.0], vec![0.0, 5.0]]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_gains_nothing() {
        let parent = [6.0, 6.0];
        let h = entropy(&parent);
        let g = information_gain(h, 12.0, &[vec![3.0, 3.0], vec![3.0, 3.0]]);
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn split_info_penalises_high_arity() {
        // 2-way even split: SI = 1 bit; 8-way even split: SI = 3 bits.
        assert!((split_info(8.0, &[4.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((split_info(8.0, &[1.0; 8]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_guards_trivial_partitions() {
        assert_eq!(gain_ratio(0.5, 0.0), 0.0);
        assert!((gain_ratio(0.5, 1.0) - 0.5).abs() < 1e-12);
        assert!((gain_ratio(0.6, 2.0) - 0.3).abs() < 1e-12);
    }
}
