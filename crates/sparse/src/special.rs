//! Structure-exploiting bin specializations: the pack-time *detectors*
//! and *structural proofs* behind the pattern-specialized kernel table.
//!
//! Where [`crate::packed`] compresses the index stream generically, the
//! three shapes here eliminate it for bins whose sparsity has exploitable
//! structure:
//!
//! * [`DenseRuns`] — rows whose columns form contiguous runs execute as
//!   strided dense AXPYs: the kernel gathers `x[start..start + len]`
//!   directly, no per-element index load.
//! * [`BandSet`] — bins whose entries all sit on a fixed small set of
//!   diagonal offsets (`col - row`) execute offset-wise: the only index
//!   metadata is the offset list itself, shared by every row.
//! * [`RowRuns`] — runs of consecutive bin rows with *identical* column
//!   patterns (block-structured matrices) load the shared pattern once
//!   per run instead of once per row.
//!
//! Each struct is built by a `detect` constructor that derives the
//! structure from the CSR arrays (returning `None` when the bin does not
//! qualify), and carries a `check_against` prover that *re-derives* the
//! same structure at verification time and compares it field for field —
//! the same re-derivation discipline as [`PackedSell::check_against`].
//! A payload that passes licenses every gather its kernel performs:
//! the kernels read `x` only at positions the proof tied to real CSR
//! entries, whose columns are bounded by `n_cols` by construction.
//!
//! All three kernels consume a row's stored values in exact CSR storage
//! order, so execution is bit-for-bit identical to the sequential CSR
//! reference — the detectors constrain *where* the columns are, never
//! reorder the FMA chain.
//!
//! [`PackedSell::check_against`]: crate::packed::PackedSell::check_against

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::BTreeSet;

/// Contiguous-run decomposition of a bin's rows: row `i` of the bin owns
/// runs `row_off[i]..row_off[i + 1]`, each a `(start_col, len)` stretch
/// of consecutive columns. Values are consumed from the CSR value array
/// in storage order, so no value copy is materialised.
#[derive(Clone, Debug)]
pub struct DenseRuns {
    /// Per-bin-row prefix offsets into `runs` (`rows.len() + 1` entries).
    row_off: Vec<u32>,
    /// `(first column, length)` of every maximal contiguous run, in
    /// storage order.
    runs: Vec<(u32, u32)>,
    /// Column count the run bounds were proven against.
    n_cols: usize,
    /// Total non-zeros covered (Σ run lengths).
    nnz: usize,
}

/// Decompose one CSR row into its maximal contiguous runs, in storage
/// order: a run extends while the next stored column is exactly the
/// previous plus one. No sortedness requirement — an unsorted row simply
/// yields short runs — and the decomposition never reorders entries.
fn row_runs(cols: &[u32], mut f: impl FnMut(u32, u32)) {
    let mut i = 0usize;
    while i < cols.len() {
        let start = cols[i];
        let mut len = 1u32;
        while i + (len as usize) < cols.len() && cols[i + len as usize] == start.wrapping_add(len) {
            len += 1;
        }
        f(start, len);
        i += len as usize;
    }
}

impl DenseRuns {
    /// Derive the run decomposition of `rows` and keep it when the runs
    /// are long enough to pay: average run length (`nnz / n_runs`) at
    /// least `min_avg_run`. Returns `None` for empty bins or bins whose
    /// runs are too short (the per-run bookkeeping would cost more than
    /// the index loads it saves).
    pub fn detect<T: Scalar>(a: &CsrMatrix<T>, rows: &[u32], min_avg_run: usize) -> Option<Self> {
        if rows.is_empty() || min_avg_run == 0 {
            return None;
        }
        let mut row_off = Vec::with_capacity(rows.len() + 1);
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut nnz = 0usize;
        row_off.push(0u32);
        for &r in rows {
            let (cols, _) = a.row(r as usize);
            nnz += cols.len();
            row_runs(cols, |start, len| runs.push((start, len)));
            row_off.push(runs.len() as u32);
        }
        if nnz == 0 || nnz < runs.len().saturating_mul(min_avg_run) {
            return None;
        }
        Some(Self {
            row_off,
            runs,
            n_cols: a.n_cols(),
            nnz,
        })
    }

    /// Re-derive the run decomposition from `(a, rows)` and require it to
    /// match this payload field for field — the verification-time proof
    /// that every `x[start..start + len]` gather the kernel performs maps
    /// to real CSR entries of the claimed bin (and is therefore bounded
    /// by `n_cols`).
    pub fn check_against<T: Scalar>(&self, a: &CsrMatrix<T>, rows: &[u32]) -> Result<(), String> {
        if self.n_cols != a.n_cols() {
            return Err(format!(
                "payload proven for {} columns, matrix has {}",
                self.n_cols,
                a.n_cols()
            ));
        }
        if self.row_off.len() != rows.len() + 1 {
            return Err(format!(
                "row offsets cover {} rows, bin has {}",
                self.row_off.len().saturating_sub(1),
                rows.len()
            ));
        }
        if self.row_off.first() != Some(&0) {
            return Err("row offsets do not start at 0".into());
        }
        let mut k = 0usize;
        let mut nnz = 0usize;
        for (i, &r) in rows.iter().enumerate() {
            let (cols, _) = a.row(r as usize);
            nnz += cols.len();
            let mut bad: Option<String> = None;
            row_runs(cols, |start, len| {
                if bad.is_some() {
                    return;
                }
                if self.runs.get(k) != Some(&(start, len)) {
                    bad = Some(format!(
                        "row {r} (bin position {i}): derived run ({start}, {len}) at slot {k} \
                         disagrees with stored {:?}",
                        self.runs.get(k)
                    ));
                }
                k += 1;
            });
            if let Some(detail) = bad {
                return Err(detail);
            }
            if self.row_off[i + 1] as usize != k {
                return Err(format!(
                    "row {r} (bin position {i}): offset {} != derived run count {k}",
                    self.row_off[i + 1]
                ));
            }
        }
        if k != self.runs.len() {
            return Err(format!(
                "payload stores {} runs, derivation found {k}",
                self.runs.len()
            ));
        }
        if nnz != self.nnz {
            return Err(format!("payload claims {} nnz, rows hold {nnz}", self.nnz));
        }
        Ok(())
    }

    /// Per-bin-row prefix offsets into [`runs`](Self::runs).
    pub fn row_off(&self) -> &[u32] {
        &self.row_off
    }

    /// Every `(first column, length)` run, in storage order.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Non-zeros covered.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Modelled index traffic of one execution: one `(start, len)` pair
    /// of `u32`s per run (vs 4 bytes per non-zero for CSR).
    pub fn index_stream_bytes(&self) -> usize {
        self.runs.len() * 8
    }
}

/// Diagonal/banded structure of a bin: a fixed set of offsets `col - row`
/// such that every row's columns are *exactly* the in-range offsets, in
/// ascending order. Execution iterates the offset list per row — zero
/// per-non-zero index traffic.
#[derive(Clone, Debug)]
pub struct BandSet {
    /// Distinct diagonal offsets, strictly ascending.
    offsets: Vec<i64>,
    /// Column count the offset bounds were proven against.
    n_cols: usize,
    /// Total non-zeros covered.
    nnz: usize,
}

impl BandSet {
    /// Derive the offset set of `rows` and keep it when the bin is
    /// *band-complete*: at most `max_offsets` distinct offsets, and every
    /// row's stored columns are exactly the ascending in-range members of
    /// `{row + o}`. Rows clipped at the matrix edge (a band running off
    /// column 0 or `n_cols`) stay complete — out-of-range offsets are
    /// simply absent. Returns `None` for empty bins, too many offsets, or
    /// any row deviating from the pattern.
    pub fn detect<T: Scalar>(a: &CsrMatrix<T>, rows: &[u32], max_offsets: usize) -> Option<Self> {
        if rows.is_empty() || max_offsets == 0 {
            return None;
        }
        let mut set: BTreeSet<i64> = BTreeSet::new();
        let mut nnz = 0usize;
        for &r in rows {
            let (cols, _) = a.row(r as usize);
            nnz += cols.len();
            for &c in cols {
                set.insert(c as i64 - r as i64);
                if set.len() > max_offsets {
                    return None;
                }
            }
        }
        if nnz == 0 {
            return None;
        }
        let cand = Self {
            offsets: set.into_iter().collect(),
            n_cols: a.n_cols(),
            nnz,
        };
        cand.rows_complete(a, rows).is_ok().then_some(cand)
    }

    /// Re-derive band-completeness from `(a, rows)`: the offset list is
    /// strictly ascending, every row's columns are exactly the ascending
    /// in-range `{row + o}` sequence, and the totals match — so the
    /// kernel's `x[(row + o)]` gathers are exactly the bin's CSR entries
    /// (in-range by construction of the expected sequence).
    pub fn check_against<T: Scalar>(&self, a: &CsrMatrix<T>, rows: &[u32]) -> Result<(), String> {
        if self.n_cols != a.n_cols() {
            return Err(format!(
                "payload proven for {} columns, matrix has {}",
                self.n_cols,
                a.n_cols()
            ));
        }
        if self.offsets.is_empty() {
            return Err("empty offset set".into());
        }
        if self.offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err("offset list not strictly ascending".into());
        }
        self.rows_complete(a, rows)
    }

    /// The completeness core shared by detection and verification: every
    /// row's stored columns equal the ascending in-range offset pattern.
    fn rows_complete<T: Scalar>(&self, a: &CsrMatrix<T>, rows: &[u32]) -> Result<(), String> {
        let n = self.n_cols as i64;
        let mut nnz = 0usize;
        for &r in rows {
            let (cols, _) = a.row(r as usize);
            nnz += cols.len();
            let mut j = 0usize;
            for &o in &self.offsets {
                let c = r as i64 + o;
                if c < 0 || c >= n {
                    continue;
                }
                if cols.get(j).copied() != Some(c as u32) {
                    return Err(format!(
                        "row {r}: expected column {c} at position {j}, found {:?}",
                        cols.get(j)
                    ));
                }
                j += 1;
            }
            if j != cols.len() {
                return Err(format!(
                    "row {r}: {} stored entries but the offset pattern covers {j}",
                    cols.len()
                ));
            }
        }
        if nnz != self.nnz {
            return Err(format!("payload claims {} nnz, rows hold {nnz}", self.nnz));
        }
        Ok(())
    }

    /// The distinct diagonal offsets, strictly ascending.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Non-zeros covered.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Modelled index traffic of one execution: the offset list itself —
    /// independent of `nnz`, which is the whole point.
    pub fn index_stream_bytes(&self) -> usize {
        self.offsets.len() * 8
    }
}

/// Identical-row-run structure of a bin: maximal runs of consecutive
/// *bin positions* whose rows store identical column lists. The kernel
/// loads the shared pattern once per run and streams each run row's
/// values against it — index traffic shrinks by the run length.
#[derive(Clone, Debug)]
pub struct RowRuns {
    /// Run boundaries as positions into the bin's row list: `n_runs + 1`
    /// entries, first `0`, last `rows.len()`.
    run_off: Vec<u32>,
    /// Modelled index bytes of one execution: Σ head-row nnz × 4.
    index_bytes: usize,
}

/// Derive the maximal identical-pattern run boundaries of `rows`.
fn derive_row_runs<T: Scalar>(a: &CsrMatrix<T>, rows: &[u32]) -> (Vec<u32>, usize) {
    let mut run_off = vec![0u32];
    let mut index_bytes = 0usize;
    let mut i = 0usize;
    while i < rows.len() {
        let (head_cols, _) = a.row(rows[i] as usize);
        let mut j = i + 1;
        while j < rows.len() && a.row(rows[j] as usize).0 == head_cols {
            j += 1;
        }
        index_bytes += head_cols.len() * 4;
        run_off.push(j as u32);
        i = j;
    }
    (run_off, index_bytes)
}

impl RowRuns {
    /// Derive the identical-row runs of `rows` and keep them when they
    /// are long enough to pay: average run length (`rows / n_runs`) at
    /// least `min_avg_run`. Returns `None` for empty bins or bins whose
    /// rows are mostly unique (the pattern reuse would be nil).
    pub fn detect<T: Scalar>(a: &CsrMatrix<T>, rows: &[u32], min_avg_run: usize) -> Option<Self> {
        if rows.is_empty() || min_avg_run == 0 {
            return None;
        }
        let (run_off, index_bytes) = derive_row_runs(a, rows);
        let n_runs = run_off.len() - 1;
        if n_runs == 0 || rows.len() < n_runs.saturating_mul(min_avg_run) {
            return None;
        }
        Some(Self {
            run_off,
            index_bytes,
        })
    }

    /// Re-derive the maximal run boundaries from `(a, rows)` and require
    /// exact agreement — which proves both that every run's rows really
    /// share one column pattern (the reuse the kernel performs) and that
    /// the modelled index traffic is honest.
    pub fn check_against<T: Scalar>(&self, a: &CsrMatrix<T>, rows: &[u32]) -> Result<(), String> {
        let (run_off, index_bytes) = derive_row_runs(a, rows);
        if run_off != self.run_off {
            let k = run_off
                .iter()
                .zip(&self.run_off)
                .position(|(x, y)| x != y)
                .unwrap_or_else(|| run_off.len().min(self.run_off.len()));
            return Err(format!(
                "run boundaries disagree with derivation at slot {k}: stored {:?}, derived {:?}",
                self.run_off.get(k),
                run_off.get(k)
            ));
        }
        if index_bytes != self.index_bytes {
            return Err(format!(
                "payload claims {} index bytes, derivation gives {index_bytes}",
                self.index_bytes
            ));
        }
        Ok(())
    }

    /// Run boundaries as positions into the bin's row list.
    pub fn run_off(&self) -> &[u32] {
        &self.run_off
    }

    /// Number of identical-pattern runs.
    pub fn n_runs(&self) -> usize {
        self.run_off.len() - 1
    }

    /// Modelled index traffic of one execution (one pattern load per
    /// run).
    pub fn index_stream_bytes(&self) -> usize {
        self.index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn all_rows(m: usize) -> Vec<u32> {
        (0..m as u32).collect()
    }

    #[test]
    fn banded_matrix_is_band_complete() {
        let a = gen::banded::<f64>(500, 3, 7);
        let rows = all_rows(a.n_rows());
        let band = BandSet::detect(&a, &rows, 16).expect("banded generator qualifies");
        assert_eq!(band.offsets(), &[-3, -2, -1, 0, 1, 2, 3]);
        assert_eq!(band.nnz(), a.nnz());
        band.check_against(&a, &rows).unwrap();
        // Too-small offset budget refuses.
        assert!(BandSet::detect(&a, &rows, 6).is_none());
    }

    #[test]
    fn band_detection_rejects_incomplete_bands() {
        // One entry knocked off the pattern defeats completeness.
        let a = gen::banded::<f64>(100, 2, 3);
        let mut coo = crate::CooMatrix::<f64>::new(100, 100);
        for i in 0..100usize {
            for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
                if i == 50 && a.col_idx()[k] as usize == 51 {
                    continue; // drop (50, 51)
                }
                coo.push(i, a.col_idx()[k] as usize, a.values()[k]);
            }
        }
        let b: CsrMatrix<f64> = coo.to_csr();
        assert!(BandSet::detect(&b, &all_rows(100), 16).is_none());
    }

    #[test]
    fn band_proof_rejects_tampering() {
        let a = gen::banded::<f64>(200, 2, 1);
        let rows = all_rows(200);
        let band = BandSet::detect(&a, &rows, 16).unwrap();
        // Same pattern, one entry moved: the re-derivation must notice.
        let mut coo = crate::CooMatrix::<f64>::new(200, 200);
        for i in 0..200usize {
            for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
                let c = a.col_idx()[k] as usize;
                let c = if i == 70 && c == 72 { 75 } else { c };
                coo.push(i, c, a.values()[k]);
            }
        }
        let b: CsrMatrix<f64> = coo.to_csr();
        assert!(band.check_against(&b, &rows).is_err());
        // Wrong row list (subset) breaks the nnz total.
        assert!(band.check_against(&a, &rows[..100]).is_err());
    }

    #[test]
    fn dense_runs_cover_banded_rows_exactly() {
        let a = gen::banded::<f64>(300, 4, 5);
        let rows = all_rows(300);
        let runs = DenseRuns::detect(&a, &rows, 4).expect("9-wide rows qualify");
        // Interior rows are one maximal run each.
        assert_eq!(runs.runs().len(), 300);
        assert_eq!(runs.nnz(), a.nnz());
        assert!(runs.index_stream_bytes() < a.nnz() * 4);
        runs.check_against(&a, &rows).unwrap();
        // A scatter matrix's runs are too short.
        let p = gen::powerlaw::<f64>(400, 2, 60, 2.0, 9);
        assert!(DenseRuns::detect(&p, &all_rows(400), 4).is_none());
    }

    #[test]
    fn dense_run_proof_rejects_wrong_rows_and_shrunk_columns() {
        let a = gen::banded::<f64>(120, 5, 2);
        let rows = all_rows(120);
        let runs = DenseRuns::detect(&a, &rows, 4).unwrap();
        let mut reversed = rows.clone();
        reversed.reverse();
        assert!(runs.check_against(&a, &reversed).is_err());
        // Column-shrunk matrix of the same pattern must be rejected (the
        // run bounds were proven against the wider n_cols).
        let narrow = CsrMatrix::from_parts(
            120,
            a.n_cols() - 1,
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().to_vec(),
        );
        if let Ok(narrow) = narrow {
            assert!(runs.check_against(&narrow, &rows).is_err());
        }
    }

    #[test]
    fn row_runs_find_block_structure() {
        let a = gen::block_structured::<f64>(40, 8, 1, 3);
        let rows = all_rows(a.n_rows());
        let rr = RowRuns::detect(&a, &rows, 4).expect("block rows share patterns");
        assert!(rr.n_runs() <= 40, "{} runs for 40 blocks", rr.n_runs());
        assert!(rr.index_stream_bytes() * 4 <= a.nnz() * 4);
        rr.check_against(&a, &rows).unwrap();
        // Unique-pattern rows do not qualify.
        let p = gen::powerlaw::<f64>(300, 2, 40, 2.0, 5);
        assert!(RowRuns::detect(&p, &all_rows(300), 4).is_none());
    }

    #[test]
    fn row_run_proof_rejects_boundary_tampering() {
        let a = gen::block_structured::<f64>(20, 6, 1, 11);
        let rows = all_rows(a.n_rows());
        let rr = RowRuns::detect(&a, &rows, 3).unwrap();
        // A permuted row list breaks the run derivation.
        let mut shuffled = rows.clone();
        shuffled.swap(0, 60);
        assert!(rr.check_against(&a, &shuffled).is_err());
    }
}
