//! Static linter for rule-sets (and the trees they come from).
//!
//! A checked-in classifier drives kernel dispatch at run time, so a
//! corrupt or stale model must fail at *load* time, not mispredict at
//! *dispatch* time. The linter proves, per rule-set:
//!
//! * every rule class and the default class fit the declared class
//!   universe (e.g. the nine-kernel pool or the granularity grid);
//! * every condition references a real attribute with a finite
//!   threshold (`x ≤ NaN` and `x > NaN` are both always false, so a
//!   NaN threshold silently deletes a split);
//! * no rule's conjunction is self-contradictory (empty interval, or
//!   clashing equality codes on one attribute);
//! * no rule is shadowed by an earlier rule (first-match semantics make
//!   it unreachable);
//! * whether any region of feature space falls through to the default
//!   class, via an exact grid decomposition over the thresholds that
//!   actually appear in the rules.
//!
//! Findings carry a [`Severity`]: `Error` findings make
//! [`crate::io::read_ruleset`]-level consumers (see
//! `spmv-autotune::model_io`) refuse the model; `Warning` findings are
//! reported by `spmv-lint` but tolerated, because legitimately trained
//! rule-sets can contain shadowed rules (accuracy ordering) and default
//! fallthrough (the default *is* the majority-class fallback).

use crate::rules::{Cond, RuleSet};
use crate::tree::{DecisionTree, Node};
use std::collections::BTreeSet;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but tolerable; reported, never fatal.
    Warning,
    /// The model would panic or silently mispredict at dispatch time;
    /// loading must fail.
    Error,
}

/// One linter diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// A rule predicts a class outside the valid class universe.
    ClassOutOfRange {
        /// Rule index (match order).
        rule: usize,
        /// The offending class id.
        class: usize,
        /// Exclusive upper bound on valid classes.
        limit: usize,
    },
    /// The default class is outside the valid class universe — every
    /// fallthrough row would dispatch a kernel that does not exist.
    DefaultOutOfRange {
        /// The offending default class.
        class: usize,
        /// Exclusive upper bound on valid classes.
        limit: usize,
    },
    /// A condition references an attribute index past the attribute
    /// table.
    AttrOutOfRange {
        /// Rule index.
        rule: usize,
        /// The offending attribute index.
        attr: usize,
        /// Number of attributes the rule-set declares.
        n_attrs: usize,
    },
    /// A numeric threshold is NaN or infinite, making the comparison
    /// constant-false (NaN) or vacuous (±∞).
    NonFiniteThreshold {
        /// Rule index.
        rule: usize,
        /// Attribute the condition tests.
        attr: usize,
        /// The non-finite threshold value.
        value: f64,
    },
    /// A rule's conjunction is unsatisfiable on the named attribute
    /// (e.g. `x ≤ 1 and x > 2`, or `c = 0 and c = 1`).
    ContradictoryConds {
        /// Rule index.
        rule: usize,
        /// Attribute with the empty feasible set.
        attr: usize,
    },
    /// Every row matching this rule already matches an earlier rule, so
    /// under first-match semantics it can never fire.
    UnreachableRule {
        /// The shadowed rule.
        rule: usize,
        /// The earlier rule that captures its whole feasible region.
        shadowed_by: usize,
    },
    /// The rule list does not cover the feature space: the witness row
    /// matches no rule and falls through to the default class.
    DefaultFallthrough {
        /// A concrete feature row reaching the default.
        witness: Vec<f64>,
    },
    /// Coverage analysis was skipped because the threshold grid was too
    /// large to enumerate.
    CoverageUnknown {
        /// Number of grid cells that enumeration would have required.
        cells: usize,
    },
    /// A tree leaf predicts a class outside the valid class universe.
    TreeLeafClassOutOfRange {
        /// Node index in the tree arena.
        node: usize,
        /// The offending class id.
        class: usize,
        /// Exclusive upper bound on valid classes.
        limit: usize,
    },
    /// A tree split threshold is NaN or infinite.
    TreeNonFiniteThreshold {
        /// Node index in the tree arena.
        node: usize,
        /// Attribute the split tests.
        attr: usize,
        /// The non-finite threshold value.
        value: f64,
    },
}

impl Finding {
    /// The severity class of this finding.
    pub fn severity(&self) -> Severity {
        match self {
            Finding::ClassOutOfRange { .. }
            | Finding::DefaultOutOfRange { .. }
            | Finding::AttrOutOfRange { .. }
            | Finding::NonFiniteThreshold { .. }
            | Finding::TreeLeafClassOutOfRange { .. }
            | Finding::TreeNonFiniteThreshold { .. } => Severity::Error,
            Finding::ContradictoryConds { .. }
            | Finding::UnreachableRule { .. }
            | Finding::DefaultFallthrough { .. }
            | Finding::CoverageUnknown { .. } => Severity::Warning,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::ClassOutOfRange { rule, class, limit } => {
                write!(f, "rule {rule}: class {class} out of range (limit {limit})")
            }
            Finding::DefaultOutOfRange { class, limit } => {
                write!(f, "default class {class} out of range (limit {limit})")
            }
            Finding::AttrOutOfRange {
                rule,
                attr,
                n_attrs,
            } => {
                write!(
                    f,
                    "rule {rule}: attribute {attr} out of range ({n_attrs} attrs)"
                )
            }
            Finding::NonFiniteThreshold { rule, attr, value } => {
                write!(
                    f,
                    "rule {rule}: non-finite threshold {value} on attribute {attr}"
                )
            }
            Finding::ContradictoryConds { rule, attr } => {
                write!(
                    f,
                    "rule {rule}: contradictory conditions on attribute {attr}"
                )
            }
            Finding::UnreachableRule { rule, shadowed_by } => {
                write!(
                    f,
                    "rule {rule}: unreachable (shadowed by rule {shadowed_by})"
                )
            }
            Finding::DefaultFallthrough { witness } => {
                write!(
                    f,
                    "feature space not covered: {witness:?} falls through to the default"
                )
            }
            Finding::CoverageUnknown { cells } => {
                write!(f, "coverage analysis skipped ({cells} grid cells)")
            }
            Finding::TreeLeafClassOutOfRange { node, class, limit } => {
                write!(
                    f,
                    "tree node {node}: leaf class {class} out of range (limit {limit})"
                )
            }
            Finding::TreeNonFiniteThreshold { node, attr, value } => {
                write!(
                    f,
                    "tree node {node}: non-finite threshold {value} on attribute {attr}"
                )
            }
        }
    }
}

/// Knobs for [`lint_ruleset`].
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Exclusive upper bound on valid class ids. A rule-set's own
    /// `n_classes` can lie (a stale file); pass the *consumer's* bound —
    /// the kernel-pool size or the granularity-grid length. `None`
    /// trusts the rule-set's declared count.
    pub class_limit: Option<usize>,
    /// Cap on grid cells enumerated by the coverage analysis; beyond it
    /// a [`Finding::CoverageUnknown`] is emitted instead.
    pub max_coverage_cells: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            class_limit: None,
            max_coverage_cells: 100_000,
        }
    }
}

/// The feasible region of one rule on one attribute: an open-below /
/// closed-above interval intersected with an optional equality pin.
#[derive(Clone, Copy, Debug)]
struct AttrBox {
    /// Strict lower bound (from `Gt`).
    lo: f64,
    /// Inclusive upper bound (from `Le`).
    hi: f64,
    /// Equality pin (from `Eq`), if any.
    eq: Option<usize>,
    /// Set when two `Eq` codes clash.
    empty: bool,
}

impl AttrBox {
    fn unconstrained() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            eq: None,
            empty: false,
        }
    }

    fn add(&mut self, cond: &Cond) {
        match *cond {
            Cond::Le(_, v) => self.hi = self.hi.min(v),
            Cond::Gt(_, v) => self.lo = self.lo.max(v),
            Cond::Eq(_, c) => match self.eq {
                Some(prev) if prev != c => self.empty = true,
                _ => self.eq = Some(c),
            },
        }
    }

    /// Whether any value satisfies the box.
    fn feasible(&self) -> bool {
        if self.empty || self.lo >= self.hi {
            return false;
        }
        match self.eq {
            // `row[a] as usize == c` truncates, so any value in
            // [c, c+1) matches; feasible iff that unit interval meets
            // (lo, hi].
            Some(c) => {
                let c = c as f64;
                c + 1.0 > self.lo && c <= self.hi
            }
            None => true,
        }
    }

    /// Whether every point of `self` satisfies `cond` (used for
    /// shadowing: does an earlier rule's condition already hold on this
    /// rule's whole feasible region?).
    fn implies(&self, cond: &Cond) -> bool {
        match *cond {
            Cond::Le(_, v) => self.hi <= v || self.eq.is_some_and(|c| (c as f64) <= v),
            Cond::Gt(_, v) => self.lo >= v || self.eq.is_some_and(|c| (c as f64) > v),
            Cond::Eq(_, c) => self.eq == Some(c),
        }
    }
}

/// Per-attribute feasible boxes of one rule.
fn rule_boxes(conds: &[Cond], n_attrs: usize) -> Vec<AttrBox> {
    let mut boxes = vec![AttrBox::unconstrained(); n_attrs];
    for cond in conds {
        let a = match *cond {
            Cond::Le(a, _) | Cond::Gt(a, _) | Cond::Eq(a, _) => a,
        };
        if a < n_attrs {
            boxes[a].add(cond);
        }
    }
    boxes
}

/// Run every check over `rs` and return the findings, errors first.
pub fn lint_ruleset(rs: &RuleSet, opts: &LintOptions) -> Vec<Finding> {
    let mut out = Vec::new();
    let limit = opts.class_limit.unwrap_or_else(|| rs.n_classes());
    let n_attrs = rs.attr_names().len();

    if rs.default_class() >= limit {
        out.push(Finding::DefaultOutOfRange {
            class: rs.default_class(),
            limit,
        });
    }

    let mut feasible: Vec<bool> = Vec::with_capacity(rs.rules().len());
    for (i, rule) in rs.rules().iter().enumerate() {
        if rule.class >= limit {
            out.push(Finding::ClassOutOfRange {
                rule: i,
                class: rule.class,
                limit,
            });
        }
        for cond in &rule.conds {
            match *cond {
                Cond::Le(a, v) | Cond::Gt(a, v) => {
                    if a >= n_attrs {
                        out.push(Finding::AttrOutOfRange {
                            rule: i,
                            attr: a,
                            n_attrs,
                        });
                    }
                    if !v.is_finite() {
                        out.push(Finding::NonFiniteThreshold {
                            rule: i,
                            attr: a,
                            value: v,
                        });
                    }
                }
                Cond::Eq(a, _) => {
                    if a >= n_attrs {
                        out.push(Finding::AttrOutOfRange {
                            rule: i,
                            attr: a,
                            n_attrs,
                        });
                    }
                }
            }
        }
        let boxes = rule_boxes(&rule.conds, n_attrs);
        let mut rule_feasible = true;
        for (a, b) in boxes.iter().enumerate() {
            if !b.feasible() {
                out.push(Finding::ContradictoryConds { rule: i, attr: a });
                rule_feasible = false;
            }
        }
        feasible.push(rule_feasible);
    }

    // Shadowing: rule i is unreachable when some earlier feasible rule j
    // holds on i's entire feasible region (every cond of j implied by
    // i's boxes). Contradictory rules are already reported above.
    for i in 1..rs.rules().len() {
        if !feasible[i] {
            continue;
        }
        let boxes_i = rule_boxes(&rs.rules()[i].conds, n_attrs);
        for (j, &j_feasible) in feasible.iter().enumerate().take(i) {
            if !j_feasible {
                continue;
            }
            let shadows = rs.rules()[j].conds.iter().all(|cond| {
                let a = match *cond {
                    Cond::Le(a, _) | Cond::Gt(a, _) | Cond::Eq(a, _) => a,
                };
                a < n_attrs && boxes_i[a].implies(cond)
            });
            if shadows {
                out.push(Finding::UnreachableRule {
                    rule: i,
                    shadowed_by: j,
                });
                break;
            }
        }
    }

    // Coverage evaluates `Rule::matches` on synthetic rows of length
    // `n_attrs`; a rule that indexes past that would panic, so skip the
    // pass when any AttrOutOfRange error is already on record.
    if !out
        .iter()
        .any(|f| matches!(f, Finding::AttrOutOfRange { .. }))
    {
        coverage(rs, n_attrs, opts, &mut out);
    }
    out.sort_by_key(|f| std::cmp::Reverse(f.severity()));
    out
}

/// Exact coverage analysis: rule predicates are constant inside every
/// cell of the grid induced by the thresholds appearing in the rules, so
/// testing one representative point per cell decides coverage exactly.
fn coverage(rs: &RuleSet, n_attrs: usize, opts: &LintOptions, out: &mut Vec<Finding>) {
    if n_attrs == 0 {
        return;
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); n_attrs];
    for rule in rs.rules() {
        for cond in &rule.conds {
            match *cond {
                Cond::Le(a, v) | Cond::Gt(a, v) => {
                    if a < n_attrs && v.is_finite() {
                        samples[a].push(v);
                    }
                }
                Cond::Eq(a, c) => {
                    if a < n_attrs {
                        samples[a].push(c as f64);
                    }
                }
            }
        }
    }
    let mut cells: usize = 1;
    for s in &mut samples {
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s.dedup();
        // Representative points: each threshold itself (hits the ≤ /
        // equality boundary), midpoints between neighbours, and a point
        // below the first and above the last.
        let pts: BTreeSet<u64> = {
            let mut pts = Vec::new();
            if s.is_empty() {
                pts.push(0.0);
            } else {
                pts.push(s[0] - 1.0);
                for w in s.windows(2) {
                    pts.push((w[0] + w[1]) / 2.0);
                }
                pts.extend(s.iter().copied());
                pts.push(s[s.len() - 1] + 1.0);
            }
            pts.into_iter().map(f64::to_bits).collect()
        };
        *s = pts.into_iter().map(f64::from_bits).collect();
        cells = cells.saturating_mul(s.len().max(1));
    }
    if cells > opts.max_coverage_cells {
        out.push(Finding::CoverageUnknown { cells });
        return;
    }
    // Odometer over the cartesian product of per-attribute samples.
    let mut idx = vec![0usize; n_attrs];
    let mut row = vec![0.0f64; n_attrs];
    loop {
        for (a, &k) in idx.iter().enumerate() {
            row[a] = samples[a][k];
        }
        if !rs.rules().iter().any(|r| r.matches(&row)) {
            out.push(Finding::DefaultFallthrough {
                witness: row.clone(),
            });
            return;
        }
        let mut a = 0;
        loop {
            if a == n_attrs {
                return;
            }
            idx[a] += 1;
            if idx[a] < samples[a].len() {
                break;
            }
            idx[a] = 0;
            a += 1;
        }
    }
}

/// Lint a trained tree directly: leaf classes in range, split thresholds
/// finite. Rule-sets extracted from a clean tree inherit these
/// properties, so this catches corruption before extraction.
pub fn lint_tree(tree: &DecisionTree, class_limit: Option<usize>) -> Vec<Finding> {
    let limit = class_limit.unwrap_or_else(|| tree.n_classes());
    let mut out = Vec::new();
    let mut stack = vec![tree.root()];
    let mut seen = vec![false; tree.n_nodes()];
    while let Some(n) = stack.pop() {
        if seen[n] {
            continue;
        }
        seen[n] = true;
        match tree.node(n) {
            Node::Leaf { class, .. } => {
                if *class >= limit {
                    out.push(Finding::TreeLeafClassOutOfRange {
                        node: n,
                        class: *class,
                        limit,
                    });
                }
            }
            Node::Numeric {
                attr,
                threshold,
                left,
                right,
                ..
            } => {
                if !threshold.is_finite() {
                    out.push(Finding::TreeNonFiniteThreshold {
                        node: n,
                        attr: *attr,
                        value: *threshold,
                    });
                }
                stack.push(*left);
                stack.push(*right);
            }
            Node::Categorical { children, .. } => stack.extend(children.iter().copied()),
        }
    }
    out
}

/// Convenience: the `Error`-severity subset of a finding list.
pub fn errors(findings: &[Finding]) -> Vec<Finding> {
    findings
        .iter()
        .filter(|f| f.severity() == Severity::Error)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{AttrSpec, Dataset};
    use crate::rules::Rule;
    use crate::tree::TreeConfig;

    fn rs(rules: Vec<Rule>, default: usize, n_classes: usize, n_attrs: usize) -> RuleSet {
        let names = (0..n_attrs).map(|i| format!("a{i}")).collect();
        RuleSet::from_parts(rules, default, names, n_classes)
    }

    fn rule(conds: Vec<Cond>, class: usize) -> Rule {
        Rule {
            conds,
            class,
            accuracy: 0.9,
        }
    }

    #[test]
    fn clean_exhaustive_ruleset_has_no_findings() {
        let r = rs(
            vec![
                rule(vec![Cond::Le(0, 5.0)], 0),
                rule(vec![Cond::Gt(0, 5.0)], 1),
            ],
            0,
            2,
            1,
        );
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn class_out_of_range_is_an_error() {
        let r = rs(vec![rule(vec![Cond::Le(0, 1.0)], 7)], 0, 9, 1);
        // The file claims nine classes, but the consumer only has 4.
        let f = lint_ruleset(
            &r,
            &LintOptions {
                class_limit: Some(4),
                ..Default::default()
            },
        );
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::ClassOutOfRange {
                rule: 0,
                class: 7,
                limit: 4
            }
        )));
        assert_eq!(f[0].severity(), Severity::Error);
    }

    #[test]
    fn contradictory_conjunction_is_found() {
        let r = rs(
            vec![rule(vec![Cond::Le(0, 1.0), Cond::Gt(0, 2.0)], 0)],
            0,
            2,
            1,
        );
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f
            .iter()
            .any(|x| matches!(x, Finding::ContradictoryConds { rule: 0, attr: 0 })));
    }

    #[test]
    fn clashing_eq_codes_are_contradictory() {
        let r = rs(vec![rule(vec![Cond::Eq(0, 1), Cond::Eq(0, 2)], 0)], 0, 2, 1);
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f
            .iter()
            .any(|x| matches!(x, Finding::ContradictoryConds { rule: 0, attr: 0 })));
    }

    #[test]
    fn shadowed_rule_is_unreachable() {
        let r = rs(
            vec![
                rule(vec![Cond::Le(0, 10.0)], 0),
                rule(vec![Cond::Le(0, 5.0)], 1), // subset of rule 0
            ],
            0,
            2,
            1,
        );
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::UnreachableRule {
                rule: 1,
                shadowed_by: 0
            }
        )));
    }

    #[test]
    fn empty_cond_rule_shadows_everything_after_it() {
        let r = rs(
            vec![rule(vec![], 0), rule(vec![Cond::Gt(0, 3.0)], 1)],
            0,
            2,
            1,
        );
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::UnreachableRule {
                rule: 1,
                shadowed_by: 0
            }
        )));
    }

    #[test]
    fn nan_threshold_is_an_error() {
        let r = rs(vec![rule(vec![Cond::Le(0, f64::NAN)], 0)], 0, 2, 1);
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::NonFiniteThreshold {
                rule: 0,
                attr: 0,
                ..
            }
        )));
    }

    #[test]
    fn fallthrough_witness_reaches_default() {
        // Rules only cover x ≤ 5; everything above falls through.
        let r = rs(vec![rule(vec![Cond::Le(0, 5.0)], 1)], 0, 2, 1);
        let f = lint_ruleset(&r, &LintOptions::default());
        let w = f.iter().find_map(|x| match x {
            Finding::DefaultFallthrough { witness } => Some(witness.clone()),
            _ => None,
        });
        let w = w.expect("fallthrough expected");
        assert!(!r.rules()[0].matches(&w));
    }

    #[test]
    fn attr_out_of_range_is_an_error() {
        let r = rs(vec![rule(vec![Cond::Gt(3, 0.0)], 0)], 0, 2, 1);
        let f = lint_ruleset(&r, &LintOptions::default());
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::AttrOutOfRange {
                rule: 0,
                attr: 3,
                n_attrs: 1
            }
        )));
    }

    #[test]
    fn trained_ruleset_has_no_errors() {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x"), AttrSpec::numeric("y")],
            vec!["lo".into(), "hi".into()],
        );
        for i in 0..200 {
            d.push(&[i as f64, (i * 3 % 17) as f64], usize::from(i >= 100));
        }
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        let r = RuleSet::from_tree(&t, &d, 0.25);
        assert!(errors(&lint_ruleset(&r, &LintOptions::default())).is_empty());
        assert!(lint_tree(&t, None).is_empty());
    }

    #[test]
    fn tree_with_out_of_universe_leaves_is_flagged() {
        let mut d = Dataset::new(
            vec![AttrSpec::numeric("x")],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for i in 0..60 {
            d.push(&[i as f64], (i / 20).min(2));
        }
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        // Consumer universe smaller than the trained class count.
        let f = lint_tree(&t, Some(1));
        assert!(f
            .iter()
            .any(|x| matches!(x, Finding::TreeLeafClassOutOfRange { .. })));
    }
}
