//! Property tests of the cost model's axioms: coalescing bounds, pricing
//! monotonicity, and accumulation arithmetic.

use proptest::prelude::*;
use spmv_gpusim::coalesce::{transactions, transactions_contiguous};
use spmv_gpusim::engine::price_workgroups;
use spmv_gpusim::trace::{WaveCost, WorkgroupCost};
use spmv_gpusim::GpuDevice;

fn wg(waves: Vec<WaveCost>, lds: usize) -> WorkgroupCost {
    WorkgroupCost {
        waves,
        lds_bytes: lds,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// 1 ≤ transactions ≤ lanes for any non-empty address set.
    #[test]
    fn transaction_count_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut scratch = Vec::new();
        let tx = transactions(&addrs, 64, &mut scratch);
        prop_assert!(tx >= 1);
        prop_assert!(tx <= addrs.len());
    }

    /// Coalescing is permutation-invariant.
    #[test]
    fn transactions_ignore_lane_order(mut addrs in proptest::collection::vec(0u64..100_000, 1..64)) {
        let mut scratch = Vec::new();
        let a = transactions(&addrs, 64, &mut scratch);
        addrs.reverse();
        let b = transactions(&addrs, 64, &mut scratch);
        prop_assert_eq!(a, b);
    }

    /// The contiguous closed form always matches the general path.
    #[test]
    fn contiguous_closed_form(base in 0u64..10_000, lanes in 0usize..128, eb in prop_oneof![Just(4usize), Just(8usize)]) {
        let addrs: Vec<u64> = (0..lanes as u64).map(|i| base + i * eb as u64).collect();
        let mut scratch = Vec::new();
        prop_assert_eq!(
            transactions_contiguous(base, lanes, eb, 64),
            transactions(&addrs, 64, &mut scratch)
        );
    }

    /// Pricing is monotone in every wave cost component.
    #[test]
    fn pricing_is_monotone(
        alu in 0u64..10_000,
        tx in 0u64..10_000,
        rounds in 0u64..1_000,
        lds in 0u64..10_000,
        barriers in 0u64..100,
    ) {
        let d = GpuDevice::kaveri();
        let base = WaveCost { alu, transactions: tx, mem_rounds: rounds, lds_ops: lds, barriers, ..Default::default() };
        let cost = |w: WaveCost| price_workgroups(&d, &[wg(vec![w], 0)]).cycles;
        let c0 = cost(base);
        for bumped in [
            WaveCost { alu: alu + 1, ..base },
            WaveCost { transactions: tx + 1, ..base },
            WaveCost { mem_rounds: rounds + 1, ..base },
            WaveCost { lds_ops: lds + 1, ..base },
            WaveCost { barriers: barriers + 1, ..base },
        ] {
            prop_assert!(cost(bumped) >= c0);
        }
    }

    /// Adding a work-group never reduces the launch cost.
    #[test]
    fn more_workgroups_never_cost_less(n in 1usize..40, alu in 1u64..10_000) {
        let d = GpuDevice::kaveri();
        let unit = wg(vec![WaveCost { alu, ..Default::default() }; 4], 256);
        let small = price_workgroups(&d, &vec![unit.clone(); n]).cycles;
        let big = price_workgroups(&d, &vec![unit; n + 1]).cycles;
        prop_assert!(big + 1e-9 >= small);
    }

    /// Accumulating launch stats adds cycles and counters exactly.
    #[test]
    fn accumulate_is_additive(a_alu in 0u64..1_000, b_alu in 0u64..1_000) {
        let d = GpuDevice::kaveri();
        let s1 = price_workgroups(&d, &[wg(vec![WaveCost { alu: a_alu, ..Default::default() }], 0)]);
        let s2 = price_workgroups(&d, &[wg(vec![WaveCost { alu: b_alu, ..Default::default() }], 0)]);
        let mut sum = s1.clone();
        sum.accumulate(&s2);
        prop_assert!((sum.cycles - (s1.cycles + s2.cycles)).abs() < 1e-9);
        prop_assert_eq!(sum.alu, s1.alu + s2.alu);
        prop_assert_eq!(sum.workgroups, 2);
    }

    /// Seconds and cycles stay consistent with the device clock.
    #[test]
    fn seconds_track_cycles(alu in 0u64..100_000) {
        let d = GpuDevice::kaveri();
        let s = price_workgroups(&d, &[wg(vec![WaveCost { alu, ..Default::default() }], 0)]);
        prop_assert!((s.seconds - d.cycles_to_seconds(s.cycles)).abs() < 1e-15);
    }
}
