//! Cross-crate integration tests: the full pipeline from generated
//! matrices through binning, kernels, tuning, training and prediction.

use spmv_repro::autotune::binning::{bin_matrix, BinningScheme};
use spmv_repro::autotune::kernels::{run_kernel, ALL_KERNELS};
use spmv_repro::autotune::prelude::*;
use spmv_repro::autotune::training::TrainerConfig;
use spmv_repro::autotune::tuner::TunerConfig;
use spmv_repro::gpusim::GpuDevice;
use spmv_repro::sparse::corpus::CorpusConfig;
use spmv_repro::sparse::gen::{self, RowRegime};
use spmv_repro::sparse::scalar::approx_eq;
use spmv_repro::sparse::CsrMatrix;

fn irregular(seed: u64) -> CsrMatrix<f32> {
    gen::mixture(
        3_000,
        4_000,
        &[
            RowRegime::new(1, 4, 0.6),
            RowRegime::new(16, 64, 0.3),
            RowRegime::new(256, 700, 0.1),
        ],
        true,
        seed,
    )
}

#[test]
fn every_kernel_on_every_binning_scheme_is_correct() {
    let a = irregular(1);
    let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let device = GpuDevice::kaveri();
    for scheme in [
        BinningScheme::Coarse { u: 10 },
        BinningScheme::Coarse { u: 1000 },
        BinningScheme::Fine,
        BinningScheme::Hybrid {
            threshold: 16,
            u: 100,
        },
        BinningScheme::Single,
    ] {
        for kernel in ALL_KERNELS {
            let bins = bin_matrix(&a, scheme);
            let mut u = vec![0.0f32; a.n_rows()];
            for b in 0..bins.bins.len() {
                if bins.bins[b].is_empty() {
                    continue;
                }
                let rows = bins.expand(b);
                run_kernel(&device, &a, &rows, kernel, &v, &mut u);
            }
            for i in 0..a.n_rows() {
                assert!(
                    approx_eq(u[i], reference[i], a.row_nnz(i)),
                    "{scheme:?} + {kernel}: row {i}: {} vs {}",
                    u[i],
                    reference[i]
                );
            }
        }
    }
}

#[test]
fn trained_model_drives_a_correct_and_competitive_run() {
    let device = GpuDevice::kaveri();
    let config = TrainerConfig {
        corpus: CorpusConfig {
            count: 60,
            min_rows: 400,
            max_rows: 1_500,
            seed: 5,
        },
        tuner: TunerConfig {
            granularities: vec![10, 100, 1_000, 10_000],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: false,
        },
        ..Default::default()
    };
    let (model, report) = Trainer::with_config(device.clone(), config).train();
    // The model must do meaningfully better than chance on both stages.
    assert!(
        report.stage1_error() < 0.6,
        "stage1 {}",
        report.stage1_error()
    );
    assert!(
        report.stage2_error() < 0.6,
        "stage2 {}",
        report.stage2_error()
    );

    let a = irregular(7);
    let v = vec![1.0f32; a.n_cols()];
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let auto = AutoSpmv::with_model(device.clone(), model);
    let mut u = vec![0.0f32; a.n_rows()];
    let run = auto.run(&a, &v, &mut u);
    for i in 0..a.n_rows() {
        assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "row {i}");
    }
    // Predicted strategy should beat at least one of the single-kernel
    // extremes (the weaker default) even with prediction error.
    let mut scratch = vec![0.0f32; a.n_rows()];
    let serial = run_single_kernel(&device, &a, KernelId::Serial, &v, &mut scratch);
    let vector = run_single_kernel(&device, &a, KernelId::Vector, &v, &mut scratch);
    let worst = serial.cycles.max(vector.cycles);
    assert!(
        run.stats.cycles < worst,
        "predicted {} vs worst default {}",
        run.stats.cycles,
        worst
    );
}

#[test]
fn oracle_beats_all_nine_single_kernel_defaults_on_irregular_input() {
    let a = irregular(11);
    let v = vec![1.0f32; a.n_cols()];
    let device = GpuDevice::kaveri();
    let tuned = Tuner::new(device.clone()).tune(&a);
    let mut u = vec![0.0f32; a.n_rows()];
    let auto = run_strategy(&device, &a, &tuned.strategy, &v, &mut u);
    for k in ALL_KERNELS {
        let single = run_single_kernel(&device, &a, k, &v, &mut u);
        assert!(
            auto.cycles <= single.cycles + 1e-6,
            "single {k} ({}) beat auto ({})",
            single.cycles,
            auto.cycles
        );
    }
}

#[test]
fn csr_adaptive_and_auto_agree_numerically() {
    let a = irregular(13);
    let v: Vec<f32> = (0..a.n_cols()).map(|i| (i % 4) as f32).collect();
    let device = GpuDevice::kaveri();
    let mut u1 = vec![0.0f32; a.n_rows()];
    CsrAdaptive::new().run(&device, &a, &v, &mut u1);
    let mut u2 = vec![0.0f32; a.n_rows()];
    let auto = AutoSpmv::with_oracle(device);
    auto.run(&a, &v, &mut u2);
    for i in 0..a.n_rows() {
        assert!(
            approx_eq(u1[i], u2[i], a.row_nnz(i)),
            "row {i}: {} vs {}",
            u1[i],
            u2[i]
        );
    }
}

#[test]
fn matrix_market_roundtrip_preserves_tuning_inputs() {
    let a = irregular(17);
    let mut buf = Vec::new();
    spmv_repro::sparse::mm::write_matrix_market(&a, &mut buf).unwrap();
    let b: CsrMatrix<f32> = spmv_repro::sparse::mm::read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, b);
    let fa =
        spmv_repro::sparse::MatrixFeatures::extract(&a, spmv_repro::sparse::FeatureSet::TableI);
    let fb =
        spmv_repro::sparse::MatrixFeatures::extract(&b, spmv_repro::sparse::FeatureSet::TableI);
    assert_eq!(fa, fb);
}

#[test]
fn f64_pipeline_works_end_to_end() {
    // The whole stack is generic over the scalar; exercise f64.
    let a = gen::powerlaw::<f64>(1_500, 1, 200, 2.2, 23);
    let v: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let device = GpuDevice::kaveri();
    let tuned = Tuner::with_config(
        device.clone(),
        TunerConfig {
            granularities: vec![10, 100],
            kernels: ALL_KERNELS.to_vec(),
            include_single_bin: true,
        },
    )
    .tune(&a);
    let mut u = vec![0.0f64; a.n_rows()];
    run_strategy(&device, &a, &tuned.strategy, &v, &mut u);
    for i in 0..a.n_rows() {
        assert!(approx_eq(u[i], reference[i], a.row_nnz(i)), "row {i}");
    }
}
