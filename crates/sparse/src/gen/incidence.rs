//! Combinatorial incidence matrices (`ch7-9-b3`, `D6-6`, `shar_te2-b2` in
//! Table II): tall rectangular simplicial-boundary matrices where *every*
//! row has exactly the same small number of non-zeros.

use super::{sample_distinct_columns, seeded_rng, RowsBuilder};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// Generate an `m × n` incidence-style matrix with exactly `k` non-zeros
/// per row, values alternating ±1 as in a boundary operator.
pub fn incidence<T: Scalar>(m: usize, n: usize, k: usize, seed: u64) -> CsrMatrix<T> {
    let mut rng = seeded_rng(seed);
    let mut b = RowsBuilder::with_capacity(n, m, m * k);
    let mut cols = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    let neg = T::ZERO - T::ONE;
    for _ in 0..m {
        sample_distinct_columns(&mut rng, n, k, &mut cols);
        vals.clear();
        let flip: bool = rng.gen();
        vals.extend(cols.iter().enumerate().map(
            |(idx, _)| {
                if (idx % 2 == 0) ^ flip {
                    T::ONE
                } else {
                    neg
                }
            },
        ));
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_k_per_row() {
        let a = incidence::<f64>(200, 40, 4, 1);
        assert!((0..200).all(|i| a.row_nnz(i) == 4));
        assert_eq!(a.nnz(), 800);
    }

    #[test]
    fn tall_rectangular_shape() {
        let a = incidence::<f32>(1000, 100, 3, 2);
        assert_eq!(a.n_rows(), 1000);
        assert_eq!(a.n_cols(), 100);
    }

    #[test]
    fn values_are_plus_minus_one() {
        let a = incidence::<f64>(50, 20, 4, 3);
        assert!(a.values().iter().all(|&v| v == 1.0 || v == -1.0));
    }
}
