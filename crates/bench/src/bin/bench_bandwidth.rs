//! Bandwidth-tier throughput report: times the same tuned strategy over
//! every format tier of the bandwidth work — plain CSR, the PR 3
//! u32-lane packed baseline, delta-compressed lanes, forced
//! cache-blocked scatter execution, and the full bottleneck-aware gate —
//! and emits `BENCH_bandwidth.json` with GFLOP/s, modelled traffic
//! (bytes per non-zero), and the per-tier format mix.
//!
//! Every tier is asserted bit-for-bit against the sequential CSR
//! reference before its timing is reported.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_bandwidth`.
//!
//! Knobs: `SPMV_BENCH_ITERS` (timed iterations, default 20),
//! `SPMV_BENCH_BANDWIDTH_OUT` (output path, default
//! `BENCH_bandwidth.json`), `SPMV_BENCH_TINY=1` (three small synthetic
//! matrices — the CI smoke mode).

use spmv_autotune::prelude::*;
use spmv_bench::setup::{env_usize, load_suite, scaling_efficiency, sweep_threads};
use spmv_sparse::{gen, CsrMatrix, IndexKind};
use std::fmt::Write as _;
use std::time::Instant;

/// The format tiers compared. `csr` and `u32` reproduce the pre-PR and
/// PR 3 layouts; `compressed` isolates the delta lanes (forced past the
/// width gate, so the byte reduction is measured on every matrix);
/// `blocked` isolates the column-strip schedule (pack off, strip budget
/// small enough that the suite matrices qualify); `auto` is the PR 5
/// bottleneck-aware gate. Every tier pins `specialize: false` so this
/// report keeps measuring the PR 5 format space — the structure fast
/// paths have their own report (`bench_specialized`).
fn tiers() -> Vec<(&'static str, PlanConfig)> {
    vec![
        (
            "csr",
            PlanConfig {
                pack: false,
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "u32",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U32),
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "compressed",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U8),
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "blocked",
            PlanConfig {
                pack: false,
                l2_bytes: 4 * 1024,
                scatter_lines_per_row: 2.0,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "auto",
            PlanConfig {
                specialize: false,
                ..PlanConfig::default()
            },
        ),
    ]
}

struct TierRow {
    tier: &'static str,
    threads: usize,
    gflops: f64,
    index_bpn: f64,
    total_bpn: f64,
    u8_bins: usize,
    u16_bins: usize,
    u32_bins: usize,
    blocked_bins: usize,
    csr_bins: usize,
}

struct MatrixRow {
    name: String,
    m: usize,
    n: usize,
    nnz: usize,
    tiers: Vec<TierRow>,
}

fn time_loop(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(nnz: usize, iters: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 * iters as f64 / secs / 1e9
}

fn measure(name: &str, a: &CsrMatrix<f32>, iters: usize, threads: &[usize]) -> MatrixRow {
    let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };
    let mut rows = Vec::new();
    for (tier, config) in tiers() {
        for &w in threads {
            let backend = Box::new(NativeCpuBackend::new().with_workers(w));
            // Shard the tile queue to match the worker count, so every
            // tier's scaling curve runs through the sharded executor.
            let config = PlanConfig {
                shards: w,
                ..config
            };
            let verified = SpmvPlan::compile_with(a, strategy.clone(), backend, config)
                .verify(a)
                .expect("tiered plan must verify");
            let mut u = vec![0.0f32; a.n_rows()];
            let secs = time_loop(iters, || {
                verified.execute_unchecked(a, &v, &mut u).unwrap();
            });
            assert_eq!(
                u, reference,
                "{name}/{tier} (threads {w}) diverges from the CSR reference"
            );
            let plan = verified.plan();
            let traffic = plan.traffic();
            let (mut u8b, mut u16b, mut u32b) = (0usize, 0usize, 0usize);
            for d in plan.dispatch() {
                if let BinFormat::PackedSell { index, .. } = d.format {
                    match index {
                        IndexKind::U8 => u8b += 1,
                        IndexKind::U16 => u16b += 1,
                        IndexKind::U32 => u32b += 1,
                    }
                }
            }
            rows.push(TierRow {
                tier,
                threads: w,
                gflops: gflops(a.nnz(), iters, secs),
                index_bpn: traffic.index_bytes_per_nnz(),
                total_bpn: traffic.total_bytes_per_nnz(),
                u8_bins: u8b,
                u16_bins: u16b,
                u32_bins: u32b,
                blocked_bins: plan.blocked_bins(),
                csr_bins: plan.dispatch().len() - plan.packed_bins() - plan.blocked_bins(),
            });
        }
    }
    MatrixRow {
        name: name.to_string(),
        m: a.n_rows(),
        n: a.n_cols(),
        nnz: a.nnz(),
        tiers: rows,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let iters = env_usize("SPMV_BENCH_ITERS", 20);
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let out_path = std::env::var("SPMV_BENCH_BANDWIDTH_OUT")
        .unwrap_or_else(|_| "BENCH_bandwidth.json".to_string());

    let threads = sweep_threads();

    let cases: Vec<(String, CsrMatrix<f32>)> = if tiny {
        vec![
            (
                "tiny-uniform4".into(),
                gen::random_uniform::<f32>(4_000, 4_000, 4, 4, 1),
            ),
            ("tiny-banded7".into(), gen::banded::<f32>(4_000, 3, 2)),
            (
                "tiny-powerlaw".into(),
                gen::powerlaw::<f32>(3_000, 1, 150, 2.1, 3),
            ),
        ]
    } else {
        load_suite()
            .into_iter()
            .map(|c| (c.meta.name.to_string(), c.matrix))
            .collect()
    };

    let mut rows = Vec::new();
    for (name, a) in &cases {
        eprintln!(
            "  benchmarking {name} ({} x {}, {} nnz) …",
            a.n_rows(),
            a.n_cols(),
            a.nnz()
        );
        rows.push(measure(name, a, iters, &threads));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"bandwidth\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(
        json,
        "  \"pool_threads\": {},",
        spmv_parallel::num_threads()
    )
    .unwrap();
    write!(json, "  \"threads_swept\": [").unwrap();
    for (i, w) in threads.iter().enumerate() {
        write!(json, "{}{w}", if i > 0 { ", " } else { "" }).unwrap();
    }
    writeln!(json, "],").unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(json, "  \"matrices\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"n\": {}, \"nnz\": {}, \"tiers\": [",
            json_escape(&r.name),
            r.m,
            r.n,
            r.nnz
        )
        .unwrap();
        for (j, t) in r.tiers.iter().enumerate() {
            let base = r
                .tiers
                .iter()
                .find(|q| q.tier == t.tier && q.threads == 1)
                .map(|q| q.gflops)
                .unwrap_or(0.0);
            write!(
                json,
                "      {{\"tier\": \"{}\", \"threads\": {}, \"gflops\": {:.3}, \
                 \"scaling_efficiency\": {:.3}, \
                 \"index_bytes_per_nnz\": {:.4}, \"total_bytes_per_nnz\": {:.4}, \
                 \"u8_bins\": {}, \"u16_bins\": {}, \"u32_bins\": {}, \
                 \"blocked_bins\": {}, \"csr_bins\": {}}}",
                t.tier,
                t.threads,
                t.gflops,
                scaling_efficiency(t.threads, t.gflops, base),
                t.index_bpn,
                t.total_bpn,
                t.u8_bins,
                t.u16_bins,
                t.u32_bins,
                t.blocked_bins,
                t.csr_bins,
            )
            .unwrap();
            writeln!(json, "{}", if j + 1 < r.tiers.len() { "," } else { "" }).unwrap();
        }
        write!(json, "    ]}}").unwrap();
        writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
