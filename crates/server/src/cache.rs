//! Sharded concurrent plan cache with single-flight builds.
//!
//! Plan compilation is the expensive half of the plan/execute split
//! (~150× an execute for suite-scale matrices), and a serving process
//! replays it for every tenant that names the same matrix. The cache
//! keys verified plans by **structural identity** — the
//! [`PatternFingerprint`] plus the [`PlanConfigKey`] of the compile
//! configuration — so every request against an already-planned pattern
//! pays one shard read-lock and two O(m) row-pointer scans instead of a
//! compile-and-verify.
//!
//! Three properties the serving layer leans on:
//!
//! * **Hits never take an exclusive lock.** The read path is a shard
//!   `RwLock` read guard plus one relaxed atomic store for the LRU
//!   stamp; concurrent hits on one shard proceed in parallel, and hits
//!   on different shards share nothing at all.
//! * **Concurrent misses build once.** The first miss installs a
//!   [`Flight`] slot and compiles outside every map lock; later misses
//!   for the same key block on the flight's condvar and receive the
//!   same `Arc`'d plan (or the same build error). N tenants cold-hitting
//!   one matrix cost one compile, not N.
//! * **A fingerprint match is confirmed, never trusted.** The FNV-1a
//!   row-pointer hash inside [`PatternFingerprint`] is forgeable (two
//!   chosen arrays can collide; see the regression test), so each entry
//!   stores the independent [`confirm_row_ptr`] checksum and every hit
//!   recomputes it for the probing matrix — O(m), the same order as the
//!   fingerprint itself. A mismatch is treated as a miss and counted in
//!   [`CacheStats::collisions`]; the cache never returns a plan for a
//!   structurally different matrix, it only ever rebuilds.
//!
//! Capacity is bounded per shard (`capacity / shards`, min 1): when an
//! insert overflows a shard, eviction is **cost-aware**, not pure LRU.
//! Each Ready entry remembers the wall time its build actually took,
//! and the victim is the entry minimising `build_ns / (age + 1)` (age
//! in LRU ticks) — the one that is cheapest to get back per tick of
//! disuse. Equal-cost entries degrade to exact LRU; an expensive plan
//! (a large matrix's multi-second compile-and-verify) survives a scan
//! of cheap one-shot plans that would have flushed it under pure
//! recency. In-flight builds are never evicted.
//!
//! The cache is also the **publication point for online refinement**:
//! [`PlanCache::swap`] atomically replaces a Ready entry with a faster
//! plan compiled for the *same pattern and confirm checksum* under the
//! *same key*, so tenants that keep requesting the original
//! configuration transparently receive the refined plan. Readers are
//! never disturbed: in-flight executes hold their own `Arc` to the old
//! plan and finish on it; the swap only redirects future lookups. Both
//! sides of a swap are [`VerifiedPlan`]s for one structure, so results
//! stay bit-for-bit identical across the transition.

use spmv_autotune::{confirm_row_ptr, PatternFingerprint, PlanConfig, PlanConfigKey, VerifiedPlan};
use spmv_sparse::{CsrMatrix, Scalar};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// The full cache key: what the plan was compiled *for* (the sparsity
/// pattern) and *with* (the frozen configuration).
pub type PlanKey = (PatternFingerprint, PlanConfigKey);

/// Why a cache lookup failed: the only failure mode is the builder
/// itself (compile/verify) failing — every waiter of a single-flight
/// build receives the same error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// Plan compilation or verification failed; the rendered cause.
    Build(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Build(msg) => write!(f, "plan build failed: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// Cache sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Independent `RwLock`-protected map shards (contention domains).
    pub shards: usize,
    /// Total Ready-entry capacity across all shards (bounded per shard
    /// at `capacity / shards`, minimum one entry per shard).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity: 64,
        }
    }
}

/// Counter snapshot taken by [`PlanCache::stats`]. Counters are
/// monotone; one of `hits`/`misses` is incremented per resolved lookup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a Ready entry (confirm checksum matched).
    pub hits: u64,
    /// Lookups that required a build (own or joined).
    pub misses: u64,
    /// Builder invocations (single-flight keeps this below `misses`
    /// under concurrency).
    pub builds: u64,
    /// Misses resolved by joining another thread's in-flight build.
    pub joined_builds: u64,
    /// Ready entries evicted by the cost-aware capacity bound.
    pub evictions: u64,
    /// Fingerprint matches rejected by the confirm checksum — each one
    /// is a would-have-been wrong-plan reuse the secondary hash caught.
    pub collisions: u64,
    /// Refined plans published over an incumbent via
    /// [`PlanCache::swap`].
    pub swaps: u64,
}

impl CacheStats {
    /// Total resolved lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// `hits / lookups` (1.0 for an idle cache, so repeat-traffic gates
    /// read naturally).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A cached verified plan plus the evidence needed to reuse it safely.
struct Entry<T: Scalar> {
    plan: Arc<VerifiedPlan<T>>,
    /// [`confirm_row_ptr`] of the matrix the plan was built against.
    confirm: u64,
    /// LRU stamp: the global tick at last use (relaxed store on hit).
    last_used: AtomicU64,
    /// Measured wall time of the build that produced this entry — the
    /// rebuild cost the eviction score protects.
    build_ns: u64,
}

/// Single-flight rendezvous: the building thread publishes here, every
/// concurrent miss for the same key blocks on `cv` until it does.
struct Flight<T: Scalar> {
    slot: Mutex<Option<Result<Arc<Entry<T>>, CacheError>>>,
    cv: Condvar,
}

impl<T: Scalar> Flight<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, result: Result<Arc<Entry<T>>, CacheError>) {
        let mut slot = self.slot.lock().unwrap();
        *slot = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<Entry<T>>, CacheError> {
        let mut slot = self.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.cv.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }
}

enum SlotState<T: Scalar> {
    Ready(Arc<Entry<T>>),
    Building(Arc<Flight<T>>),
}

/// Sharded, single-flight, LRU-bounded cache of [`VerifiedPlan`]s. See
/// the module docs for the contract.
pub struct PlanCache<T: Scalar> {
    shards: Vec<RwLock<HashMap<PlanKey, SlotState<T>>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    joined_builds: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
    swaps: AtomicU64,
}

impl<T: Scalar> PlanCache<T> {
    /// An empty cache sized by `config` (shards and capacity clamped to
    /// at least 1).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard_capacity: (config.capacity.max(1) / shards).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            joined_builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// The plan for `(a, config)`: a confirmed hit when cached, else a
    /// single-flight `build()`. The builder runs outside every cache
    /// lock; its error (if any) is delivered to every waiter of the
    /// flight.
    pub fn get_or_build(
        &self,
        a: &CsrMatrix<T>,
        config: &PlanConfig,
        build: impl FnOnce() -> Result<VerifiedPlan<T>, CacheError>,
    ) -> Result<Arc<VerifiedPlan<T>>, CacheError> {
        let key = (PatternFingerprint::of(a), config.cache_key());
        let confirm = confirm_row_ptr(a.row_ptr());
        self.get_or_build_keyed(key, confirm, build)
    }

    /// [`get_or_build`](Self::get_or_build) with the key and confirm
    /// checksum precomputed. Public so the forged-collision regression
    /// test can probe the confirm layer directly: two structurally
    /// different matrices that (adversarially) share a full `PlanKey`
    /// must still never share a plan.
    pub fn get_or_build_keyed(
        &self,
        key: PlanKey,
        confirm: u64,
        build: impl FnOnce() -> Result<VerifiedPlan<T>, CacheError>,
    ) -> Result<Arc<VerifiedPlan<T>>, CacheError> {
        let mut build = Some(build);
        let shard = &self.shards[self.shard_index(&key)];
        loop {
            // Fast path: shared lock, relaxed LRU stamp, no writes.
            {
                let map = shard.read().unwrap();
                if let Some(SlotState::Ready(e)) = map.get(&key) {
                    if e.confirm == confirm {
                        self.touch(e);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::clone(&e.plan));
                    }
                    // Confirm mismatch: fall through to the slow path,
                    // which replaces the entry under the write lock.
                }
            }

            enum Action<T: Scalar> {
                Build(Arc<Flight<T>>),
                Join(Arc<Flight<T>>),
            }
            let action = {
                let mut map = shard.write().unwrap();
                match map.get(&key) {
                    Some(SlotState::Ready(e)) if e.confirm == confirm => {
                        // Raced another thread's insert between the two
                        // locks — a hit after all.
                        self.touch(e);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::clone(&e.plan));
                    }
                    Some(SlotState::Ready(_)) => {
                        // Fingerprint collision caught by the confirm
                        // checksum: never reuse; rebuild for the probing
                        // matrix (the slot is replaced, not shared).
                        self.collisions.fetch_add(1, Ordering::Relaxed);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::new(Flight::new());
                        map.insert(key, SlotState::Building(Arc::clone(&flight)));
                        Action::Build(flight)
                    }
                    Some(SlotState::Building(f)) => Action::Join(Arc::clone(f)),
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::new(Flight::new());
                        map.insert(key, SlotState::Building(Arc::clone(&flight)));
                        Action::Build(flight)
                    }
                }
            };

            match action {
                Action::Build(flight) => {
                    let builder = build.take().expect("builder runs at most once");
                    self.builds.fetch_add(1, Ordering::Relaxed);
                    let started = std::time::Instant::now();
                    let result = builder();
                    let build_ns = started.elapsed().as_nanos() as u64;
                    let mut map = shard.write().unwrap();
                    return match result {
                        Ok(plan) => {
                            let entry = Arc::new(Entry {
                                plan: Arc::new(plan),
                                confirm,
                                last_used: AtomicU64::new(self.next_tick()),
                                build_ns,
                            });
                            map.insert(key, SlotState::Ready(Arc::clone(&entry)));
                            self.evict_over_capacity(&mut map, &key);
                            drop(map);
                            flight.resolve(Ok(Arc::clone(&entry)));
                            Ok(Arc::clone(&entry.plan))
                        }
                        Err(e) => {
                            // Failed builds leave no tombstone: the next
                            // lookup retries from scratch.
                            map.remove(&key);
                            drop(map);
                            flight.resolve(Err(e.clone()));
                            Err(e)
                        }
                    };
                }
                Action::Join(flight) => {
                    match flight.wait() {
                        Ok(e) if e.confirm == confirm => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            self.joined_builds.fetch_add(1, Ordering::Relaxed);
                            self.touch(&e);
                            return Ok(Arc::clone(&e.plan));
                        }
                        Ok(_) => {
                            // Joined a build for a colliding (different)
                            // structure: loop — the Ready slot's confirm
                            // mismatch routes us to a fresh build.
                            self.collisions.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Atomically publish a refined `plan` over the slot at `key`: the
    /// refinement layer's swap point. Future lookups for `key` with the
    /// same `confirm` checksum receive `plan`; executes already running
    /// on the incumbent hold their own `Arc` and finish undisturbed.
    ///
    /// The caller must guarantee `plan` is verified **for the same
    /// matrix structure** the slot serves — same fingerprint (the first
    /// half of `key`) and same `confirm` checksum — which is what makes
    /// the swap response-invariant: both sides write bit-identical
    /// outputs for every input. `build_ns` is the measured cost of
    /// producing the replacement (it becomes the entry's rebuild cost
    /// for eviction scoring). The plan's telemetry is reset so the
    /// replacement earns its own execute history.
    ///
    /// Returns `false` without publishing when the slot currently holds
    /// an in-flight build (never race a builder; the refiner retries on
    /// its next pass). Publishes and returns `true` when the slot is
    /// Ready or empty.
    pub fn swap(
        &self,
        key: PlanKey,
        confirm: u64,
        build_ns: u64,
        plan: Arc<VerifiedPlan<T>>,
    ) -> bool {
        debug_assert_eq!(
            plan.fingerprint(),
            &key.0,
            "swapped plan must match the slot's pattern"
        );
        let shard = &self.shards[self.shard_index(&key)];
        let mut map = shard.write().unwrap();
        if let Some(SlotState::Building(_)) = map.get(&key) {
            return false;
        }
        plan.telemetry().reset_measurements();
        let entry = Arc::new(Entry {
            plan,
            confirm,
            last_used: AtomicU64::new(self.next_tick()),
            build_ns,
        });
        map.insert(key, SlotState::Ready(entry));
        self.evict_over_capacity(&mut map, &key);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Visit every Ready entry as `(key, confirm, plan)` — the
    /// refinement layer's scan surface. Shards are visited under their
    /// read lock, so `f` must not call back into the cache (collect
    /// candidates, drop out of the scan, then act).
    pub fn for_each_ready(&self, mut f: impl FnMut(&PlanKey, u64, &Arc<VerifiedPlan<T>>)) {
        for shard in &self.shards {
            let map = shard.read().unwrap();
            for (k, v) in map.iter() {
                if let SlotState::Ready(e) = v {
                    f(k, e.confirm, &e.plan);
                }
            }
        }
    }

    /// Counter snapshot (relaxed loads; exact once concurrent lookups
    /// quiesce).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            joined_builds: self.joined_builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
        }
    }

    /// Ready entries currently cached (excludes in-flight builds).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap()
                    .values()
                    .filter(|v| matches!(v, SlotState::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// No Ready entries cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_index(&self, key: &PlanKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn touch(&self, e: &Entry<T>) {
        e.last_used.store(self.next_tick(), Ordering::Relaxed);
    }

    /// Evict Ready entries until the shard is back under its capacity,
    /// by lowest **retention score** `build_ns / (age + 1)`: the score
    /// is what a tick of keeping the entry around is worth in avoided
    /// rebuild time, so the victim is the entry cheapest to reacquire
    /// per tick of disuse. Equal costs degrade to exact LRU (oldest
    /// stamp first); ties break on the older stamp, so eviction is
    /// deterministic. `keep` (the just-inserted key) is exempt so an
    /// insert can never evict itself.
    fn evict_over_capacity(&self, map: &mut HashMap<PlanKey, SlotState<T>>, keep: &PlanKey) {
        loop {
            let ready = map
                .iter()
                .filter(|(_, v)| matches!(v, SlotState::Ready(_)))
                .count();
            if ready <= self.per_shard_capacity {
                return;
            }
            let now = self.tick.load(Ordering::Relaxed);
            let victim = map
                .iter()
                .filter_map(|(k, v)| match v {
                    SlotState::Ready(e) if k != keep => {
                        let stamp = e.last_used.load(Ordering::Relaxed);
                        let age = now.saturating_sub(stamp);
                        let score = e.build_ns as f64 / (age + 1) as f64;
                        Some((*k, score, stamp))
                    }
                    _ => None,
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)))
                .map(|(k, _, _)| k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Only the just-inserted entry remains: capacity 1 per
                // shard holds it.
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_autotune::{
        BinningScheme, KernelId, NativeCpuBackend, PlanConfig, SpmvPlan, Strategy,
    };
    use spmv_sparse::gen;
    use std::sync::atomic::AtomicUsize;

    fn compile(a: &CsrMatrix<f64>) -> Result<VerifiedPlan<f64>, CacheError> {
        let strategy = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        };
        SpmvPlan::compile_with(
            a,
            strategy,
            Box::new(NativeCpuBackend::new()),
            PlanConfig::default(),
        )
        .verify(a)
        .map_err(|e| CacheError::Build(e.to_string()))
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = PlanCache::new(CacheConfig::default());
        let a = gen::random_uniform::<f64>(300, 300, 1, 5, 1);
        let cfg = PlanConfig::default();
        let p1 = cache.get_or_build(&a, &cfg, || compile(&a)).unwrap();
        let p2 = cache.get_or_build(&a, &cfg, || compile(&a)).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.builds), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_config_is_a_different_entry() {
        let cache = PlanCache::new(CacheConfig::default());
        let a = gen::random_uniform::<f64>(300, 300, 1, 5, 1);
        let cfg = PlanConfig::default();
        let packed_off = PlanConfig { pack: false, ..cfg };
        let p1 = cache.get_or_build(&a, &cfg, || compile(&a)).unwrap();
        let p2 = cache.get_or_build(&a, &packed_off, || compile(&a)).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_misses_build_once() {
        let cache = Arc::new(PlanCache::new(CacheConfig::default()));
        let a = Arc::new(gen::random_uniform::<f64>(500, 500, 2, 8, 3));
        let cfg = PlanConfig::default();
        let built = Arc::new(AtomicUsize::new(0));
        let plans: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let a = Arc::clone(&a);
                    let built = Arc::clone(&built);
                    s.spawn(move || {
                        cache
                            .get_or_build(&a, &cfg, || {
                                built.fetch_add(1, Ordering::SeqCst);
                                compile(&a)
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(built.load(Ordering::SeqCst), 1, "single-flight violated");
        assert!(plans.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let s = cache.stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.lookups(), 8);
    }

    /// Build with the measured cost pinned well above compile noise, so
    /// the cost-aware eviction score degrades to exact LRU between
    /// entries (equal costs ⇒ oldest stamp loses) and the test stays
    /// deterministic on a loaded runner.
    fn compile_flat_cost(a: &CsrMatrix<f64>) -> Result<VerifiedPlan<f64>, CacheError> {
        std::thread::sleep(std::time::Duration::from_millis(20));
        compile(a)
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
        });
        let cfg = PlanConfig::default();
        let mats: Vec<_> = (1..=3)
            .map(|seed| gen::random_uniform::<f64>(200 + seed, 200, 1, 4, seed as u64))
            .collect();
        cache
            .get_or_build(&mats[0], &cfg, || compile_flat_cost(&mats[0]))
            .unwrap();
        cache
            .get_or_build(&mats[1], &cfg, || compile_flat_cost(&mats[1]))
            .unwrap();
        // Touch matrix 0 so matrix 1 is the LRU victim.
        cache
            .get_or_build(&mats[0], &cfg, || compile_flat_cost(&mats[0]))
            .unwrap();
        cache
            .get_or_build(&mats[2], &cfg, || compile_flat_cost(&mats[2]))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Matrix 0 survived (hit); matrix 1 was evicted (miss + build).
        let before = cache.stats().builds;
        cache
            .get_or_build(&mats[0], &cfg, || compile(&mats[0]))
            .unwrap();
        assert_eq!(cache.stats().builds, before);
        cache
            .get_or_build(&mats[1], &cfg, || compile(&mats[1]))
            .unwrap();
        assert_eq!(cache.stats().builds, before + 1);
    }

    #[test]
    fn build_errors_reach_the_caller_and_leave_no_tombstone() {
        let cache = PlanCache::new(CacheConfig::default());
        let a = gen::random_uniform::<f64>(100, 100, 1, 3, 9);
        let cfg = PlanConfig::default();
        let err = cache
            .get_or_build(&a, &cfg, || Err(CacheError::Build("boom".into())))
            .unwrap_err();
        assert_eq!(err, CacheError::Build("boom".into()));
        assert_eq!(cache.len(), 0);
        // The next lookup retries and can succeed.
        cache.get_or_build(&a, &cfg, || compile(&a)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    /// The satellite regression test: FNV-1a row-pointer collisions are
    /// *forgeable*, and the confirm checksum is what stops a forged (or
    /// astronomically unlucky) collision from reusing the wrong plan.
    #[test]
    fn forged_fnv_collision_cannot_reuse_a_plan() {
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let fnv = |xs: &[u64]| xs.iter().fold(BASIS, |h, &x| (h ^ x).wrapping_mul(PRIME));
        // Forge two distinct 4-element "row pointer" arrays with equal
        // FNV-1a: fix positions 0 and 3, pick a1 != b1, solve for b2.
        // One multiply-xor step is a bijection, so the construction is
        // exact, not probabilistic.
        let (a1, a2, b1) = (17u64, 29u64, 40_000u64);
        // h after absorbing position 0 (row_ptr[0] is always 0, and
        // `x ^ 0 == x`).
        let h1 = BASIS.wrapping_mul(PRIME);
        let b2 = a2 ^ (h1 ^ a1).wrapping_mul(PRIME) ^ (h1 ^ b1).wrapping_mul(PRIME);
        let forged_a = [0u64, a1, a2, 1000];
        let forged_b = [0u64, b1, b2, 1000];
        assert_ne!(forged_a, forged_b);
        assert_eq!(fnv(&forged_a), fnv(&forged_b), "forgery must collide");
        // The independent confirm checksum separates them.
        let as_usize = |xs: &[u64]| xs.iter().map(|&x| x as usize).collect::<Vec<_>>();
        let (ca, cb) = (
            confirm_row_ptr(&as_usize(&forged_a)),
            confirm_row_ptr(&as_usize(&forged_b)),
        );
        assert_ne!(ca, cb, "confirm checksum must separate the forgery");

        // Cache layer: two structurally different matrices whose full
        // PlanKey (adversarially) coincides must never share a plan.
        // The keyed entry point injects the forged situation — a real
        // `CsrMatrix` pair with colliding *valid* row pointers cannot be
        // constructed, which is part of the defense in depth, but the
        // cache must not rely on it.
        let cache = PlanCache::<f64>::new(CacheConfig::default());
        let ma = gen::random_uniform::<f64>(120, 120, 1, 4, 5);
        let mb = gen::random_uniform::<f64>(120, 120, 2, 6, 6);
        assert_ne!(
            PatternFingerprint::of(&ma),
            PatternFingerprint::of(&mb),
            "distinct test matrices"
        );
        let shared_key = (
            PatternFingerprint::of(&ma),
            PlanConfig::default().cache_key(),
        );
        let p_a = cache
            .get_or_build_keyed(shared_key, ca, || compile(&ma))
            .unwrap();
        let p_b = cache
            .get_or_build_keyed(shared_key, cb, || compile(&mb))
            .unwrap();
        assert!(
            !Arc::ptr_eq(&p_a, &p_b),
            "colliding key reused the wrong plan"
        );
        assert_eq!(
            p_b.fingerprint(),
            &PatternFingerprint::of(&mb),
            "the second lookup must get a plan for its own matrix"
        );
        assert_eq!(cache.stats().collisions, 1);
        // And the replacement is a normal entry: same confirm hits now.
        let p_b2 = cache
            .get_or_build_keyed(shared_key, cb, || compile(&mb))
            .unwrap();
        assert!(Arc::ptr_eq(&p_b, &p_b2));
    }

    /// The cost-aware satellite regression: an expensive-to-rebuild plan
    /// must survive a scan of cheap one-shot plans that would have
    /// flushed it under pure LRU.
    #[test]
    fn expensive_plan_survives_a_scan_of_cheap_one_shots() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
        });
        let cfg = PlanConfig::default();
        let pricey = gen::random_uniform::<f64>(400, 400, 2, 6, 42);
        // ~100 ms measured build vs sub-ms scans: orders of magnitude,
        // immune to compile-time noise.
        cache
            .get_or_build(&pricey, &cfg, || {
                std::thread::sleep(std::time::Duration::from_millis(100));
                compile(&pricey)
            })
            .unwrap();
        // A scan of cheap plans, each requested exactly once and never
        // again. Pure LRU would evict the (now oldest) expensive entry
        // on the second scan insert; cost-aware eviction must keep it
        // and churn the cheap entries among themselves.
        let scan: Vec<_> = (0..5)
            .map(|seed| gen::random_uniform::<f64>(60 + seed, 60, 1, 3, seed as u64))
            .collect();
        for m in &scan {
            cache.get_or_build(m, &cfg, || compile(m)).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().evictions >= 4);
        // The expensive plan is still served from cache: no new build.
        let before = cache.stats().builds;
        cache
            .get_or_build(&pricey, &cfg, || compile(&pricey))
            .unwrap();
        assert_eq!(
            cache.stats().builds,
            before,
            "expensive plan was evicted by the cheap scan"
        );
    }

    #[test]
    fn swap_replaces_the_served_plan_without_a_rebuild() {
        let cache = PlanCache::new(CacheConfig::default());
        let a = gen::random_uniform::<f64>(300, 300, 1, 5, 7);
        let incumbent_cfg = PlanConfig {
            pack: false,
            cache_block: false,
            specialize: false,
            ..PlanConfig::default()
        };
        let p1 = cache
            .get_or_build(&a, &incumbent_cfg, || {
                let strategy = Strategy {
                    binning: BinningScheme::Coarse { u: 10 },
                    kernels: vec![KernelId::Serial; 8],
                };
                SpmvPlan::compile_with(
                    &a,
                    strategy,
                    Box::new(NativeCpuBackend::new()),
                    incumbent_cfg,
                )
                .verify(&a)
                .map_err(|e| CacheError::Build(e.to_string()))
            })
            .unwrap();
        // Refine: a plan compiled with the gates open, published under
        // the incumbent's key.
        let refined = Arc::new(compile(&a).unwrap());
        refined.telemetry().record(1_000, 1);
        let key = (PatternFingerprint::of(&a), incumbent_cfg.cache_key());
        let confirm = confirm_row_ptr(a.row_ptr());
        assert!(cache.swap(key, confirm, 5_000, Arc::clone(&refined)));
        // Future lookups for the *original* config now get the refined
        // plan, from cache, with its telemetry freshly zeroed.
        let before = cache.stats().builds;
        let p2 = cache
            .get_or_build(&a, &incumbent_cfg, || unreachable!("must be a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&p2, &refined));
        assert!(!Arc::ptr_eq(&p2, &p1));
        assert_eq!(cache.stats().builds, before);
        assert_eq!(cache.stats().swaps, 1);
        assert_eq!(p2.telemetry().snapshot().executes, 0);
    }

    #[test]
    fn swap_refuses_to_race_an_in_flight_build() {
        let cache = PlanCache::<f64>::new(CacheConfig::default());
        let a = gen::random_uniform::<f64>(200, 200, 1, 4, 11);
        let cfg = PlanConfig::default();
        let key = (PatternFingerprint::of(&a), cfg.cache_key());
        let confirm = confirm_row_ptr(a.row_ptr());
        let refined = Arc::new(compile(&a).unwrap());
        // While a build is in flight for the key, swap must decline.
        let swapped = std::thread::scope(|s| {
            let cache = &cache;
            let in_builder = Arc::new(std::sync::Barrier::new(2));
            let release = Arc::new(std::sync::Barrier::new(2));
            let b1 = Arc::clone(&in_builder);
            let r1 = Arc::clone(&release);
            let a_ref = &a;
            s.spawn(move || {
                cache
                    .get_or_build(a_ref, &cfg, || {
                        b1.wait();
                        r1.wait();
                        compile(a_ref)
                    })
                    .unwrap();
            });
            in_builder.wait();
            let swapped = cache.swap(key, confirm, 1, Arc::clone(&refined));
            release.wait();
            swapped
        });
        assert!(!swapped, "swap must not stomp an in-flight build");
        assert_eq!(cache.stats().swaps, 0);
    }

    #[test]
    fn for_each_ready_scans_every_ready_entry() {
        let cache = PlanCache::new(CacheConfig::default());
        let cfg = PlanConfig::default();
        let mats: Vec<_> = (1..=3)
            .map(|seed| gen::random_uniform::<f64>(150 + seed, 150, 1, 4, seed as u64))
            .collect();
        for m in &mats {
            cache.get_or_build(m, &cfg, || compile(m)).unwrap();
        }
        let mut seen = Vec::new();
        cache.for_each_ready(|key, confirm, plan| {
            assert_eq!(plan.fingerprint(), &key.0);
            seen.push((key.0, *plan.config(), confirm));
        });
        assert_eq!(seen.len(), 3);
        for m in &mats {
            let fp = PatternFingerprint::of(m);
            let confirm = confirm_row_ptr(m.row_ptr());
            assert!(seen.iter().any(|(f, _, c)| *f == fp && *c == confirm));
        }
    }
}
