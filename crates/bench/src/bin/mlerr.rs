//! §III-C — the two-stage model's error rates.
//!
//! The paper trains on >2000 UF matrices (75%/25% split) and reports ≈5%
//! stage-1 (binning scheme) and up to 15% stage-2 (kernel) test error.
//! Regenerate with `cargo run --release -p spmv-bench --bin mlerr`
//! (`SPMV_CORPUS_COUNT` sets the corpus size; use 2000 to match the
//! paper's protocol exactly — takes a while on one core).

use spmv_autotune::kernels::ALL_KERNELS;
use spmv_autotune::prelude::*;
use spmv_bench::{train_default_model, Table};

fn main() {
    let device = GpuDevice::kaveri();
    let (model, report) = train_default_model(&device);

    println!("== Two-stage model quality (paper §III-C) ==\n");
    let mut t = Table::new(vec!["stage", "train error %", "test error %", "paper %"]);
    t.row(vec![
        "1: binning scheme (U)".to_string(),
        format!("{:.1}", report.stage1_train_error * 100.0),
        format!("{:.1}", report.stage1_error() * 100.0),
        "~5".to_string(),
    ]);
    t.row(vec![
        "2: kernel per bin".to_string(),
        format!("{:.1}", report.stage2_train_error * 100.0),
        format!("{:.1}", report.stage2_error() * 100.0),
        "up to 15".to_string(),
    ]);
    t.print();
    println!(
        "\ncorpus: {} matrices; stage-2 dataset: {} (matrix, bin) examples",
        report.n_matrices, report.stage2_examples
    );

    println!("\nstage-2 per-kernel recall on the test set:");
    let mut t = Table::new(vec!["kernel", "recall %", "precision %"]);
    for k in ALL_KERNELS {
        let i = k.index();
        t.row(vec![
            k.label(),
            format!("{:.0}", report.stage2_cm.recall(i) * 100.0),
            format!("{:.0}", report.stage2_cm.precision(i) * 100.0),
        ]);
    }
    t.print();

    println!("\nexample stage-1 rules (C5.0-style rule-set):");
    for line in model.stage1.dump().lines().take(8) {
        println!("  {line}");
    }
    println!("\nexample stage-2 rules:");
    for line in model.stage2.dump().lines().take(8) {
        println!("  {line}");
    }
}
