//! Criterion microbench: simulated-kernel evaluation cost per kernel.
//!
//! This measures the *simulator's* throughput (how fast a kernel's trace
//! is produced and priced), which bounds how fast the oracle tuner and
//! the training pipeline run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_autotune::kernels::{run_kernel, ALL_KERNELS};
use spmv_autotune::prelude::*;
use spmv_sparse::gen;

fn bench_kernels(c: &mut Criterion) {
    let device = GpuDevice::kaveri();
    let a = gen::random_uniform::<f32>(4_000, 8_000, 16, 48, 1);
    let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
    let v = vec![1.0f32; a.n_cols()];
    let mut group = c.benchmark_group("sim_kernel");
    group.sample_size(20);
    for k in ALL_KERNELS {
        group.bench_with_input(BenchmarkId::from_parameter(k.label()), &k, |b, &k| {
            let mut u = vec![0.0f32; a.n_rows()];
            b.iter(|| run_kernel(&device, &a, &rows, k, &v, &mut u))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
