//! Re-exports for examples and integration tests.
pub use spmv_autotune as autotune;
pub use spmv_gpusim as gpusim;
pub use spmv_ml as ml;
pub use spmv_parallel as parallel;
pub use spmv_sparse as sparse;
