//! `Kernel-Serial` (Algorithm 3): every work-item walks one row
//! sequentially.
//!
//! Launched with `⌈rows/256⌉` work-groups of 256 work-items. The trace
//! captures the two effects that make this kernel collapse on long rows:
//!
//! * every loop iteration issues gathers whose lane addresses sit in
//!   *different* rows, so coalescing degrades with row length;
//! * a wavefront iterates as long as its **longest** row, so mixing row
//!   lengths wastes lanes (exactly the imbalance binning removes).

use super::WORKGROUP_SIZE;
use spmv_gpusim::engine::price_workgroups;
use spmv_gpusim::trace::WorkgroupCost;
use spmv_gpusim::{GpuDevice, LaunchStats, LaunchTracer, Region};
use spmv_sparse::{CsrMatrix, Scalar};

pub(super) fn run<T: Scalar>(
    device: &GpuDevice,
    a: &CsrMatrix<T>,
    rows: &[u32],
    v: &[T],
    u: &mut [T],
) -> LaunchStats {
    let mut workgroups: Vec<WorkgroupCost> =
        Vec::with_capacity(rows.len().div_ceil(WORKGROUP_SIZE));
    let tracer = LaunchTracer::new(device);
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();

    for (wg_idx, wg_rows) in rows.chunks(WORKGROUP_SIZE).enumerate() {
        let mut wg = tracer.workgroup(0);
        for (wave_idx, wave_rows) in wg_rows.chunks(device.wavefront).enumerate() {
            let mut w = wg.wave();
            let bin_base = wg_idx * WORKGROUP_SIZE + wave_idx * device.wavefront;

            // rid = bin[binId][tid]: contiguous read of this wave's slice
            // of the bin's row list.
            w.read_contiguous(Region::BinRows, bin_base, wave_rows.len(), 4);

            // rowStart/rowEnd: two gathers over rowPtr (4-byte ints on
            // the device).
            for pass in 0..2usize {
                w.begin_access();
                for &rid in wave_rows {
                    w.lane_addr(Region::RowPtr, rid as usize + pass, 4);
                }
                w.commit_read();
            }
            w.alu(2); // sum = 0, loop setup

            // Functional state: one accumulator per lane.
            let spans: Vec<(usize, usize)> = wave_rows
                .iter()
                .map(|&rid| (row_ptr[rid as usize], row_ptr[rid as usize + 1]))
                .collect();
            let mut sums: Vec<T> = vec![T::ZERO; wave_rows.len()];
            let max_len = spans.iter().map(|&(s, e)| e - s).max().unwrap_or(0);

            for t in 0..max_len {
                // colIdx gather for the active lanes.
                w.begin_access();
                for (lane, &(s, e)) in spans.iter().enumerate() {
                    if s + t < e {
                        w.lane_addr(Region::ColIdx, s + t, 4);
                        let _ = lane;
                    }
                }
                w.commit_read();
                // v gather: addresses are the columns just read.
                w.begin_access();
                for &(s, e) in &spans {
                    if s + t < e {
                        w.lane_addr(Region::VecIn, col_idx[s + t] as usize, T::BYTES);
                    }
                }
                w.commit_read();
                // val gather.
                w.begin_access();
                for (lane, &(s, e)) in spans.iter().enumerate() {
                    if s + t < e {
                        w.lane_addr(Region::Val, s + t, T::BYTES);
                        // Functional multiply-accumulate.
                        let col = col_idx[s + t] as usize;
                        sums[lane] = values[s + t].mul_add_(v[col], sums[lane]);
                    }
                }
                w.commit_read();
                w.alu(2); // mad + loop bookkeeping
            }

            // u[rid] = sum — scattered by rid, but rids are ascending so
            // usually near-contiguous.
            w.begin_access();
            for (lane, &rid) in wave_rows.iter().enumerate() {
                w.lane_addr(Region::VecOut, rid as usize, T::BYTES);
                u[rid as usize] = sums[lane];
            }
            w.commit_write();

            wg.push_wave(w.finish());
        }
        workgroups.push(wg.finish());
    }
    if workgroups.is_empty() {
        return LaunchStats::default();
    }
    price_workgroups(device, &workgroups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;
    use spmv_sparse::gen::mixture::RowRegime;

    #[test]
    fn divergence_makes_mixed_waves_expensive() {
        let device = GpuDevice::kaveri();
        // Same total NNZ, same rows: (a) every row 16 NNZ vs (b) 1-in-64
        // rows with 1024 NNZ  and the rest with ~0 — the skewed wave
        // iterates 1024 times with one active lane.
        let uniform = gen::random_uniform::<f32>(4096, 8192, 16, 16, 1);
        let skewed = gen::mixture::<f32>(
            4096,
            8192,
            &[
                RowRegime::new(1, 1, 63.0 / 64.0),
                RowRegime::new(961, 961, 1.0 / 64.0),
            ],
            true,
            2,
        );
        let cost = |a: &CsrMatrix<f32>| {
            let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
            let v = vec![1.0f32; a.n_cols()];
            let mut u = vec![0.0f32; a.n_rows()];
            run(&device, a, &rows, &v, &mut u)
        };
        let cu = cost(&uniform);
        let cs = cost(&skewed);
        // Both workloads move similar bytes, so the uniform case sits on
        // the DRAM roofline; the skewed one pays the serialised
        // max-row-length iterations on top (compute/latency-bound).
        assert!(
            cs.cycles > 2.0 * cu.cycles,
            "skewed {} should far exceed uniform {} at similar NNZ ({} vs {})",
            cs.cycles,
            cu.cycles,
            skewed.nnz(),
            uniform.nnz()
        );
        assert!(
            !cs.bandwidth_bound,
            "the divergent launch must be latency-bound, not bandwidth-bound"
        );
    }

    #[test]
    fn cost_scales_with_row_length() {
        let device = GpuDevice::kaveri();
        let short = gen::random_uniform::<f32>(1024, 65_536, 8, 8, 3);
        let long = gen::random_uniform::<f32>(1024, 65_536, 256, 256, 3);
        let cost = |a: &CsrMatrix<f32>| {
            let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
            let v = vec![1.0f32; a.n_cols()];
            let mut u = vec![0.0f32; a.n_rows()];
            run(&device, a, &rows, &v, &mut u).cycles
        };
        assert!(cost(&long) > 8.0 * cost(&short));
    }
}
