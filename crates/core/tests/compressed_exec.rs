//! Bandwidth-tier execution suite: delta-compressed column indices and
//! cache-blocked scatter execution must be **bit-for-bit** identical to
//! the sequential CSR reference across index widths, forced-fallback
//! wide-span rows, value-only refreshes after `sort_rows`, and
//! scatter-heavy generators — and the verifier must reject tampered
//! compressed/blocked payloads.

use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::{CooMatrix, CsrMatrix, IndexKind};

fn native_plan(a: &CsrMatrix<f64>, strategy: Strategy, config: PlanConfig) -> SpmvPlan<f64> {
    SpmvPlan::compile_with(a, strategy, Box::new(NativeCpuBackend::new()), config)
}

fn coarse(kernel: KernelId) -> Strategy {
    Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![kernel; 8],
    }
}

fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed + 3) % 17) as f64) - 8.0)
        .collect()
}

/// Every index-width policy produces bit-identical results, the realised
/// width never drops below the policy floor, and every plan survives
/// `VerifiedPlan` promotion (which re-proves the compressed-index
/// bounds).
#[test]
fn fuzz_every_index_width_bit_identical_to_reference() {
    let policies = [
        IndexPolicy::Auto,
        IndexPolicy::Fixed(IndexKind::U8),
        IndexPolicy::Fixed(IndexKind::U16),
        IndexPolicy::Fixed(IndexKind::U32),
    ];
    for seed in 0..8u64 {
        let m = 150 + (seed as usize * 37) % 400;
        let a = gen::mixture::<f64>(
            m,
            m + 40,
            &[
                RowRegime::new(1, 3, 0.4),
                RowRegime::new(5, 20, 0.4),
                RowRegime::new(30, 80, 0.2),
            ],
            true,
            seed,
        );
        let v = probe_vector(a.n_cols(), seed);
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for policy in policies {
            let config = PlanConfig {
                index: policy,
                ..PlanConfig::default()
            };
            let plan = native_plan(&a, coarse(KernelId::Serial), config);
            for d in plan.dispatch() {
                if let BinFormat::PackedSell { index, .. } = d.format {
                    assert!(
                        index >= policy.floor(),
                        "seed {seed} {policy:?}: bin {} realised {index} below floor",
                        d.bin_id
                    );
                }
            }
            let verified = plan.verify(&a).expect("compressed plan must verify");
            let mut u = vec![f64::NAN; a.n_rows()];
            verified.execute_unchecked(&a, &v, &mut u).unwrap();
            assert_eq!(u, reference, "seed {seed} {policy:?} diverges");
        }
    }
}

/// Lane spreads wider than a u8/u16 delta can express force the
/// pack-time proof to widen the realised lanes — never to produce wrong
/// results. Adjacent rows 66_000 columns apart defeat both anchor modes
/// (chunk span and per-column lane spread both exceed 65_535 for any
/// chunk height ≥ 2), so Auto must realise u32 on that bin.
#[test]
fn wide_span_rows_widen_lanes_not_results() {
    let mut coo = CooMatrix::<f64>::new(8, 463_001);
    for r in 0..8usize {
        coo.push(r, r * 66_000, 1.0 + r as f64);
        coo.push(r, r * 66_000 + 1, -1.0 - r as f64);
    }
    let a: CsrMatrix<f64> = coo.to_csr();
    let config = PlanConfig {
        // Force compression past the width gate and keep the scatter
        // gate out of the way: this test is about the span proof.
        index: IndexPolicy::Fixed(IndexKind::U8),
        cache_block: false,
        ..PlanConfig::default()
    };
    let plan = native_plan(&a, Strategy::single_kernel(KernelId::Serial), config);
    let mut saw_u32 = false;
    for d in plan.dispatch() {
        if let BinFormat::PackedSell { index, .. } = d.format {
            assert_eq!(
                index,
                IndexKind::U32,
                "lane spread 66_000 cannot fit {index}"
            );
            saw_u32 = true;
        }
    }
    assert!(saw_u32, "wide-span bin did not pack at all");
    let v = probe_vector(a.n_cols(), 1);
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let mut u = vec![f64::NAN; a.n_rows()];
    plan.verify(&a).unwrap().execute(&a, &v, &mut u).unwrap();
    assert_eq!(u, reference);
}

/// `sort_rows` permutes entries *within* rows (values travel with their
/// columns), bumps the values id, and leaves the row pointer — hence the
/// fingerprint and every chunk's column *set* — unchanged. The slab
/// refresh must re-derive deltas against the unchanged chunk bases and
/// keep matching the (now sorted) reference bit-for-bit.
#[test]
fn value_only_refresh_after_sort_rows_stays_bit_identical() {
    // Deliberately unsorted rows: 40 rows of 4 entries in descending
    // column order.
    let m = 40usize;
    let n = 200usize;
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in 0..m {
        for j in 0..4u32 {
            col_idx.push(((r as u32 * 5) + 12 - 3 * j) % n as u32);
            values.push((r * 4 + j as usize) as f64 * 0.25 - 3.0);
        }
        row_ptr.push(col_idx.len());
    }
    let mut a = CsrMatrix::from_parts(m, n, row_ptr, col_idx, values).unwrap();
    assert!(!a.rows_sorted(), "test premise: rows start unsorted");
    // Force narrow lanes so the refresh re-proves real delta windows.
    let config = PlanConfig {
        index: IndexPolicy::Fixed(IndexKind::U8),
        ..PlanConfig::default()
    };
    let plan = native_plan(&a, coarse(KernelId::Serial), config);
    assert!(plan.packed_bins() >= 1, "uniform 4-NNZ rows must pack");
    let v = probe_vector(n, 7);
    let fp_before = *plan.fingerprint();

    let mut u = vec![f64::NAN; m];
    plan.execute(&a, &v, &mut u).unwrap();
    assert_eq!(u, a.spmv_seq_alloc(&v).unwrap(), "pre-sort execution");

    a.sort_rows();
    assert_eq!(
        fp_before,
        PatternFingerprint::of(&a),
        "sort_rows must not change the pattern fingerprint"
    );
    let mut u2 = vec![f64::NAN; m];
    plan.execute(&a, &v, &mut u2).unwrap();
    assert_eq!(u2, a.spmv_seq_alloc(&v).unwrap(), "post-sort refresh");

    // A further value-only update through the same plan.
    a.fill_values_with(|k| ((k % 11) as f64) - 5.0);
    let mut u3 = vec![f64::NAN; m];
    plan.execute(&a, &v, &mut u3).unwrap();
    assert_eq!(u3, a.spmv_seq_alloc(&v).unwrap(), "value refresh");
}

/// Cache-blocked execution is a schedule, not a semantic change: on
/// scatter-heavy rmat/powerlaw matrices with the gate forced by a tiny
/// `l2_bytes` budget, the blocked plan is bit-identical to the unblocked
/// plan and to the sequential reference, and verification covers the
/// blocked payloads.
#[test]
fn cache_blocked_equals_unblocked_on_scatter_heavy_matrices() {
    let matrices: Vec<(&str, CsrMatrix<f64>)> = vec![
        ("rmat", gen::rmat(10, 8, 0.57, 0.19, 0.19, 5)),
        ("powerlaw", gen::powerlaw(800, 4, 120, 2.0, 9)),
    ];
    for (name, a) in &matrices {
        assert!(a.rows_sorted(), "{name}: generators produce sorted rows");
        // Tiny budget: strips of 32 f64 columns, so any matrix wider than
        // 32 columns is eligible and scatter-heavy bins get blocked.
        let blocked_cfg = PlanConfig {
            pack: false,
            l2_bytes: 32 * std::mem::size_of::<f64>(),
            scatter_lines_per_row: 2.0,
            ..PlanConfig::default()
        };
        let plain_cfg = PlanConfig {
            pack: false,
            cache_block: false,
            ..PlanConfig::default()
        };
        let blocked = native_plan(a, coarse(KernelId::Subvector(8)), blocked_cfg);
        let plain = native_plan(a, coarse(KernelId::Subvector(8)), plain_cfg);
        assert!(
            blocked.blocked_bins() >= 1,
            "{name}: forced gate produced no blocked bins"
        );
        assert_eq!(plain.blocked_bins(), 0);
        let v = probe_vector(a.n_cols(), 13);
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut ub = vec![f64::NAN; a.n_rows()];
        let mut up = vec![f64::NAN; a.n_rows()];
        blocked
            .verify(a)
            .expect("blocked plan must verify")
            .execute(a, &v, &mut ub)
            .unwrap();
        plain.execute(a, &v, &mut up).unwrap();
        assert_eq!(ub, reference, "{name}: blocked diverges from reference");
        assert_eq!(ub, up, "{name}: blocked diverges from unblocked");
    }
}

/// The batched (SpMM) path over blocked and compressed payloads matches
/// per-column single-vector execution bit-for-bit.
#[test]
fn batched_execution_matches_columns_for_bandwidth_payloads() {
    let a = gen::rmat::<f64>(9, 6, 0.45, 0.25, 0.2, 3);
    let config = PlanConfig {
        l2_bytes: 64 * std::mem::size_of::<f64>(),
        scatter_lines_per_row: 2.0,
        ..PlanConfig::default()
    };
    let plan = native_plan(&a, coarse(KernelId::Serial), config);
    let k = 5usize;
    let mut x = DenseBlock::zeros(a.n_cols(), k);
    x.fill_with(|i, j| ((i * 3 + j * 7) % 13) as f64 - 6.0);
    let mut y = DenseBlock::zeros(a.n_rows(), k);
    plan.execute_batch(&a, &x, &mut y).unwrap();
    for j in 0..k {
        let v = x.column(j);
        let mut u = vec![f64::NAN; a.n_rows()];
        plan.execute(&a, &v, &mut u).unwrap();
        assert_eq!(y.column(j), u, "batched column {j} diverges");
    }
}

/// `check_payloads` rejects tampered bandwidth-tier plans: a recorded
/// index width that disagrees with the payload, a blocked strip width
/// mismatch, and a zero strip width.
#[test]
fn verify_rejects_tampered_compressed_and_blocked_payloads() {
    let a = gen::random_uniform::<f64>(80, 80, 3, 5, 8);
    let rows: Vec<u32> = (0..80).collect();
    let nnz = a.nnz();
    let packed = spmv_sparse::PackedSell::from_rows(&a, &rows, 8);
    assert_eq!(packed.index_kind(), IndexKind::U8, "80 columns fit u8");
    let n_chunks = packed.n_chunks();

    // Recorded index width disagrees with the realised payload width.
    let lying = vec![BinDispatch {
        bin_id: 0,
        kernel: KernelId::Serial,
        rows: rows.clone(),
        nnz,
        format: BinFormat::PackedSell {
            chunk: 8,
            index: IndexKind::U16,
        },
    }];
    let payloads = vec![BinPayload::Packed(packed)];
    let tiles = vec![Tile {
        bin: 0,
        start: 0,
        end: n_chunks,
    }];
    match check_payloads(&a, &lying, &payloads, &tiles) {
        Err(VerifyError::PackedPayloadInvalid { detail, .. }) => {
            assert!(detail.contains("index width"), "got: {detail}")
        }
        other => panic!("expected PackedPayloadInvalid, got {other:?}"),
    }

    // Blocked payloads: strip-width mismatch and zero strips.
    let row_tiles = vec![Tile {
        bin: 0,
        start: 0,
        end: rows.len(),
    }];
    for (fmt_strip, pay_strip) in [(8usize, 4usize), (0, 0)] {
        let dispatch = vec![BinDispatch {
            bin_id: 0,
            kernel: KernelId::Serial,
            rows: rows.clone(),
            nnz,
            format: BinFormat::CacheBlockedCsr {
                strip_cols: fmt_strip,
            },
        }];
        let blocked_payloads: Vec<BinPayload<f64>> = vec![BinPayload::Blocked {
            strip_cols: pay_strip,
        }];
        assert!(
            matches!(
                check_payloads(&a, &dispatch, &blocked_payloads, &row_tiles),
                Err(VerifyError::BlockedPayloadInvalid { .. })
            ),
            "strips {fmt_strip}/{pay_strip} accepted"
        );
    }
}

/// The pack-time delta proof is anchored to the compile-time `n_cols`:
/// executing (checked or unchecked) against a column-shrunk matrix of
/// the same pattern otherwise must be rejected, never gathered
/// out-of-bounds. This is the runtime half of the spmv-lint shrink
/// guard.
#[test]
fn column_shrink_invalidates_the_plan() {
    // All columns < 100, but the matrix claims 200 columns.
    let a = gen::random_uniform::<f64>(120, 100, 2, 4, 4);
    let (rp, ci, vals) = (
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.values().to_vec(),
    );
    let wide = CsrMatrix::from_parts(120, 200, rp.clone(), ci.clone(), vals.clone()).unwrap();
    let narrow = CsrMatrix::from_parts(120, 100, rp, ci, vals).unwrap();

    let plan = native_plan(&wide, coarse(KernelId::Serial), PlanConfig::default());
    let verified = native_plan(&wide, coarse(KernelId::Serial), PlanConfig::default())
        .verify(&wide)
        .unwrap();
    let v_narrow = vec![1.0f64; 100];
    let mut u = vec![0.0f64; 120];
    assert!(
        plan.execute(&narrow, &v_narrow, &mut u).is_err(),
        "checked execute accepted a shrunk matrix"
    );
    assert!(
        verified
            .execute_unchecked(&narrow, &v_narrow, &mut u)
            .is_err(),
        "unchecked execute accepted a shrunk matrix"
    );
    assert!(
        matches!(
            native_plan(&wide, coarse(KernelId::Serial), PlanConfig::default()).verify(&narrow),
            Err(VerifyError::PatternMismatch { .. })
        ),
        "verify accepted a shrunk matrix"
    );
}

/// Traffic accounting: Auto with an exhausted cache budget (every
/// working set counts as streaming) realises narrow lanes on a low-span
/// matrix, cutting index bytes-per-nnz at least 2× under the u32 floor,
/// with identical value bytes and NNZ.
#[test]
fn traffic_stats_reflect_index_compression() {
    let a = gen::banded::<f64>(2_000, 3, 5);
    let auto = native_plan(
        &a,
        coarse(KernelId::Serial),
        PlanConfig {
            llc_bytes: 0,
            // This test pins the *packed* tier's compression ratio; the
            // banded fast path would otherwise claim this matrix first.
            specialize: false,
            ..PlanConfig::default()
        },
    );
    let fixed = native_plan(
        &a,
        coarse(KernelId::Serial),
        PlanConfig {
            index: IndexPolicy::Fixed(IndexKind::U32),
            specialize: false,
            ..PlanConfig::default()
        },
    );
    assert!(auto.packed_bins() >= 1 && fixed.packed_bins() >= 1);
    let (ta, tf) = (auto.traffic(), fixed.traffic());
    assert_eq!(ta.nnz, tf.nnz);
    assert_eq!(ta.value_bytes, tf.value_bytes);
    assert!(
        ta.index_bytes_per_nnz() * 2.0 <= tf.index_bytes_per_nnz(),
        "compression saved less than 2x: {} vs {}",
        ta.index_bytes_per_nnz(),
        tf.index_bytes_per_nnz()
    );
}

/// The SimGpu pricing model charges the reduced index stream: the same
/// strategy priced over a delta-compressed plan reads fewer modelled
/// bytes than over the u32-floored plan.
#[test]
fn sim_pricing_charges_fewer_bytes_for_compressed_indices() {
    let a = gen::banded::<f64>(3_000, 4, 2);
    let mk = |policy| {
        SpmvPlan::compile_with(
            &a,
            coarse(KernelId::Serial),
            Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
            PlanConfig {
                index: policy,
                // Classify the matrix as streaming so Auto compresses.
                llc_bytes: 0,
                // Pin the packed tier: the banded fast path would
                // otherwise claim this matrix before packing runs.
                specialize: false,
                ..PlanConfig::default()
            },
        )
    };
    let auto = mk(IndexPolicy::Auto);
    let fixed = mk(IndexPolicy::Fixed(IndexKind::U32));
    assert!(auto.packed_bins() >= 1);
    let v = vec![1.0f64; a.n_cols()];
    let mut u = vec![0.0f64; a.n_rows()];
    let ca = auto.execute(&a, &v, &mut u).unwrap();
    let cf = fixed.execute(&a, &v, &mut u).unwrap();
    let (ba, bf) = (
        ca.stats.expect("sim prices").bytes_read,
        cf.stats.expect("sim prices").bytes_read,
    );
    assert!(
        ba < bf,
        "compressed plan priced at {ba} bytes, u32 floor at {bf}"
    );
}

/// The width axis of the bottleneck gate: the same matrix under `Auto`
/// keeps full `u32` words when its working set fits the LLC budget
/// (cache-resident — decode would be pure overhead) and realises narrow
/// lanes when the budget says it streams; both plans stay bit-identical
/// to the reference.
#[test]
fn width_gate_follows_the_cache_budget() {
    let a = gen::banded::<f64>(5_000, 3, 11);
    let streamed = a.nnz() * (8 + 4) + (a.n_rows() + a.n_cols()) * 8;
    let mk = |llc_bytes| {
        native_plan(
            &a,
            coarse(KernelId::Serial),
            PlanConfig {
                llc_bytes,
                // Pin the packed tier: the banded fast path would
                // otherwise claim this matrix before packing runs.
                specialize: false,
                ..PlanConfig::default()
            },
        )
    };
    let resident = mk(streamed + 1);
    let streaming = mk(streamed - 1);
    assert!(resident.packed_bins() >= 1 && streaming.packed_bins() >= 1);
    for d in resident.dispatch() {
        if let BinFormat::PackedSell { index, .. } = d.format {
            assert_eq!(index, IndexKind::U32, "cache-resident bin compressed");
        }
    }
    let narrow = streaming
        .dispatch()
        .iter()
        .filter(
            |d| matches!(d.format, BinFormat::PackedSell { index, .. } if index < IndexKind::U32),
        )
        .count();
    assert!(
        narrow >= 1,
        "streaming-classified plan realised no narrow lanes"
    );
    assert!(streaming.traffic().index_bytes < resident.traffic().index_bytes);
    let v = probe_vector(a.n_cols(), 3);
    let reference = a.spmv_seq_alloc(&v).unwrap();
    for plan in [resident, streaming] {
        let mut u = vec![f64::NAN; a.n_rows()];
        plan.verify(&a).unwrap().execute(&a, &v, &mut u).unwrap();
        assert_eq!(u, reference);
    }
}
