//! Pattern-specialized execution suite: every kernel family of the
//! generated table (CSR, packed, dense-run, banded, row-run) must be
//! **bit-for-bit** identical to the sequential CSR reference at every
//! registered RHS width and under thread sweeps; the verifier must
//! reject tampered specialized payloads per structural proof; and the
//! format gate's documented precedence order must hold.

use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::{CooMatrix, CsrMatrix, DenseBlock};
use std::sync::Once;

/// Freeze the process-wide thread cap high enough that `with_workers(t)`
/// for every swept `t` really spawns `t` workers. Must run before any
/// kernel launch (the cap is cached on first use).
fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        if std::env::var("SPMV_NUM_THREADS").is_err() {
            std::env::set_var("SPMV_NUM_THREADS", "8");
        }
    });
}

fn native_plan_workers(
    a: &CsrMatrix<f64>,
    strategy: Strategy,
    config: PlanConfig,
    workers: usize,
) -> SpmvPlan<f64> {
    SpmvPlan::compile_with(
        a,
        strategy,
        Box::new(NativeCpuBackend::new().with_workers(workers)),
        config,
    )
}

fn coarse(kernel: KernelId) -> Strategy {
    Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![kernel; 8],
    }
}

fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed + 3) % 17) as f64) - 8.0)
        .collect()
}

/// A matrix of identical-row runs with *scattered* columns: every run of
/// `run_len` rows shares one column pattern (values differ per row), and
/// column spacing defeats dense runs and bands. The shape the row-run
/// tier exists for.
fn row_run_matrix(n_runs: usize, run_len: usize, nnz_per_row: usize) -> CsrMatrix<f64> {
    let n_rows = n_runs * run_len;
    let n_cols = 4_000;
    let mut coo = CooMatrix::<f64>::new(n_rows, n_cols);
    for run in 0..n_runs {
        let mut cols: Vec<usize> = (0..nnz_per_row)
            .map(|j| (j * 331 + run * 97) % n_cols)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for k in 0..run_len {
            let r = run * run_len + k;
            for (j, &c) in cols.iter().enumerate() {
                coo.push(r, c, 1.0 + (r * 7 + j * 3) as f64 * 0.25);
            }
        }
    }
    coo.to_csr()
}

/// One matrix per kernel family, with the config that routes the gate
/// there, plus the format-pattern the plan must realise.
fn family_cases() -> Vec<(&'static str, CsrMatrix<f64>, PlanConfig)> {
    vec![
        // Plain CSR bins: structureless scatter with packing off, and
        // specialization on but nothing qualifies.
        (
            "csr",
            gen::random_uniform::<f64>(700, 900, 2, 6, 11),
            PlanConfig {
                pack: false,
                ..PlanConfig::default()
            },
        ),
        // Packed SELL bins: uniform rows, specialization off so the
        // packed family (not banded) serves a banded generator.
        (
            "packed",
            gen::random_uniform::<f64>(600, 600, 4, 4, 12),
            PlanConfig::default(),
        ),
        // Banded: band-complete generator under the default knobs.
        (
            "banded",
            gen::banded::<f64>(1_500, 3, 13),
            PlanConfig::default(),
        ),
        // Dense-run: the same banded shape with the banded tier disabled
        // and the run threshold lowered to the generator's run length.
        (
            "dense-run",
            gen::banded::<f64>(1_500, 3, 14),
            PlanConfig {
                band_max_offsets: 0,
                min_dense_run: 2,
                ..PlanConfig::default()
            },
        ),
        // Row-run: identical-row runs, classified streaming so the
        // index-byte contest against packing is live.
        (
            "row-run",
            row_run_matrix(64, 8, 12),
            PlanConfig {
                llc_bytes: 0,
                ..PlanConfig::default()
            },
        ),
    ]
}

fn format_matches(name: &str, f: BinFormat) -> bool {
    match name {
        "csr" => matches!(f, BinFormat::Csr | BinFormat::CacheBlockedCsr { .. }),
        "packed" => matches!(f, BinFormat::PackedSell { .. }),
        "banded" => matches!(f, BinFormat::Banded { .. }),
        "dense-run" => matches!(f, BinFormat::DenseRun),
        "row-run" => matches!(f, BinFormat::RowRunReuse),
        _ => unreachable!(),
    }
}

/// Every kernel family × every registered RHS width × threads {1, 4}:
/// single-vector and batched execution (K = 15 decomposes into 8+4+2+1,
/// touching all four table widths in one launch) must be bit-for-bit
/// identical to the sequential CSR reference, and the plans must
/// survive `VerifiedPlan` promotion (which re-proves every structural
/// license the specialized kernels execute under).
#[test]
fn fuzz_every_table_entry_bit_identical_across_threads() {
    setup();
    for (name, a, config) in family_cases() {
        let v = probe_vector(a.n_cols(), 3);
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let k = 15usize;
        let mut x = DenseBlock::zeros(a.n_cols(), k);
        x.fill_with(|i, j| ((i * 3 + j * 7) % 13) as f64 - 6.0);
        for workers in [1usize, 4] {
            let plan = native_plan_workers(&a, coarse(KernelId::Serial), config, workers);
            assert!(
                plan.dispatch()
                    .iter()
                    .any(|d| format_matches(name, d.format)),
                "{name}/{workers}t: gate never chose the family: {:?}",
                plan.dispatch().iter().map(|d| d.format).collect::<Vec<_>>()
            );
            // Single-vector, checked and promoted-unchecked.
            let mut u = vec![f64::NAN; a.n_rows()];
            plan.execute(&a, &v, &mut u).unwrap();
            assert_eq!(u, reference, "{name}/{workers}t single-vector diverges");
            let verified = plan.verify(&a).expect("specialized plan must verify");
            let mut uf = vec![f64::NAN; a.n_rows()];
            verified.execute_unchecked(&a, &v, &mut uf).unwrap();
            assert_eq!(uf, reference, "{name}/{workers}t unchecked diverges");
            // Batched: every registered width in one K = 15 launch.
            let mut y = DenseBlock::zeros(a.n_rows(), k);
            verified.plan().execute_batch(&a, &x, &mut y).unwrap();
            for j in 0..k {
                let vj = x.column(j);
                let ref_j = a.spmv_seq_alloc(&vj).unwrap();
                assert_eq!(
                    y.column(j),
                    ref_j,
                    "{name}/{workers}t batched column {j} diverges"
                );
            }
        }
    }
}

/// `check_payloads` rejects every tampered specialized payload with the
/// proof-specific error: a payload whose structural premise was derived
/// from a *different* matrix (dense-run / banded / row-run), a banded
/// format whose recorded offset count lies, and a format/payload
/// cross-pairing.
#[test]
fn verify_rejects_tampered_specialized_payloads() {
    setup();
    // Dense-run: derive the run decomposition from a banded matrix,
    // then present it against a matrix with one extra entry.
    let a = gen::banded::<f64>(300, 3, 21);
    let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
    let runs = spmv_sparse::DenseRuns::detect(&a, &rows, 2).expect("banded rows are runs");
    let mut coo = CooMatrix::<f64>::new(a.n_rows(), a.n_cols());
    for r in 0..a.n_rows() {
        let (cols, vals) = a.row(r);
        for (&c, &x) in cols.iter().zip(vals) {
            coo.push(r, c as usize, x);
        }
    }
    coo.push(0, 250, 9.0); // the tamper: one extra far-off entry in row 0
    let b = coo.to_csr();
    let mk_dispatch = |format: BinFormat| {
        vec![BinDispatch {
            bin_id: 0,
            kernel: KernelId::Serial,
            rows: rows.clone(),
            nnz: b.nnz(),
            format,
        }]
    };
    let tiles = vec![Tile {
        bin: 0,
        start: 0,
        end: rows.len(),
    }];
    match check_payloads(
        &b,
        &mk_dispatch(BinFormat::DenseRun),
        &[BinPayload::<f64>::DenseRun(runs)],
        &tiles,
    ) {
        Err(VerifyError::SpecializedPayloadInvalid { detail, .. }) => {
            assert!(!detail.is_empty())
        }
        other => panic!("tampered dense-run accepted: {other:?}"),
    }

    // Banded: a valid band set presented against the tampered matrix
    // (row 0 is no longer band-complete), and a lying offset count.
    let band = spmv_sparse::BandSet::detect(&a, &rows, 16).expect("banded matrix");
    let n_offsets = band.offsets().len();
    match check_payloads(
        &b,
        &mk_dispatch(BinFormat::Banded { offsets: n_offsets }),
        &[BinPayload::<f64>::Banded(band.clone())],
        &tiles,
    ) {
        Err(VerifyError::SpecializedPayloadInvalid { .. }) => {}
        other => panic!("tampered banded accepted: {other:?}"),
    }
    match check_payloads(
        &a,
        &mk_dispatch(BinFormat::Banded {
            offsets: n_offsets + 1,
        }),
        &[BinPayload::<f64>::Banded(band)],
        &tiles,
    ) {
        Err(VerifyError::SpecializedPayloadInvalid { detail, .. }) => {
            assert!(detail.contains("offsets"), "got: {detail}")
        }
        other => panic!("lying offset count accepted: {other:?}"),
    }

    // Row-run: run boundaries derived from the run matrix, presented
    // against a matrix whose first two rows were made distinct.
    let rr_matrix = row_run_matrix(16, 8, 12);
    let rr_rows: Vec<u32> = (0..rr_matrix.n_rows() as u32).collect();
    let rr = spmv_sparse::RowRuns::detect(&rr_matrix, &rr_rows, 4).expect("runs of 8");
    let mut coo2 = CooMatrix::<f64>::new(rr_matrix.n_rows(), rr_matrix.n_cols());
    for r in 0..rr_matrix.n_rows() {
        let (cols, vals) = rr_matrix.row(r);
        for (&c, &x) in cols.iter().zip(vals) {
            // Shift row 0's pattern by one column: its run shrinks.
            let cc = if r == 0 { c as usize + 1 } else { c as usize };
            coo2.push(r, cc.min(rr_matrix.n_cols() - 1), x);
        }
    }
    let b2 = coo2.to_csr();
    let rr_tiles = vec![Tile {
        bin: 0,
        start: 0,
        end: rr_rows.len(),
    }];
    match check_payloads(
        &b2,
        &[BinDispatch {
            bin_id: 0,
            kernel: KernelId::Serial,
            rows: rr_rows.clone(),
            nnz: b2.nnz(),
            format: BinFormat::RowRunReuse,
        }],
        &[BinPayload::<f64>::RowRun(rr)],
        &rr_tiles,
    ) {
        Err(VerifyError::SpecializedPayloadInvalid { detail, .. }) => {
            assert!(!detail.is_empty())
        }
        other => panic!("tampered row-run accepted: {other:?}"),
    }

    // Format/payload cross-pairing: a specialized format with a CSR
    // payload must be named in the mismatch error.
    match check_payloads(
        &a,
        &mk_dispatch(BinFormat::DenseRun),
        &[BinPayload::<f64>::Csr],
        &tiles,
    ) {
        Err(VerifyError::PackedPayloadInvalid { detail, .. }) => {
            assert!(
                detail.contains("dense-run") && detail.contains("csr"),
                "got: {detail}"
            );
        }
        other => panic!("cross-paired payload accepted: {other:?}"),
    }
}

/// The gate precedence contract, pinned: banded beats dense-run beats
/// packing when all qualify; each knob's zero value disables its tier;
/// `specialize: false` disables all three; and the row-run tier only
/// displaces packing when its modelled index stream is strictly
/// smaller.
#[test]
fn gate_precedence_is_deterministic_and_knob_gated() {
    setup();
    // A banded matrix qualifies for banded AND (with a low threshold)
    // dense-run AND packing: banded must win.
    let banded = gen::banded::<f64>(1_200, 2, 31);
    let plan_for = |config: PlanConfig, a: &CsrMatrix<f64>| {
        native_plan_workers(a, coarse(KernelId::Serial), config, 1)
    };
    let both = plan_for(
        PlanConfig {
            min_dense_run: 2,
            ..PlanConfig::default()
        },
        &banded,
    );
    assert!(
        both.dispatch()
            .iter()
            .all(|d| matches!(d.format, BinFormat::Banded { .. })),
        "banded did not take precedence: {:?}",
        both.dispatch().iter().map(|d| d.format).collect::<Vec<_>>()
    );
    // Banded disabled → the same matrix drops to dense-run.
    let no_band = plan_for(
        PlanConfig {
            band_max_offsets: 0,
            min_dense_run: 2,
            ..PlanConfig::default()
        },
        &banded,
    );
    assert!(
        no_band
            .dispatch()
            .iter()
            .all(|d| matches!(d.format, BinFormat::DenseRun)),
        "dense-run did not take over: {:?}",
        no_band
            .dispatch()
            .iter()
            .map(|d| d.format)
            .collect::<Vec<_>>()
    );
    // Both structure tiers disabled → the PR 5 gate is unchanged.
    let neither = plan_for(
        PlanConfig {
            band_max_offsets: 0,
            min_dense_run: 0,
            ..PlanConfig::default()
        },
        &banded,
    );
    assert_eq!(neither.specialized_bins(), 0);
    // The master switch beats every threshold.
    let off = plan_for(
        PlanConfig {
            specialize: false,
            min_dense_run: 2,
            ..PlanConfig::default()
        },
        &banded,
    );
    assert_eq!(off.specialized_bins(), 0, "specialize: false leaked");

    // Row-run vs packing: in the streaming regime the identical-row
    // matrix moves fewer modelled index bytes as row runs, so the gate
    // must pick RowRunReuse — and packing must win it back when the
    // row-run tier is disabled.
    let rr_matrix = row_run_matrix(64, 8, 12);
    let streaming = PlanConfig {
        llc_bytes: 0,
        ..PlanConfig::default()
    };
    let rr_plan = plan_for(streaming, &rr_matrix);
    assert!(
        rr_plan
            .dispatch()
            .iter()
            .any(|d| matches!(d.format, BinFormat::RowRunReuse)),
        "row-run tier never chosen: {:?}",
        rr_plan
            .dispatch()
            .iter()
            .map(|d| d.format)
            .collect::<Vec<_>>()
    );
    let rr_off = plan_for(
        PlanConfig {
            llc_bytes: 0,
            min_row_run: 0,
            ..PlanConfig::default()
        },
        &rr_matrix,
    );
    assert_eq!(rr_off.specialized_bins(), 0);
    assert!(
        rr_off.packed_bins() >= 1,
        "packing did not reclaim the row-run matrix"
    );
    // The displacement is justified: row runs model strictly fewer
    // index bytes than the packed plan they displaced.
    assert!(
        rr_plan.traffic().index_bytes < rr_off.traffic().index_bytes,
        "row-run {} !< packed {}",
        rr_plan.traffic().index_bytes,
        rr_off.traffic().index_bytes
    );
    // And both stay bit-identical to the reference.
    let v = probe_vector(rr_matrix.n_cols(), 9);
    let reference = rr_matrix.spmv_seq_alloc(&v).unwrap();
    for plan in [rr_plan, rr_off] {
        let mut u = vec![f64::NAN; rr_matrix.n_rows()];
        plan.verify(&rr_matrix)
            .unwrap()
            .execute(&rr_matrix, &v, &mut u)
            .unwrap();
        assert_eq!(u, reference);
    }
}

/// The specialized tiers' traffic accounting: a banded plan's modelled
/// index stream is the offset list alone (bytes ≈ 8 × offsets), far
/// below both the u32 floor and the delta-compressed tier, and the
/// SimGpu pricing charges the reduction.
#[test]
fn specialized_traffic_is_modelled_and_priced() {
    setup();
    let a = gen::banded::<f64>(2_000, 3, 41);
    let mk = |specialize| {
        SpmvPlan::compile_with(
            &a,
            coarse(KernelId::Serial),
            Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
            PlanConfig {
                llc_bytes: 0,
                specialize,
                ..PlanConfig::default()
            },
        )
    };
    let spec = mk(true);
    let packed = mk(false);
    assert!(spec.specialized_bins() >= 1 && packed.packed_bins() >= 1);
    let (ts, tp) = (spec.traffic(), packed.traffic());
    assert_eq!(ts.nnz, tp.nnz);
    // Packed slabs charge their padding slots; the banded tier streams
    // exactly the stored values.
    assert!(ts.value_bytes <= tp.value_bytes);
    assert!(
        ts.index_bytes * 10 < tp.index_bytes,
        "banded index stream not ≥10x smaller: {} vs {}",
        ts.index_bytes,
        tp.index_bytes
    );
    let v = vec![1.0f64; a.n_cols()];
    let mut u = vec![0.0f64; a.n_rows()];
    let cs = spec.execute(&a, &v, &mut u).unwrap();
    let cp = packed.execute(&a, &v, &mut u).unwrap();
    let (bs, bp) = (
        cs.stats.expect("sim prices").bytes_read,
        cp.stats.expect("sim prices").bytes_read,
    );
    assert!(bs < bp, "specialized priced at {bs} bytes, packed at {bp}");
}
