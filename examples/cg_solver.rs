//! Conjugate-gradient solver on the auto-tuned SpMV (CPU backend).
//!
//! SpMV dominates CG iterations; this example solves a 2-D Poisson
//! problem with the NNZ-balanced native kernel and verifies the residual
//! actually converges. Run with `cargo run --release --example cg_solver`.

use spmv_repro::autotune::kernels::cpu::spmv_nnz_balanced;
use spmv_repro::sparse::gen::laplacian_2d;
use spmv_repro::sparse::CsrMatrix;

/// Solve `A x = b` by conjugate gradients; returns (solution, residual
/// history).
fn conjugate_gradient(
    a: &CsrMatrix<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
) -> (Vec<f64>, Vec<f64>) {
    let n = a.n_rows();
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
    let mut rs_old = dot(&r, &r);
    let mut history = vec![rs_old.sqrt()];
    for _ in 0..max_iters {
        spmv_nnz_balanced(a, &p, &mut ap).expect("dims");
        let alpha = rs_old / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        history.push(rs_new.sqrt());
        if rs_new.sqrt() < tol {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    (x, history)
}

fn main() {
    let (gx, gy) = (120usize, 120usize);
    let a = laplacian_2d::<f64>(gx, gy);
    println!(
        "2-D Poisson operator: {} unknowns, {} nnz",
        a.n_rows(),
        a.nnz()
    );

    // Manufactured solution: x* = 1 everywhere → b = A·1.
    let x_star = vec![1.0f64; a.n_rows()];
    let b = a.spmv_seq_alloc(&x_star).unwrap();

    let t0 = std::time::Instant::now();
    let (x, history) = conjugate_gradient(&a, &b, 2_000, 1e-10);
    let elapsed = t0.elapsed();

    let err = x
        .iter()
        .zip(&x_star)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "converged in {} iterations, {:.1?} (residual {:.2e})",
        history.len() - 1,
        elapsed,
        history.last().unwrap()
    );
    println!("max |x - x*| = {err:.2e}");
    for (i, r) in history.iter().enumerate().step_by(history.len() / 10 + 1) {
        println!("  iter {i:>5}: residual {r:.3e}");
    }
    assert!(err < 1e-6, "CG failed to converge");
    println!("\nCG solved the system through the auto-tuned SpMV stack.");
}
