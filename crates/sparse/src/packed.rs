//! SELL-C-σ-style packed storage for a row *subset*.
//!
//! The auto-tuner's binning groups rows of similar NNZ precisely so each
//! bin can run a kernel shaped for its workload — but a bin stored as a
//! CSR row list still pays one `row_ptr` lookup, one loop setup, and an
//! irregular short inner loop per row. [`PackedSell`] removes that
//! overhead for the low/mid-NNZ bins where it dominates:
//!
//! * the bin's rows are sorted by NNZ descending (the "σ" sort, with σ =
//!   the whole bin — bins are already workload-homogeneous);
//! * consecutive groups of `C` rows form a *chunk* whose columns are laid
//!   out column-major (`lane` fastest), so one pass over a chunk streams
//!   `C` rows in lock-step with unit-stride loads — the shape a compiler
//!   auto-vectorises and the paper's SELL/ELL-family references exploit;
//! * within a chunk, lanes longer than the shortest row form a *ragged
//!   tail*: because lanes are length-sorted, the active lanes at column
//!   `j` are always a prefix, so the kernel never multiplies padding.
//!   Padding exists only as unread storage slots, which keeps results
//!   **bit-for-bit identical** to the sequential CSR reference (same
//!   per-row `mul_add_` order, no `0 · v[0]` terms that would break
//!   `-0.0` sums or NaN-propagate from an infinite `v` entry).
//!
//! Columns and values are cached in a slab keyed by
//! [`CsrMatrix::values_id`], so a compiled plan executes with zero
//! indirection in the steady state and transparently re-gathers the slab
//! after a value update. Columns travel with the values because an
//! in-place mutation such as [`CsrMatrix::sort_rows`] permutes the
//! `(col, val)` pairs *within* each row without touching `row_ptr`: the
//! positional `src` map stays valid, but both halves of each slot must
//! be re-read or the slab would pair stale columns with fresh values.
//!
//! Storage padding is bounded: [`PackedSell::padding_ratio`] reports
//! `slots / nnz`, and plan compilation falls back to the CSR row list
//! when the ratio exceeds its bound (one dense row among empties would
//! otherwise inflate the slab `C`-fold).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::sync::RwLock;

/// Sentinel in the `src` map marking a padding slot (never read by the
/// kernels; kept so [`refresh`](PackedSell::ensure_values) is branch-light
/// and [`check_against`](PackedSell::check_against) can prove slab shape).
pub const SRC_PAD: u32 = u32::MAX;

/// The cached (columns, values) slab and the generation it mirrors.
/// Both halves live under one lock so readers always observe a coherent
/// pairing, even if a refresh races a concurrent execute.
struct ValueSlab<T> {
    /// `CsrMatrix::values_id` of the matrix state the slab mirrors.
    source: u64,
    /// Column indices, column-major per chunk; padding slots hold `0`.
    /// Every non-padding entry was asserted `< n_cols` when gathered,
    /// which is what licenses the unchecked `v[col]` gathers.
    cols: Vec<u32>,
    /// One entry per storage slot; padding slots hold `T::ZERO`.
    vals: Vec<T>,
}

/// A borrowed, coherent view of a [`PackedSell`] slab — obtained only
/// through [`PackedSell::with_slab`], never constructed by callers. The
/// kernels gather `v[col]` without per-element bound checks, so the
/// column slice must be the validated slab contents; keeping the fields
/// private makes that unforgeable from safe code.
#[derive(Clone, Copy)]
pub struct SlabView<'a, T> {
    cols: &'a [u32],
    vals: &'a [T],
}

/// A row subset packed into length-sorted, column-major chunks of `C`
/// lanes (SELL-C-σ with σ = the whole subset). Built once per sparsity
/// pattern by plan compilation; executes many times.
pub struct PackedSell<T: Scalar> {
    /// Lanes per chunk (`C`).
    chunk: usize,
    /// Column count of the source matrix. Every non-padding slot's
    /// column index is validated against this bound each time the slab
    /// is gathered, which is what licenses the unchecked gathers in the
    /// kernels.
    n_cols: usize,
    /// Row ids in packed (length-sorted) order.
    rows: Vec<u32>,
    /// NNZ of each packed row (same order as `rows`).
    lens: Vec<u32>,
    /// Slot offset of each chunk's slab; length `n_chunks + 1`.
    chunk_off: Vec<usize>,
    /// CSR value positions per slot ([`SRC_PAD`] for padding slots).
    src: Vec<u32>,
    /// Non-zeros actually stored (excluding padding slots).
    nnz: usize,
    /// Cached columns + values, refreshed together when the source
    /// matrix's value generation changes.
    vals: RwLock<ValueSlab<T>>,
}

impl<T: Scalar> PackedSell<T> {
    /// Pack `rows` of `a` into chunks of `chunk` lanes. Rows are sorted
    /// by NNZ descending (stable, so equal-length rows keep their input
    /// order); the caller's list is not modified. The value slab is
    /// gathered immediately from `a`'s current values.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`, a row id is out of bounds, or `a.nnz()`
    /// overflows the `u32` source map.
    pub fn from_rows(a: &CsrMatrix<T>, rows: &[u32], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(
            a.nnz() < SRC_PAD as usize,
            "matrix too large for the u32 source map"
        );
        let row_ptr = a.row_ptr();
        let mut order: Vec<u32> = rows.to_vec();
        order.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r as usize)));
        let lens: Vec<u32> = order
            .iter()
            .map(|&r| a.row_nnz(r as usize) as u32)
            .collect();

        let n_chunks = order.len().div_ceil(chunk);
        let mut chunk_off = Vec::with_capacity(n_chunks + 1);
        chunk_off.push(0usize);
        let mut slots = 0usize;
        for c in 0..n_chunks {
            let lane0 = c * chunk;
            let lanes = (order.len() - lane0).min(chunk);
            // Widest lane first within each chunk (global desc sort).
            let width = lens[lane0] as usize;
            slots += width * lanes;
            chunk_off.push(slots);
        }

        let mut src = vec![SRC_PAD; slots];
        for (c, &off) in chunk_off.iter().take(n_chunks).enumerate() {
            let lane0 = c * chunk;
            let lanes = (order.len() - lane0).min(chunk);
            let width = lens[lane0] as usize;
            for (lane, (&r, &len)) in order[lane0..lane0 + lanes]
                .iter()
                .zip(&lens[lane0..lane0 + lanes])
                .enumerate()
            {
                let base = row_ptr[r as usize];
                for j in 0..len as usize {
                    src[off + j * lanes + lane] = (base + j) as u32;
                }
                debug_assert!(len as usize <= width);
            }
        }

        let nnz: usize = lens.iter().map(|&l| l as usize).sum();
        let packed = Self {
            chunk,
            n_cols: a.n_cols(),
            rows: order,
            lens,
            chunk_off,
            src,
            nnz,
            vals: RwLock::new(ValueSlab {
                // `values_id` generations start at 1, so 0 always forces
                // the gather below to populate cols + vals.
                source: 0,
                cols: vec![0u32; slots],
                vals: vec![T::ZERO; slots],
            }),
        };
        packed.ensure_values(a);
        packed
    }

    /// Lanes per chunk (`C`).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Rows covered, in packed (length-sorted) order.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunk_off.len() - 1
    }

    /// Stored non-zeros (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total storage slots including padding.
    pub fn slots(&self) -> usize {
        self.src.len()
    }

    /// Storage blow-up of the packed layout: `slots / nnz` (`1.0` when
    /// the subset is all padding-free or empty). Plan compilation gates
    /// SELL selection on this bound.
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.slots() as f64 / self.nnz as f64
        }
    }

    /// Non-zeros stored in chunk `c` (excluding padding) — the work
    /// estimate tile generation balances on.
    pub fn chunk_nnz(&self, c: usize) -> usize {
        let lane0 = c * self.chunk;
        let lanes = (self.rows.len() - lane0).min(self.chunk);
        self.lens[lane0..lane0 + lanes]
            .iter()
            .map(|&l| l as usize)
            .sum()
    }

    /// Heap bytes of the packed arrays (src + slab cols + slab values +
    /// index vectors).
    pub fn storage_bytes(&self) -> usize {
        self.src.len() * std::mem::size_of::<u32>()
            + self.slots() * std::mem::size_of::<u32>()
            + self.slots() * T::BYTES
            + self.rows.len() * std::mem::size_of::<u32>()
            + self.lens.len() * std::mem::size_of::<u32>()
            + self.chunk_off.len() * std::mem::size_of::<usize>()
    }

    /// Bring the cached slab up to date with `a`. O(1) when
    /// [`CsrMatrix::values_id`] matches the slab's source (the steady
    /// state of an iterative solver); one O(slots) gather of columns and
    /// values after a value update. Gathering both halves is what keeps
    /// the slab correct across in-place mutations like
    /// [`CsrMatrix::sort_rows`] that permute `(col, val)` pairs within a
    /// row: the positional `src` map still points at the row's entries,
    /// just in their new order. Callers must hand the same pattern
    /// (`row_ptr`) the payload was packed from — plan validation
    /// guarantees that.
    ///
    /// # Panics
    ///
    /// Panics if a refreshed column index is out of bounds — the
    /// per-refresh proof that licenses the unchecked `v[col]` gathers in
    /// the kernels.
    pub fn ensure_values(&self, a: &CsrMatrix<T>) {
        let want = a.values_id();
        if self.vals.read().unwrap().source == want {
            return;
        }
        let mut slab = self.vals.write().unwrap();
        if slab.source == want {
            return; // another thread refreshed while we waited
        }
        let av = a.values();
        let a_cols = a.col_idx();
        for (slot, &s) in self.src.iter().enumerate() {
            if s == SRC_PAD {
                slab.cols[slot] = 0;
                slab.vals[slot] = T::ZERO;
            } else {
                let col = a_cols[s as usize];
                // Refresh-time bound proof: the kernels gather `v[col]`
                // without a per-element check.
                assert!(
                    (col as usize) < self.n_cols,
                    "CSR column {col} out of bounds"
                );
                slab.cols[slot] = col;
                slab.vals[slot] = av[s as usize];
            }
        }
        slab.source = want;
    }

    /// Run `f` against the current slab under the read lock. The lock is
    /// uncontended in the steady state (refreshes happen before workers
    /// launch), so this costs one atomic acquire per call — take it once
    /// per tile, not per chunk.
    pub fn with_slab<R>(&self, f: impl FnOnce(SlabView<'_, T>) -> R) -> R {
        let guard = self.vals.read().unwrap();
        f(SlabView {
            cols: &guard.cols,
            vals: &guard.vals,
        })
    }

    /// SpMV over chunks `[c0, c1)`: for every row `r` of those chunks,
    /// computes `Σ_j A[r,·]·v` in ascending-`j` order (bit-identical to
    /// the CSR reference) and hands `(row, sum)` to `sink`. Rows with no
    /// entries still reach the sink with `T::ZERO`, matching CSR
    /// semantics. `slab` must come from [`with_slab`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is shorter than the source matrix's column count —
    /// the single bound check that covers every gather below.
    ///
    /// [`with_slab`]: Self::with_slab
    pub fn spmv_chunks<S: FnMut(usize, T)>(
        &self,
        slab: SlabView<'_, T>,
        c0: usize,
        c1: usize,
        v: &[T],
        mut sink: S,
    ) {
        assert!(
            v.len() >= self.n_cols,
            "input vector shorter than the matrix column count"
        );
        for c in c0..c1 {
            let lane0 = c * self.chunk;
            let lanes = (self.rows.len() - lane0).min(self.chunk);
            match lanes {
                16 => self.chunk_fixed::<16, S>(slab, c, lane0, v, &mut sink),
                8 => self.chunk_fixed::<8, S>(slab, c, lane0, v, &mut sink),
                4 => self.chunk_fixed::<4, S>(slab, c, lane0, v, &mut sink),
                2 => self.chunk_fixed::<2, S>(slab, c, lane0, v, &mut sink),
                _ => self.chunk_dyn(slab, c, lane0, lanes, v, &mut sink),
            }
        }
    }

    /// One full chunk of exactly `L` lanes, with the dense phase (all
    /// lanes active) unrolled `L`-wide. `L` is a compile-time constant so
    /// the accumulator array lives in registers and the inner lane loop
    /// disappears.
    #[inline]
    fn chunk_fixed<const L: usize, S: FnMut(usize, T)>(
        &self,
        slab: SlabView<'_, T>,
        c: usize,
        lane0: usize,
        v: &[T],
        sink: &mut S,
    ) {
        let lens = &self.lens[lane0..lane0 + L];
        let width = lens[0] as usize;
        let min_len = lens[L - 1] as usize;
        let off = self.chunk_off[c];
        let mut sums = [T::ZERO; L];
        // Dense phase: every lane active, unit-stride slab columns. The
        // `chunks_exact(L)` windows (L const) drop the per-slot slab
        // bounds checks; the gather is unchecked because every
        // non-padding column was proven `< n_cols` when the slab was
        // gathered and `spmv_chunks` checked `v.len() >= n_cols` once
        // up front.
        let dense = slab.cols[off..off + min_len * L].chunks_exact(L);
        let dense_vals = slab.vals[off..off + min_len * L].chunks_exact(L);
        for (cw, vw) in dense.zip(dense_vals) {
            // Gather first, FMA second: the gather loop is scalar loads,
            // but the FMA loop is contiguous-on-contiguous and the
            // compiler can turn it into one packed `vfmadd`.
            let mut xs = [T::ZERO; L];
            for l in 0..L {
                // SAFETY: `cw[l]` is a non-padding slot of this chunk's
                // dense phase; `ensure_values` asserted it `< n_cols`
                // and `spmv_chunks` asserted `v.len() >= n_cols`.
                xs[l] = unsafe { *v.get_unchecked(cw[l] as usize) };
            }
            for l in 0..L {
                sums[l] = vw[l].mul_add_(xs[l], sums[l]);
            }
        }
        // Ragged tail: lanes are length-sorted descending, so the active
        // lanes at column j are the prefix with len > j.
        let mut active = L;
        for j in min_len..width {
            while active > 0 && (lens[active - 1] as usize) <= j {
                active -= 1;
            }
            let o = off + j * L;
            for (l, s) in sums.iter_mut().enumerate().take(active) {
                // SAFETY: `l < active` means lane `l` has `len > j`, so
                // this slot is non-padding; same refresh-time bound
                // proof.
                let x = unsafe { *v.get_unchecked(slab.cols[o + l] as usize) };
                *s = slab.vals[o + l].mul_add_(x, *s);
            }
        }
        for (l, &s) in sums.iter().enumerate() {
            sink(self.rows[lane0 + l] as usize, s);
        }
    }

    /// A partial (or oddly sized) chunk of `lanes` lanes — the same
    /// phase structure without the compile-time unroll. Accumulators
    /// live in a fixed stack buffer unless the chunk size is enormous.
    fn chunk_dyn<S: FnMut(usize, T)>(
        &self,
        slab: SlabView<'_, T>,
        c: usize,
        lane0: usize,
        lanes: usize,
        v: &[T],
        sink: &mut S,
    ) {
        let lens = &self.lens[lane0..lane0 + lanes];
        let width = lens[0] as usize;
        let off = self.chunk_off[c];
        let mut stack = [T::ZERO; 32];
        let mut heap;
        let sums: &mut [T] = if lanes <= stack.len() {
            &mut stack[..lanes]
        } else {
            heap = vec![T::ZERO; lanes];
            &mut heap
        };
        let mut active = lanes;
        for j in 0..width {
            while active > 0 && (lens[active - 1] as usize) <= j {
                active -= 1;
            }
            let o = off + j * lanes;
            for (l, s) in sums.iter_mut().enumerate().take(active) {
                // SAFETY: `l < active` means this slot is non-padding;
                // same refresh-time bound proof as `chunk_fixed`.
                let x = unsafe { *v.get_unchecked(slab.cols[o + l] as usize) };
                *s = slab.vals[o + l].mul_add_(x, *s);
            }
        }
        for (l, &s) in sums.iter().enumerate() {
            sink(self.rows[lane0 + l] as usize, s);
        }
    }

    /// Batched SpMV (SpMM) over chunks `[c0, c1)` against `KB`
    /// right-hand sides read from a row-major block: input row `c` is
    /// `x[c * x_stride + x_col0 ..][..KB]`. For every packed row `r` the
    /// kernel walks the row's slots in ascending-`j` order — the **same**
    /// per-row accumulation order as [`spmv_chunks`](Self::spmv_chunks)
    /// and the CSR reference, so each of the `KB` output columns is
    /// bit-for-bit identical to an independent single-vector SpMV — and
    /// broadcasts each gathered matrix element against the `KB`
    /// contiguous x-lanes, accumulating into `KB` register-resident
    /// sums. Matrix bytes are streamed once and pay for `KB` outputs.
    ///
    /// Iteration is per-lane (slot stride = the chunk's lane count)
    /// rather than lane-lockstep: lockstep would need `lanes × KB`
    /// accumulators, which spills at any useful width, while per-lane
    /// keeps exactly `KB` sums live — the register-pressure cap that
    /// bounds the supported RHS widths (see the dispatch in the core
    /// executor). Padding slots are never read: each lane stops at its
    /// own length.
    ///
    /// `sink` receives `(row, sums)` for every row of the chunk range,
    /// including empty rows (all-zero sums), matching CSR semantics.
    ///
    /// # Panics
    ///
    /// Panics if `KB == 0`, the block geometry is inconsistent
    /// (`x_col0 + KB > x_stride` while columns exist), or `x` is too
    /// short to hold row `n_cols - 1` — the single up-front bound check
    /// that, together with the pack-time column bound, licenses the
    /// unchecked x-gathers below.
    #[allow(clippy::too_many_arguments)] // block geometry is three scalars, not a struct
    pub fn spmm_chunks<const KB: usize, S: FnMut(usize, [T; KB])>(
        &self,
        slab: SlabView<'_, T>,
        c0: usize,
        c1: usize,
        x: &[T],
        x_stride: usize,
        x_col0: usize,
        mut sink: S,
    ) {
        assert!(KB > 0, "RHS block width must be positive");
        if self.n_cols > 0 {
            assert!(
                x_col0 + KB <= x_stride,
                "RHS block {x_col0}..{} overruns the row stride {x_stride}",
                x_col0 + KB
            );
            assert!(
                (self.n_cols - 1) * x_stride + x_col0 + KB <= x.len(),
                "input block shorter than the matrix column count"
            );
        }
        for c in c0..c1 {
            let lane0 = c * self.chunk;
            let lanes = (self.rows.len() - lane0).min(self.chunk);
            let off = self.chunk_off[c];
            for l in 0..lanes {
                let len = self.lens[lane0 + l] as usize;
                let mut sums = [T::ZERO; KB];
                let mut slot = off + l;
                for _ in 0..len {
                    let col = slab.cols[slot] as usize;
                    let av = slab.vals[slot];
                    let base = col * x_stride + x_col0;
                    for (kk, s) in sums.iter_mut().enumerate() {
                        // SAFETY: `col < n_cols` was asserted when the
                        // slab was gathered, for every non-padding slot
                        // (lane `l` stops at its own length, so `slot`
                        // is never padding), and the up-front assert
                        // above proved `(n_cols - 1) * x_stride + x_col0
                        // + KB <= x.len()`, so `base + kk` is in bounds.
                        let xv = unsafe { *x.get_unchecked(base + kk) };
                        *s = av.mul_add_(xv, *s);
                    }
                    slot += lanes;
                }
                sink(self.rows[lane0 + l] as usize, sums);
            }
        }
    }

    /// Sequential SpMV over the whole packed subset into `u` (only the
    /// packed rows are written). Refreshes the value slab from `a` first.
    /// Reference/diagnostic path; the parallel tiled path lives in the
    /// execution layer.
    pub fn spmv_into(&self, a: &CsrMatrix<T>, v: &[T], u: &mut [T]) {
        self.ensure_values(a);
        self.with_slab(|slab| {
            self.spmv_chunks(slab, 0, self.n_chunks(), v, |r, s| u[r] = s);
        });
    }

    /// Re-derive the packed layout from `a` and `expected_rows` and prove
    /// this payload matches it exactly: same row multiset, lengths equal
    /// to the CSR row lengths, chunks length-sorted with correct offsets,
    /// every non-padding slot's `(col, src)` equal to the CSR entry it
    /// claims to mirror, every padding slot marked. The slab is refreshed
    /// from `a` first, so the proof covers the state execution will read.
    /// Returns a description of the first defect.
    /// O(slots + |rows| log |rows|).
    pub fn check_against(&self, a: &CsrMatrix<T>, expected_rows: &[u32]) -> Result<(), String> {
        self.ensure_values(a);
        if self.n_cols != a.n_cols() {
            return Err(format!(
                "packed n_cols {} != matrix n_cols {} (gather bound proof void)",
                self.n_cols,
                a.n_cols()
            ));
        }
        if self.rows.len() != expected_rows.len() {
            return Err(format!(
                "packed row count {} != bin row count {}",
                self.rows.len(),
                expected_rows.len()
            ));
        }
        let mut mine = self.rows.clone();
        let mut theirs = expected_rows.to_vec();
        mine.sort_unstable();
        theirs.sort_unstable();
        if mine != theirs {
            return Err("packed rows are not the bin's row set".into());
        }
        let m = a.n_rows();
        let row_ptr = a.row_ptr();
        let a_cols = a.col_idx();
        for (i, (&r, &len)) in self.rows.iter().zip(&self.lens).enumerate() {
            if (r as usize) >= m {
                return Err(format!("packed row {r} out of bounds (m = {m})"));
            }
            if a.row_nnz(r as usize) != len as usize {
                return Err(format!(
                    "packed row {r}: cached len {len} != CSR len {}",
                    a.row_nnz(r as usize)
                ));
            }
            if i + 1 < self.lens.len() && self.lens[i + 1] > len {
                return Err(format!("packed rows not length-sorted at index {i}"));
            }
        }
        if self.chunk_off.first() != Some(&0) || self.chunk_off.last() != Some(&self.src.len()) {
            return Err("chunk offsets do not span the slab".into());
        }
        let slab = self.vals.read().unwrap();
        if slab.cols.len() != self.src.len() {
            return Err("cols/src slab length mismatch".into());
        }
        if slab.vals.len() != self.src.len() {
            return Err("value slab length mismatch".into());
        }
        let mut seen_nnz = 0usize;
        for c in 0..self.n_chunks() {
            let lane0 = c * self.chunk;
            let lanes = (self.rows.len() - lane0).min(self.chunk);
            let width = self.lens[lane0] as usize;
            if self.chunk_off[c + 1] - self.chunk_off[c] != width * lanes {
                return Err(format!("chunk {c}: slab size != width × lanes"));
            }
            let off = self.chunk_off[c];
            for lane in 0..lanes {
                let r = self.rows[lane0 + lane] as usize;
                let len = self.lens[lane0 + lane] as usize;
                let base = row_ptr[r];
                for j in 0..width {
                    let slot = off + j * lanes + lane;
                    if j < len {
                        if self.src[slot] as usize != base + j {
                            return Err(format!(
                                "chunk {c} lane {lane} col {j}: src {} != CSR position {}",
                                self.src[slot],
                                base + j
                            ));
                        }
                        if slab.cols[slot] != a_cols[base + j] {
                            return Err(format!(
                                "chunk {c} lane {lane} col {j}: col {} != CSR col {}",
                                slab.cols[slot],
                                a_cols[base + j]
                            ));
                        }
                        seen_nnz += 1;
                    } else if self.src[slot] != SRC_PAD {
                        return Err(format!(
                            "chunk {c} lane {lane} col {j}: padding slot has src {}",
                            self.src[slot]
                        ));
                    }
                }
            }
        }
        if seen_nnz != self.nnz {
            return Err(format!("cached nnz {} != slab nnz {seen_nnz}", self.nnz));
        }
        Ok(())
    }
}

impl<T: Scalar> Clone for PackedSell<T> {
    fn clone(&self) -> Self {
        let slab = self.vals.read().unwrap();
        Self {
            chunk: self.chunk,
            n_cols: self.n_cols,
            rows: self.rows.clone(),
            lens: self.lens.clone(),
            chunk_off: self.chunk_off.clone(),
            src: self.src.clone(),
            nnz: self.nnz,
            vals: RwLock::new(ValueSlab {
                source: slab.source,
                cols: slab.cols.clone(),
                vals: slab.vals.clone(),
            }),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for PackedSell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedSell")
            .field("chunk", &self.chunk)
            .field("rows", &self.rows.len())
            .field("chunks", &self.n_chunks())
            .field("nnz", &self.nnz)
            .field("slots", &self.slots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::gen::mixture::RowRegime;

    fn all_rows<T: Scalar>(a: &CsrMatrix<T>) -> Vec<u32> {
        (0..a.n_rows() as u32).collect()
    }

    #[test]
    fn packed_matches_reference_bit_for_bit() {
        let a = gen::mixture::<f64>(
            500,
            700,
            &[
                RowRegime::new(1, 3, 0.4),
                RowRegime::new(8, 30, 0.4),
                RowRegime::new(60, 120, 0.2),
            ],
            true,
            7,
        );
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 5) % 13) as f64 - 6.0)
            .collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        for chunk in [1, 3, 4, 8, 16] {
            let p = PackedSell::from_rows(&a, &all_rows(&a), chunk);
            p.check_against(&a, &all_rows(&a)).unwrap();
            let mut u = vec![0.0f64; a.n_rows()];
            p.spmv_into(&a, &v, &mut u);
            assert_eq!(u, reference, "chunk {chunk} diverges from CSR reference");
        }
    }

    #[test]
    fn subset_only_touches_its_rows() {
        let a = gen::random_uniform::<f32>(100, 100, 1, 6, 3);
        let subset: Vec<u32> = (0..100).step_by(3).collect();
        let p = PackedSell::from_rows(&a, &subset, 8);
        p.check_against(&a, &subset).unwrap();
        let v = vec![1.0f32; 100];
        let mut u = vec![f32::NAN; 100];
        p.spmv_into(&a, &v, &mut u);
        for (i, &x) in u.iter().enumerate() {
            if subset.contains(&(i as u32)) {
                assert!(!x.is_nan(), "row {i} skipped");
            } else {
                assert!(x.is_nan(), "row {i} touched");
            }
        }
    }

    #[test]
    fn value_updates_are_picked_up_via_values_id() {
        let mut a = gen::random_uniform::<f64>(200, 200, 2, 9, 5);
        let rows = all_rows(&a);
        let p = PackedSell::from_rows(&a, &rows, 8);
        let v: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        for round in 0..3u64 {
            a.fill_values_with(|k| ((k as u64).wrapping_mul(round + 1) % 11) as f64 - 5.0);
            let reference = a.spmv_seq_alloc(&v).unwrap();
            let mut u = vec![0.0f64; 200];
            p.spmv_into(&a, &v, &mut u);
            assert_eq!(u, reference, "round {round}: stale value slab");
        }
    }

    #[test]
    fn padding_ratio_reflects_skew() {
        // 7 empty rows and one 64-NNZ row in one chunk: slots = 8·64.
        let mut coo = crate::CooMatrix::<f64>::new(8, 64);
        for j in 0..64 {
            coo.push(0, j, 1.0 + j as f64);
        }
        let a = coo.to_csr();
        let p = PackedSell::from_rows(&a, &all_rows(&a), 8);
        assert_eq!(p.slots(), 8 * 64);
        assert!((p.padding_ratio() - 8.0).abs() < 1e-12);
        // Uniform rows pack with no padding at all.
        let b = gen::random_uniform::<f64>(64, 64, 4, 4, 1);
        let q = PackedSell::from_rows(&b, &all_rows(&b), 8);
        assert_eq!(q.padding_ratio(), 1.0);
    }

    #[test]
    fn empty_rows_and_empty_subsets_are_fine() {
        let a = CsrMatrix::<f64>::zeros(10, 10);
        let p = PackedSell::from_rows(&a, &all_rows(&a), 8);
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.padding_ratio(), 1.0);
        let v = vec![1.0f64; 10];
        let mut u = vec![9.0f64; 10];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, vec![0.0f64; 10], "empty rows must write zeros");
        let q = PackedSell::from_rows(&a, &[], 4);
        assert_eq!(q.n_chunks(), 0);
        q.spmv_into(&a, &v, &mut [0.0f64; 10]);
    }

    #[test]
    fn check_against_catches_tampering() {
        let a = gen::random_uniform::<f64>(40, 40, 1, 5, 9);
        let rows = all_rows(&a);
        let mut p = PackedSell::from_rows(&a, &rows, 8);
        p.check_against(&a, &rows).unwrap();
        // A wrong source index must be named.
        let slot = p.src.iter().position(|&s| s != SRC_PAD).unwrap();
        p.src[slot] = p.src[slot].wrapping_add(1);
        assert!(p.check_against(&a, &rows).is_err());
    }

    #[test]
    fn spmm_chunks_matches_per_column_spmv_bit_for_bit() {
        let a = gen::mixture::<f64>(
            300,
            420,
            &[
                RowRegime::new(1, 4, 0.5),
                RowRegime::new(10, 40, 0.4),
                RowRegime::new(80, 150, 0.1),
            ],
            true,
            13,
        );
        let rows = all_rows(&a);
        for chunk in [3, 8] {
            let p = PackedSell::from_rows(&a, &rows, chunk);
            // A strided row-major block: 4 live columns inside stride 6,
            // starting at column offset 1.
            const KB: usize = 4;
            let (stride, col0) = (6usize, 1usize);
            let x: Vec<f64> = (0..a.n_cols() * stride)
                .map(|i| ((i * 7) % 23) as f64 - 11.0)
                .collect();
            let mut batched = vec![f64::NAN; a.n_rows() * KB];
            p.with_slab(|slab| {
                p.spmm_chunks::<KB, _>(slab, 0, p.n_chunks(), &x, stride, col0, |r, sums| {
                    batched[r * KB..(r + 1) * KB].copy_from_slice(&sums);
                });
            });
            for kk in 0..KB {
                let v: Vec<f64> = (0..a.n_cols()).map(|c| x[c * stride + col0 + kk]).collect();
                let mut single = vec![f64::NAN; a.n_rows()];
                p.with_slab(|slab| {
                    p.spmv_chunks(slab, 0, p.n_chunks(), &v, |r, s| single[r] = s);
                });
                for r in 0..a.n_rows() {
                    assert_eq!(
                        batched[r * KB + kk],
                        single[r],
                        "chunk {chunk} row {r} col {kk} diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn sort_rows_refreshes_columns_with_values() {
        // Unsorted rows: packing captures the pre-sort (col, val) order.
        // `sort_rows` permutes pairs within each row and bumps the value
        // generation; the slab refresh must re-gather *columns* too, or
        // stale columns pair with fresh values.
        let mut row_ptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in 0..6usize {
            cols.push(((r + 3) % 6) as u32);
            cols.push((r % 6) as u32);
            vals.push(10.0 + r as f64);
            vals.push(1.0 + r as f64);
            row_ptr.push(cols.len());
        }
        let mut a = CsrMatrix::<f64>::from_parts(6, 6, row_ptr, cols, vals).unwrap();
        assert!(!a.rows_sorted());
        let rows = all_rows(&a);
        let p = PackedSell::from_rows(&a, &rows, 4);
        p.check_against(&a, &rows).unwrap();

        a.sort_rows();
        let v: Vec<f64> = (0..6).map(|i| (i + 1) as f64).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; 6];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, reference, "slab went stale after sort_rows");
        p.check_against(&a, &rows).unwrap();
    }

    #[test]
    fn nan_and_inf_inputs_do_not_leak_through_padding() {
        // A skewed chunk with heavy padding; v[0] = inf would poison any
        // kernel that multiplies padding slots.
        let mut coo = crate::CooMatrix::<f64>::new(8, 16);
        for j in 1..16 {
            coo.push(0, j, 2.0);
        }
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let mut v = vec![1.0f64; 16];
        v[0] = f64::INFINITY;
        let p = PackedSell::from_rows(&a, &(0..8).collect::<Vec<u32>>(), 8);
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let mut u = vec![0.0f64; 8];
        p.spmv_into(&a, &v, &mut u);
        assert_eq!(u, reference, "padding participated in the sum");
        assert!(u[2..].iter().all(|&x| x == 0.0));
    }
}
