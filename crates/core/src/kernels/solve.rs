//! Native row kernels for level-scheduled triangular solves.
//!
//! A triangular solve reads and writes the *same* vector `x`: row `i`
//! gathers `x[c]` for its off-diagonal columns (all completed in
//! earlier steps, by the dependency-order proof) and then writes
//! `x[i]`. Within one parallel step, workers write disjoint rows and
//! read only rows finished in earlier steps — the barrier in
//! `stepped_for_each` orders those writes before these reads — so a
//! shared read/write raw-pointer window ([`XVec`]) over `x` is sound
//! for exactly the schedules the prover certifies.
//!
//! The per-row arithmetic is *identical* to `spmv_sparse::sptrsv_seq`
//! (subtract off-diagonal products in storage order, one divide at the
//! end), so any dependency-respecting schedule reproduces the
//! sequential reference bit for bit.

use spmv_sparse::Scalar;

/// Shared read/write window over the solution vector `x`, passable to
/// a barrier-stepped scope. `Copy`, so each worker keeps its own
/// handle.
// SAFETY: the pointer is only read at indices completed in earlier
// barrier-separated steps and written at rows the dependency-order
// prover assigned to exactly one worker of the current step, so
// cross-thread use never races.
#[derive(Clone, Copy)]
pub(crate) struct XVec<T> {
    ptr: *mut T,
    #[cfg(debug_assertions)]
    len: usize,
}

// SAFETY: see the type-level invariant above — disjoint-row writes and
// happens-before-ordered reads only, inside a joined scope.
unsafe impl<T: Send> Send for XVec<T> {}
// SAFETY: as above; shared access is index-disjoint per step.
unsafe impl<T: Send> Sync for XVec<T> {}

impl<T: Scalar> XVec<T> {
    pub(crate) fn new(x: &mut [T]) -> Self {
        Self {
            ptr: x.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: x.len(),
        }
    }

    /// # Safety
    ///
    /// `i` must be in bounds for the vector this window was built
    /// from, and the slot must not be written concurrently: either it
    /// was finalised in an earlier barrier-separated step, or it is
    /// owned by this worker in the current step.
    #[inline]
    pub(crate) unsafe fn read(&self, i: usize) -> T {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len, "x read {i} out of bounds {}", self.len);
        // SAFETY: in bounds and race-free per the caller contract.
        unsafe { *self.ptr.add(i) }
    }

    /// # Safety
    ///
    /// `i` must be in bounds for the vector this window was built
    /// from, and no other thread may read or write index `i` during
    /// the current step (the dependency-order proof guarantees both
    /// for scheduled rows).
    #[inline]
    pub(crate) unsafe fn write(&self, i: usize, val: T) {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len, "x write {i} out of bounds {}", self.len);
        // SAFETY: in bounds and exclusively owned per the caller
        // contract.
        unsafe { *self.ptr.add(i) = val };
    }
}

/// Solve the listed rows against the plan's structure snapshot:
/// `x[r] = (b[r] - Σ_{c != r} a[r,c] * x[c]) / a[r,r]`, products
/// subtracted in storage order — bit-for-bit the arithmetic of
/// `sptrsv_seq`. A structurally missing diagonal (never present in a
/// verified schedule) divides by `T::ONE`, keeping the output finite.
///
/// # Safety
///
/// Every off-diagonal column of every listed row must already be
/// finalised in `x` (earlier steps, or earlier in this worker's own
/// serial chunk), no other thread may touch the listed rows during
/// this call, and `row_ptr`/`col_idx` must describe a structure whose
/// rows and columns are in bounds for `x`/`b`/`values` — all of which
/// the dependency-order prover establishes for certified schedules.
pub(crate) unsafe fn solve_rows<T: Scalar>(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[T],
    b: &[T],
    x: XVec<T>,
    rows: &[u32],
) {
    for &r in rows {
        let i = r as usize;
        let (start, end) = (row_ptr[i], row_ptr[i + 1]);
        let cols = &col_idx[start..end];
        let vals = &values[start..end];
        let mut sum = b[i];
        let mut diag = T::ONE;
        for (&c, &v) in cols.iter().zip(vals) {
            let ci = c as usize;
            if ci == i {
                diag = v;
            } else {
                // SAFETY: `ci` is a proven dependency of row `i`,
                // finalised before this step (caller contract).
                sum = sum - v * unsafe { x.read(ci) };
            }
        }
        // SAFETY: row `i` is owned by this worker in this step.
        unsafe { x.write(i, sum / diag) };
    }
}
