//! Uniform random sparsity: every row draws its NNZ uniformly from a
//! range and places them in random distinct columns. The simplest
//! "no structure" workload, and the backbone of the training corpus.

use super::{gen_value, sample_distinct_columns, seeded_rng, RowsBuilder};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// Generate an `m × n` matrix whose rows have between `min_nnz` and
/// `max_nnz` (inclusive) non-zeros in uniformly random columns.
///
/// # Panics
///
/// Panics if `min_nnz > max_nnz`.
pub fn random_uniform<T: Scalar>(
    m: usize,
    n: usize,
    min_nnz: usize,
    max_nnz: usize,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(min_nnz <= max_nnz, "min_nnz > max_nnz");
    let mut rng = seeded_rng(seed);
    let mut b = RowsBuilder::with_capacity(n, m, m * (min_nnz + max_nnz) / 2);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..m {
        let k = rng.gen_range(min_nnz..=max_nnz).min(n);
        sample_distinct_columns(&mut rng, n, k, &mut cols);
        vals.clear();
        vals.extend(cols.iter().map(|_| gen_value::<T>(&mut rng)));
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_bounds_hold() {
        let a = random_uniform::<f64>(100, 80, 2, 6, 1);
        assert_eq!(a.n_rows(), 100);
        assert_eq!(a.n_cols(), 80);
        for i in 0..a.n_rows() {
            let r = a.row_nnz(i);
            assert!((2..=6).contains(&r), "row {i} has {r} nnz");
        }
        assert!(a.rows_sorted());
    }

    #[test]
    fn fixed_nnz_per_row() {
        let a = random_uniform::<f32>(30, 30, 4, 4, 2);
        assert!((0..30).all(|i| a.row_nnz(i) == 4));
        assert_eq!(a.nnz(), 120);
    }

    #[test]
    fn nnz_clamped_by_columns() {
        let a = random_uniform::<f64>(5, 3, 10, 10, 3);
        assert!((0..5).all(|i| a.row_nnz(i) == 3));
    }

    #[test]
    fn values_are_nonzero() {
        let a = random_uniform::<f64>(20, 20, 1, 5, 4);
        assert!(a.values().iter().all(|&v| (0.1..=1.0).contains(&v)));
    }
}
