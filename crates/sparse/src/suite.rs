//! Synthetic analogues of the 16 representative matrices of Table II.
//!
//! The paper evaluates on 16 UF-collection matrices spanning structural,
//! graph, combinatorial, materials, chemistry and CFD workloads. We cannot
//! download the collection, so each entry here is generated with the
//! domain-appropriate generator from [`crate::gen`], scaled so the largest
//! analogue stays under ~2 M non-zeros (the paper's `HV15R` has 283 M).
//! The *row-length distribution and shape* — which is what drives binning
//! and kernel selection — is preserved; scale factors are recorded per
//! entry and surfaced by the Table II reproduction binary.

use crate::csr::CsrMatrix;
use crate::gen;
use crate::gen::mixture::RowRegime;

/// Application domain of a suite matrix (the "Kind" column of Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixKind {
    /// FEM / structural problems.
    Structural,
    /// Undirected graphs.
    Graph,
    /// Combinatorial / incidence problems.
    Combinatorial,
    /// Materials problems.
    Materials,
    /// Counter-example problems.
    CounterExample,
    /// Road networks.
    RoadNetwork,
    /// Theoretical / quantum chemistry.
    QuantumChemistry,
    /// Computational fluid dynamics.
    Cfd,
    /// 2D/3D mesh problems.
    Mesh,
}

impl MatrixKind {
    /// Human-readable kind string matching Table II.
    pub fn label(self) -> &'static str {
        match self {
            MatrixKind::Structural => "Structural problem",
            MatrixKind::Graph => "Undirected graph",
            MatrixKind::Combinatorial => "Combinatorial problem",
            MatrixKind::Materials => "Materials problem",
            MatrixKind::CounterExample => "Counter-example problem",
            MatrixKind::RoadNetwork => "Road network (undirected graph)",
            MatrixKind::QuantumChemistry => "Theoretical/quantum chemistry problem",
            MatrixKind::Cfd => "CFD problem",
            MatrixKind::Mesh => "2D/3D problem",
        }
    }
}

/// One entry of the representative-matrix suite.
pub struct SuiteMatrix {
    /// UF-collection name of the matrix this entry models.
    pub name: &'static str,
    /// Application domain.
    pub kind: MatrixKind,
    /// Rows of the original matrix (Table II "#Row").
    pub paper_rows: usize,
    /// Columns of the original matrix.
    pub paper_cols: usize,
    /// Non-zeros of the original matrix.
    pub paper_nnz: usize,
    /// Why the chosen generator matches the original's sparsity regime.
    pub rationale: &'static str,
    build: fn(u64) -> CsrMatrix<f32>,
}

impl SuiteMatrix {
    /// Generate the analogue deterministically (the suite uses a fixed
    /// per-entry seed so every run sees identical matrices).
    pub fn generate(&self) -> CsrMatrix<f32> {
        (self.build)(self.seed())
    }

    /// Per-entry deterministic seed derived from the name.
    fn seed(&self) -> u64 {
        self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        })
    }

    /// Linear scale factor versus the original (rows generated / rows in
    /// the paper).
    pub fn scale_factor(&self) -> f64 {
        self.generate_dims().0 as f64 / self.paper_rows as f64
    }

    /// Dimensions of the generated analogue without building the values.
    pub fn generate_dims(&self) -> (usize, usize) {
        let a = self.generate();
        (a.n_rows(), a.n_cols())
    }
}

/// The 16-matrix suite, in Table II's (alphabetical) order.
pub fn suite() -> Vec<SuiteMatrix> {
    vec![
        SuiteMatrix {
            name: "apache1",
            kind: MatrixKind::Structural,
            paper_rows: 81_000,
            paper_cols: 81_000,
            paper_nnz: 542_000,
            rationale: "3-D finite-difference structural problem: uniform short rows (~7 NNZ) near the diagonal; modelled by a 7-point-wide band",
            build: |s| gen::banded(81_000, 3, s),
        },
        SuiteMatrix {
            name: "bfly",
            kind: MatrixKind::Graph,
            paper_rows: 49_000,
            paper_cols: 49_000,
            paper_nnz: 197_000,
            rationale: "butterfly graph sequence: 4-regular graph, every row exactly 4 NNZ",
            build: |s| gen::random_uniform(49_000, 49_000, 4, 4, s),
        },
        SuiteMatrix {
            name: "ch7-9-b3",
            kind: MatrixKind::Combinatorial,
            paper_rows: 106_000,
            paper_cols: 18_000,
            paper_nnz: 423_000,
            rationale: "simplicial boundary operator: tall rectangular, exactly 4 NNZ per row",
            build: |s| gen::incidence(106_000, 18_000, 4, s),
        },
        SuiteMatrix {
            name: "crankseg_2",
            kind: MatrixKind::Structural,
            paper_rows: 64_000,
            paper_cols: 64_000,
            paper_nnz: 14_000_000,
            rationale: "FEM crankshaft: uniformly very long rows (~220 NNZ); scaled 0.14× in rows to cap NNZ at 2M, block-coupled dense node blocks",
            build: |s| gen::block_structured(1_500, 6, 36, s), // 9000 rows × 222 nnz
        },
        SuiteMatrix {
            name: "cryg10000",
            kind: MatrixKind::Materials,
            paper_rows: 10_000,
            paper_cols: 10_000,
            paper_nnz: 50_000,
            rationale: "crystal growth eigenproblem: narrow band, ~5 NNZ per row",
            build: |s| gen::banded(10_000, 2, s),
        },
        SuiteMatrix {
            name: "D6-6",
            kind: MatrixKind::Combinatorial,
            paper_rows: 120_000,
            paper_cols: 24_000,
            paper_nnz: 147_000,
            rationale: "differential boundary matrix: extremely short rows (avg 1.2 NNZ)",
            build: |s| {
                gen::mixture(
                    120_000,
                    24_000,
                    &[RowRegime::new(1, 1, 0.8), RowRegime::new(2, 2, 0.2)],
                    true,
                    s,
                )
            },
        },
        SuiteMatrix {
            name: "denormal",
            kind: MatrixKind::CounterExample,
            paper_rows: 89_000,
            paper_cols: 89_000,
            paper_nnz: 1_000_000,
            rationale: "counter-example problem with regular medium rows (~12 NNZ), banded",
            build: |s| gen::banded(89_000, 5, s),
        },
        SuiteMatrix {
            name: "dictionary28",
            kind: MatrixKind::Graph,
            paper_rows: 53_000,
            paper_cols: 53_000,
            paper_nnz: 178_000,
            rationale: "word-adjacency graph: power-law degrees, mostly tiny rows with a hub tail",
            build: |s| gen::powerlaw(53_000, 1, 40, 2.4, s),
        },
        SuiteMatrix {
            name: "europe_osm",
            kind: MatrixKind::RoadNetwork,
            paper_rows: 51_000_000,
            paper_cols: 51_000_000,
            paper_nnz: 108_000_000,
            rationale: "OpenStreetMap road graph: avg degree 2.1; scaled 0.01× (510K nodes) preserving the lattice-with-shortcuts structure",
            build: |s| gen::road_network(715, 715, 0.53, s),
        },
        SuiteMatrix {
            name: "Ga3As3H12",
            kind: MatrixKind::QuantumChemistry,
            paper_rows: 61_000,
            paper_cols: 61_000,
            paper_nnz: 6_000_000,
            rationale: "pseudopotential Hamiltonian: long irregular rows (avg ~98, max >1000); scaled 0.2× in rows to cap NNZ, mixture of medium/long/huge regimes",
            build: |s| {
                gen::mixture(
                    12_000,
                    12_000,
                    &[
                        RowRegime::new(30, 100, 0.60),
                        RowRegime::new(100, 300, 0.32),
                        RowRegime::new(300, 1_400, 0.08),
                    ],
                    true,
                    s,
                )
            },
        },
        SuiteMatrix {
            name: "HV15R",
            kind: MatrixKind::Cfd,
            paper_rows: 2_000_000,
            paper_cols: 2_000_000,
            paper_nnz: 283_000_000,
            rationale: "3-D engine-fan CFD: uniform very long rows (~141 NNZ); scaled 0.007× to 14K rows of 7-wide blocks",
            build: |s| gen::block_structured(2_000, 7, 19, s), // 14000 rows × 140 nnz
        },
        SuiteMatrix {
            name: "pcrystk02",
            kind: MatrixKind::Materials,
            paper_rows: 14_000,
            paper_cols: 14_000,
            paper_nnz: 969_000,
            rationale: "crystal stiffness matrix: uniform ~69-NNZ rows of coupled 3-blocks",
            build: |s| gen::block_structured(4_666, 3, 22, s), // 13998 rows × 69 nnz
        },
        SuiteMatrix {
            name: "pkustk14",
            kind: MatrixKind::Structural,
            paper_rows: 152_000,
            paper_cols: 152_000,
            paper_nnz: 15_000_000,
            rationale: "tall-building stiffness: uniform ~99-NNZ rows; scaled 0.13× in rows",
            build: |s| gen::block_structured(4_000, 5, 19, s), // 20000 rows × 100 nnz
        },
        SuiteMatrix {
            name: "roadNet-CA",
            kind: MatrixKind::RoadNetwork,
            paper_rows: 2_000_000,
            paper_cols: 2_000_000,
            paper_nnz: 6_000_000,
            rationale: "California road network: avg degree 2.8; scaled 0.1× (200K nodes)",
            build: |s| gen::road_network(450, 450, 0.70, s),
        },
        SuiteMatrix {
            name: "shar_te2-b2",
            kind: MatrixKind::Combinatorial,
            paper_rows: 200_000,
            paper_cols: 17_000,
            paper_nnz: 601_000,
            rationale: "simplicial boundary operator: exactly 3 NNZ per row, very tall",
            build: |s| gen::incidence(200_000, 17_000, 3, s),
        },
        SuiteMatrix {
            name: "whitaker3_dual",
            kind: MatrixKind::Mesh,
            paper_rows: 19_000,
            paper_cols: 19_000,
            paper_nnz: 57_000,
            rationale: "dual of a triangular mesh: 3-regular adjacency",
            build: |s| gen::random_uniform(19_000, 19_000, 3, 3, s),
        },
    ]
}

/// Look one suite entry up by its UF name.
pub fn by_name(name: &str) -> Option<SuiteMatrix> {
    suite().into_iter().find(|m| m.name == name)
}

/// The six matrices on which the paper's framework loses to CSR-Adaptive
/// (§IV-C "Grouping to Single Bin").
pub const SINGLE_BIN_CASES: [&str; 6] = [
    "crankseg_2",
    "D6-6",
    "dictionary28",
    "europe_osm",
    "Ga3As3H12",
    "roadNet-CA",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureSet, MatrixFeatures};

    #[test]
    fn suite_has_sixteen_entries_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 16);
        let mut names: Vec<_> = s.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn single_bin_cases_exist_in_suite() {
        for name in SINGLE_BIN_CASES {
            assert!(by_name(name).is_some(), "{name} missing from suite");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = by_name("cryg10000").unwrap();
        assert_eq!(m.generate(), m.generate());
    }

    #[test]
    fn nnz_stays_under_cap() {
        for m in suite() {
            let a = m.generate();
            assert!(
                a.nnz() <= 2_200_000,
                "{} has {} nnz (> 2.2M cap)",
                m.name,
                a.nnz()
            );
        }
    }

    #[test]
    fn avg_nnz_matches_the_original_regime() {
        // The point of the suite: per-row workloads mirror the originals.
        let checks: &[(&str, f64, f64)] = &[
            ("apache1", 5.0, 8.0),
            ("bfly", 3.8, 4.2),
            ("ch7-9-b3", 3.8, 4.2),
            ("crankseg_2", 180.0, 260.0),
            ("cryg10000", 4.0, 5.5),
            ("D6-6", 1.0, 1.5),
            ("dictionary28", 1.5, 5.0),
            ("europe_osm", 1.6, 2.6),
            ("Ga3As3H12", 80.0, 220.0),
            ("HV15R", 120.0, 160.0),
            ("pcrystk02", 55.0, 80.0),
            ("pkustk14", 85.0, 115.0),
            ("roadNet-CA", 2.0, 3.6),
            ("shar_te2-b2", 2.8, 3.2),
            ("whitaker3_dual", 2.8, 3.2),
        ];
        for &(name, lo, hi) in checks {
            let m = by_name(name).unwrap();
            let a = m.generate();
            let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
            assert!(
                f.avg_nnz >= lo && f.avg_nnz <= hi,
                "{name}: avg_nnz = {} not in [{lo}, {hi}]",
                f.avg_nnz
            );
        }
    }

    #[test]
    fn rectangular_entries_keep_their_aspect() {
        let m = by_name("shar_te2-b2").unwrap();
        let a = m.generate();
        assert!(a.n_rows() > 10 * a.n_cols());
    }

    #[test]
    fn ga3as3h12_is_irregular() {
        let a = by_name("Ga3As3H12").unwrap().generate();
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert!(f.max_nnz > 5 * f.avg_nnz as usize);
        assert!(f.var_nnz > 1000.0);
    }
}
