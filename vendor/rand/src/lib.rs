//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — with no
//! transitive dependencies. The generator is xoshiro256++ seeded through
//! SplitMix64: deterministic, fast, and statistically solid for the
//! synthetic-matrix and ML workloads here. Streams differ from upstream
//! `StdRng` (ChaCha12), which is fine: all in-repo consumers treat seeds
//! as opaque reproducibility handles, never as cross-crate fixtures.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose whole state is derived from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching upstream behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(u32, u64, usize, i32, i64);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Uniform value in `[0, bound)` by rejection sampling (unbiased; the
/// rejection zone is at most one part in 2^63 for the spans used here).
#[inline]
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (`f64` in `[0,1)`, `bool`, raw
    /// `u32`/`u64` bits).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(3u32..=17);
            assert!((3..=17).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.1f64..=1.0);
            assert!((0.1..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 5];
        for _ in 0..1000 {
            seen_inc[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_is_none_only_for_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
