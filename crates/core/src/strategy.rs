//! Parallelisation strategies: the (binning scheme, kernel-per-bin)
//! pairs the framework searches over, predicts, and executes.

use crate::binning::BinningScheme;
use crate::kernels::KernelId;

/// A complete parallelisation strategy for one matrix: how rows are
/// binned and which kernel processes each bin.
///
/// `kernels[binId]` gives the kernel for bin `binId`; bins that end up
/// empty are skipped at execution time (no launch, no cost).
#[derive(Clone, Debug, PartialEq)]
pub struct Strategy {
    /// The binning scheme.
    pub binning: BinningScheme,
    /// Kernel selection, indexed by bin id.
    pub kernels: Vec<KernelId>,
}

impl Strategy {
    /// A single-bin strategy running one kernel over the whole matrix —
    /// the "default SpMV" the paper compares against in Figure 6 and the
    /// §IV-C single-bin fallback.
    pub fn single_kernel(kernel: KernelId) -> Self {
        Self {
            binning: BinningScheme::Single,
            kernels: vec![kernel],
        }
    }

    /// Kernel assigned to `bin_id` (falls back to the last entry, which
    /// is always the overflow bin's kernel).
    pub fn kernel_for(&self, bin_id: usize) -> KernelId {
        self.kernels
            .get(bin_id)
            .copied()
            .or_else(|| self.kernels.last().copied())
            .unwrap_or(KernelId::Serial)
    }

    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        let mut used: Vec<String> = Vec::new();
        let mut last: Option<KernelId> = None;
        for (b, &k) in self.kernels.iter().enumerate() {
            if last != Some(k) {
                used.push(format!("bin{b}+:{k}"));
                last = Some(k);
            }
        }
        format!("{} [{}]", self.binning.describe(), used.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_kernel_strategy_shape() {
        let s = Strategy::single_kernel(KernelId::Vector);
        assert_eq!(s.binning, BinningScheme::Single);
        assert_eq!(s.kernels.len(), 1);
        assert_eq!(s.kernel_for(0), KernelId::Vector);
    }

    #[test]
    fn kernel_for_clamps_to_last() {
        let s = Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial, KernelId::Subvector(4)],
        };
        assert_eq!(s.kernel_for(0), KernelId::Serial);
        assert_eq!(s.kernel_for(1), KernelId::Subvector(4));
        assert_eq!(s.kernel_for(99), KernelId::Subvector(4));
    }

    #[test]
    fn describe_compresses_runs() {
        let s = Strategy {
            binning: BinningScheme::Coarse { u: 100 },
            kernels: vec![KernelId::Serial, KernelId::Serial, KernelId::Vector],
        };
        let d = s.describe();
        assert!(d.contains("U=100"), "{d}");
        assert!(d.contains("serial"), "{d}");
        assert!(d.contains("vector"), "{d}");
    }
}
