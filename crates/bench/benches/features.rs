//! Criterion microbench: Table I feature extraction (the per-matrix cost
//! the runtime pays before predicting a strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_sparse::{gen, FeatureSet, MatrixFeatures};

fn bench_features(c: &mut Criterion) {
    let a = gen::powerlaw::<f32>(100_000, 1, 300, 2.1, 4);
    let mut group = c.benchmark_group("features");
    group.sample_size(30);
    for (name, set) in [
        ("table1", FeatureSet::TableI),
        ("extended", FeatureSet::Extended),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &set, |b, &set| {
            b.iter(|| MatrixFeatures::extract(&a, set))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
