//! Incremental retraining over measured feedback.
//!
//! The offline pipeline trains once from an exhaustive oracle sweep and
//! ships a frozen rule-set. The online loop produces a trickle of
//! better evidence: `(features, measured_best)` pairs where
//! `measured_best` was decided by *timing real candidates on the live
//! machine*, not by the simulator. [`IncrementalLearner`] accumulates
//! those pairs and periodically refits the C4.5 tree + rule-set over
//! the weighted history.
//!
//! Two guards keep the loop safe:
//!
//! * **Recency decay** — every retrain multiplies the weight of the
//!   examples it already had by a decay factor and drops examples whose
//!   weight falls below a floor. Fresh measurements therefore dominate
//!   without a hard cutover, and the history stays bounded.
//! * **The lint gate** — a refitted rule-set is installed only if the
//!   static rule linter ([`crate::lint::lint_ruleset`]) reports no
//!   [`Severity::Error`] findings. A degenerate refit (e.g. from a
//!   poisoned or too-small batch) is rejected and the previous model —
//!   possibly the offline one the learner was seeded with — keeps
//!   serving. The dispatcher never observes a model the linter would
//!   refuse to load from disk.

use crate::dataset::{AttrSpec, Dataset};
use crate::lint::{lint_ruleset, LintOptions, Severity};
use crate::rules::RuleSet;
use crate::tree::{DecisionTree, TreeConfig};

/// Knobs for the incremental loop.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Multiplier applied to every already-present example's weight at
    /// each retrain (fresh examples enter at weight 1.0).
    pub decay: f64,
    /// Examples whose decayed weight falls below this are dropped —
    /// the history-size bound.
    pub min_weight: f64,
    /// No refit below this many retained examples (a tree fit on two
    /// points is noise).
    pub min_examples: usize,
    /// Tree induction hyper-parameters for the refit.
    pub tree: TreeConfig,
    /// Confidence factor for rule extraction (C5.0's `-c`).
    pub cf: f64,
    /// Lint gate options; `class_limit` defaults to the learner's own
    /// class count via [`IncrementalLearner::new`] when left `None`.
    pub lint: LintOptions,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            decay: 0.9,
            min_weight: 0.05,
            min_examples: 8,
            tree: TreeConfig::default(),
            cf: 0.25,
            lint: LintOptions::default(),
        }
    }
}

/// Why (or why not) a [`IncrementalLearner::retrain_incremental`] call
/// changed the served model.
#[derive(Clone, Debug, PartialEq)]
pub enum RetrainOutcome {
    /// Not enough retained history to refit; nothing changed.
    TooFewExamples {
        /// Examples currently retained.
        have: usize,
        /// The configured floor.
        need: usize,
    },
    /// The refit passed the lint gate and is now the served model.
    Accepted {
        /// Rules in the installed rule-set.
        rules: usize,
        /// Non-fatal linter findings it carries.
        warnings: usize,
    },
    /// The refit produced `Error`-severity findings; the previous model
    /// (if any) keeps serving.
    RejectedByLinter {
        /// Fatal findings the candidate produced.
        errors: usize,
    },
}

/// One retained observation: a feature row, the class measurement chose,
/// and its decayed weight.
#[derive(Clone, Debug)]
struct Example {
    row: Vec<f64>,
    label: usize,
    weight: f64,
}

/// Accumulates measured `(features, best)` pairs and refits the
/// rule-set model on demand, behind a lint gate. See the module docs.
#[derive(Debug)]
pub struct IncrementalLearner {
    attrs: Vec<AttrSpec>,
    class_names: Vec<String>,
    examples: Vec<Example>,
    model: Option<RuleSet>,
    config: OnlineConfig,
    retrains: u64,
    rejections: u64,
}

impl IncrementalLearner {
    /// An empty learner for the given schema. `config.lint.class_limit`
    /// is defaulted to the schema's class count if unset, so the gate
    /// always checks against the universe this learner dispatches into.
    pub fn new(attrs: Vec<AttrSpec>, class_names: Vec<String>, mut config: OnlineConfig) -> Self {
        assert!(!class_names.is_empty(), "need at least one class");
        assert!(
            (0.0..=1.0).contains(&config.decay),
            "decay must be in [0, 1]"
        );
        if config.lint.class_limit.is_none() {
            config.lint.class_limit = Some(class_names.len());
        }
        Self {
            attrs,
            class_names,
            examples: Vec::new(),
            model: None,
            config,
            retrains: 0,
            rejections: 0,
        }
    }

    /// Seed the learner with an already-trained (e.g. offline) model
    /// that serves until the first accepted refit replaces it.
    pub fn with_model(mut self, model: RuleSet) -> Self {
        self.model = Some(model);
        self
    }

    /// Record one measured observation: on `features`, timing found
    /// class `measured_best` fastest. Enters at weight 1.0.
    ///
    /// # Panics
    ///
    /// Panics if the row width or label is out of the schema's range
    /// (same contract as [`Dataset::push`]).
    pub fn observe(&mut self, features: &[f64], measured_best: usize) {
        assert_eq!(features.len(), self.attrs.len(), "row width mismatch");
        assert!(measured_best < self.class_names.len(), "label out of range");
        self.examples.push(Example {
            row: features.to_vec(),
            label: measured_best,
            weight: 1.0,
        });
    }

    /// Retained observations.
    pub fn n_examples(&self) -> usize {
        self.examples.len()
    }

    /// The currently served model (`None` until seeded or first
    /// accepted refit).
    pub fn model(&self) -> Option<&RuleSet> {
        self.model.as_ref()
    }

    /// Predict with the served model (`None` when there is none yet).
    pub fn predict(&self, row: &[f64]) -> Option<usize> {
        Some(self.model.as_ref()?.predict(row))
    }

    /// `(accepted refits, linter rejections)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.retrains, self.rejections)
    }

    /// Decay the history, refit the tree + rule-set over what remains,
    /// and install the result iff the lint gate passes. See the module
    /// docs for the two guards; returns what happened.
    pub fn retrain_incremental(&mut self) -> RetrainOutcome {
        // Age everything that was already here. Doing this first means
        // repeated retrains without fresh observations still converge
        // the history toward empty rather than refitting forever on
        // stale evidence.
        for e in &mut self.examples {
            e.weight *= self.config.decay;
        }
        let floor = self.config.min_weight;
        self.examples.retain(|e| e.weight >= floor);

        if self.examples.len() < self.config.min_examples {
            return RetrainOutcome::TooFewExamples {
                have: self.examples.len(),
                need: self.config.min_examples,
            };
        }

        let mut data = Dataset::new(self.attrs.clone(), self.class_names.clone());
        for e in &self.examples {
            data.push_weighted(&e.row, e.label, e.weight);
        }
        let tree = DecisionTree::fit(&data, &self.config.tree);
        let candidate = RuleSet::from_tree(&tree, &data, self.config.cf);

        let findings = lint_ruleset(&candidate, &self.config.lint);
        let errors = findings
            .iter()
            .filter(|f| f.severity() == Severity::Error)
            .count();
        if errors > 0 {
            self.rejections += 1;
            return RetrainOutcome::RejectedByLinter { errors };
        }
        self.retrains += 1;
        self.model = Some(candidate);
        RetrainOutcome::Accepted {
            rules: self.model.as_ref().map(|m| m.rules().len()).unwrap_or(0),
            warnings: findings.len() - errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> (Vec<AttrSpec>, Vec<String>) {
        (
            vec![AttrSpec::numeric("nnz_per_row")],
            vec!["serial".into(), "vector".into()],
        )
    }

    fn learner() -> IncrementalLearner {
        let (attrs, classes) = schema();
        IncrementalLearner::new(attrs, classes, OnlineConfig::default())
    }

    #[test]
    fn refuses_to_fit_on_too_little_evidence() {
        let mut l = learner();
        l.observe(&[1.0], 0);
        let out = l.retrain_incremental();
        assert_eq!(out, RetrainOutcome::TooFewExamples { have: 1, need: 8 });
        assert!(l.model().is_none());
    }

    #[test]
    fn learns_a_separable_measured_mapping() {
        let mut l = learner();
        for i in 0..10 {
            l.observe(&[i as f64], 0);
            l.observe(&[100.0 + i as f64], 1);
        }
        match l.retrain_incremental() {
            RetrainOutcome::Accepted { rules, .. } => assert!(rules >= 1),
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert_eq!(l.predict(&[3.0]), Some(0));
        assert_eq!(l.predict(&[105.0]), Some(1));
        assert_eq!(l.counters(), (1, 0));
    }

    #[test]
    fn decay_lets_fresh_measurements_overturn_stale_ones() {
        let (attrs, classes) = schema();
        let mut l = IncrementalLearner::new(
            attrs,
            classes,
            OnlineConfig {
                decay: 0.5,
                min_weight: 0.05,
                min_examples: 4,
                ..OnlineConfig::default()
            },
        );
        // Old regime: everything measured best as class 0.
        for i in 0..8 {
            l.observe(&[i as f64], 0);
        }
        assert!(matches!(
            l.retrain_incremental(),
            RetrainOutcome::Accepted { .. }
        ));
        assert_eq!(l.predict(&[4.0]), Some(0));
        // Regime change: the same region now measures best as class 1.
        // After a few decayed retrains with fresh contradicting
        // evidence, the new regime must win.
        for round in 0..4 {
            for i in 0..8 {
                l.observe(&[i as f64 + round as f64 * 0.1], 1);
            }
            l.retrain_incremental();
        }
        assert_eq!(l.predict(&[4.0]), Some(1));
    }

    #[test]
    fn history_stays_bounded_by_the_weight_floor() {
        let (attrs, classes) = schema();
        let mut l = IncrementalLearner::new(
            attrs,
            classes,
            OnlineConfig {
                decay: 0.5,
                min_weight: 0.1,
                min_examples: 2,
                ..OnlineConfig::default()
            },
        );
        for i in 0..8 {
            l.observe(&[i as f64], (i % 2) as usize);
        }
        // 0.5^4 = 0.0625 < 0.1: four retrains fully age out the batch.
        for _ in 0..4 {
            l.retrain_incremental();
        }
        assert_eq!(l.n_examples(), 0);
    }

    #[test]
    fn lint_gate_keeps_the_previous_model_on_rejection() {
        let (attrs, classes) = schema();
        // Gate configured for a 1-class universe while the schema
        // allows 2: any refit that ever predicts class 1 must be
        // rejected, exactly as a stale on-disk model would be.
        let mut l = IncrementalLearner::new(
            attrs,
            classes,
            OnlineConfig {
                min_examples: 4,
                lint: LintOptions {
                    class_limit: Some(1),
                    ..LintOptions::default()
                },
                ..OnlineConfig::default()
            },
        );
        for i in 0..6 {
            l.observe(&[i as f64], 0);
        }
        assert!(matches!(
            l.retrain_incremental(),
            RetrainOutcome::Accepted { .. }
        ));
        let before = l.model().expect("model installed").dump();

        for i in 0..20 {
            l.observe(&[100.0 + i as f64], 1);
        }
        match l.retrain_incremental() {
            RetrainOutcome::RejectedByLinter { errors } => assert!(errors > 0),
            other => panic!("expected lint rejection, got {other:?}"),
        }
        let after = l.model().expect("previous model kept").dump();
        assert_eq!(before, after, "rejected refit must not replace the model");
        assert_eq!(l.counters().1, 1);
    }

    #[test]
    fn seeded_model_serves_before_any_refit() {
        let (attrs, classes) = schema();
        let mut data = Dataset::new(attrs.clone(), classes.clone());
        for i in 0..6 {
            data.push(&[i as f64], 0);
            data.push(&[50.0 + i as f64], 1);
        }
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        let offline = RuleSet::from_tree(&tree, &data, 0.25);
        let l =
            IncrementalLearner::new(attrs, classes, OnlineConfig::default()).with_model(offline);
        assert_eq!(l.predict(&[2.0]), Some(0));
        assert_eq!(l.predict(&[55.0]), Some(1));
    }
}
