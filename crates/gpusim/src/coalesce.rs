//! Memory-coalescing model.
//!
//! On GCN, a wavefront's vector memory instruction is serviced in units of
//! cache lines: lanes whose byte addresses fall in the same line share one
//! transaction. A fully contiguous 64-lane `float` read touches
//! `64 × 4 / 64 = 4` lines; a fully scattered gather touches up to 64.
//! This single effect is why the paper's Kernel-Serial collapses on long
//! rows (each lane walks its *own* row, so lanes diverge across lines)
//! while Kernel-Vector stays coalesced (adjacent lanes read adjacent
//! non-zeros).

/// Count the distinct cache lines touched by a set of lane byte addresses.
///
/// `scratch` is reused across calls to avoid per-wavefront allocation; its
/// contents are clobbered.
pub fn transactions(addresses: &[u64], cache_line: usize, scratch: &mut Vec<u64>) -> usize {
    debug_assert!(cache_line.is_power_of_two());
    if addresses.is_empty() {
        return 0;
    }
    let shift = cache_line.trailing_zeros();
    scratch.clear();
    scratch.extend(addresses.iter().map(|&a| a >> shift));
    scratch.sort_unstable();
    scratch.dedup();
    scratch.len()
}

/// Transactions for a contiguous run of `lanes` elements of `elem_bytes`
/// starting at `base` — the closed form of [`transactions`] for the common
/// coalesced case, avoiding the sort.
pub fn transactions_contiguous(
    base: u64,
    lanes: usize,
    elem_bytes: usize,
    cache_line: usize,
) -> usize {
    if lanes == 0 {
        return 0;
    }
    // The general model counts each lane's *start* address, so the last
    // line is the one holding the final lane's start — not its last byte.
    let first = base / cache_line as u64;
    let last = (base + ((lanes - 1) * elem_bytes) as u64) / cache_line as u64;
    (last - first + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(addrs: &[u64]) -> usize {
        let mut scratch = Vec::new();
        transactions(addrs, 64, &mut scratch)
    }

    #[test]
    fn contiguous_float_wavefront_needs_four_lines() {
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 4).collect();
        assert_eq!(tx(&addrs), 4);
    }

    #[test]
    fn scattered_wavefront_needs_one_line_per_lane() {
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 4096).collect();
        assert_eq!(tx(&addrs), 64);
    }

    #[test]
    fn duplicate_addresses_share_a_transaction() {
        let addrs = vec![100, 100, 101, 160];
        // 100/101 in line 1, 160 in line 2.
        assert_eq!(tx(&addrs), 2);
    }

    #[test]
    fn empty_access_is_free() {
        assert_eq!(tx(&[]), 0);
    }

    #[test]
    fn strided_access_degrades_gracefully() {
        // Stride of 32 bytes: two lanes per 64-byte line.
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 32).collect();
        assert_eq!(tx(&addrs), 32);
    }

    #[test]
    fn closed_form_matches_general_path() {
        let mut scratch = Vec::new();
        for &(base, lanes, eb) in &[
            (0u64, 64usize, 4usize),
            (60, 64, 4),
            (7, 13, 8),
            (128, 1, 4),
            (0, 0, 4),
        ] {
            let addrs: Vec<u64> = (0..lanes as u64).map(|i| base + i * eb as u64).collect();
            assert_eq!(
                transactions_contiguous(base, lanes, eb, 64),
                transactions(&addrs, 64, &mut scratch),
                "base={base} lanes={lanes} eb={eb}"
            );
        }
    }

    #[test]
    fn misaligned_contiguous_run_may_cost_one_extra_line() {
        // 64 floats starting at byte 60 straddle 5 lines instead of 4.
        assert_eq!(transactions_contiguous(60, 64, 4, 64), 5);
    }
}
