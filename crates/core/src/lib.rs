//! # spmv-autotune
//!
//! The paper's primary contribution: an input-aware auto-tuning framework
//! for CSR-based SpMV that (1) groups rows of similar workload into bins
//! via a coarse-grained "virtual row" scheme with tunable granularity `U`,
//! (2) selects, per bin, the best of nine SpMV kernels with different
//! thread organisations, and (3) learns both decisions offline with a
//! C5.0-style decision-tree model so new matrices get a strategy in one
//! prediction pass.
//!
//! Layout mirrors §III of the paper:
//!
//! * [`binning`] — Algorithm 2 (workload collection + coarse binning) and
//!   the alternative schemes §III-B mentions (fine-grained, hybrid,
//!   single-bin) plus the inter-bin scheme of the CSR-Adaptive baseline;
//! * [`kernels`] — Algorithms 3–5: `Kernel-Serial`, `Kernel-SubvectorX`
//!   (X ∈ {2,4,8,16,32,64,128}) and `Kernel-Vector`, each executing
//!   functionally while tracing its memory/ALU/LDS behaviour on the
//!   simulated APU, plus native CPU implementations;
//! * [`baseline`] — the CSR-Adaptive SpMV of Greathouse & Daga (SC'14),
//!   the paper's state-of-the-art comparison (Figure 7);
//! * [`tuner`] — the exhaustive oracle search over (U, kernel-per-bin);
//! * [`training`] — the two-stage dataset construction and model fitting
//!   (§III-C);
//! * [`framework`] — the runtime: features → predicted strategy →
//!   binning → per-bin kernel launches ([`AutoSpmv`]);
//! * [`exec`] — execution backends behind one [`ExecBackend`] trait:
//!   the simulated GPU and the native multithreaded CPU pool;
//! * [`plan`] — the plan/execute split: [`SpmvPlan`] freezes features,
//!   strategy and expanded bin row lists once per sparsity pattern so
//!   iterative solvers pay no per-call tuning or allocation;
//! * [`verify`] — the write-set disjointness checker: proves a plan's
//!   dispatch table writes every output row exactly once, producing a
//!   [`VerifiedPlan`] whose `execute_unchecked` drops the per-call
//!   O(m) fingerprint scan;
//! * [`solve`] — level-scheduled sparse triangular solves and the SymGS
//!   sweep behind the same plan/verify split: a dependency-order prover
//!   ([`verify::check_solve_schedule`]) certifies the barrier-stepped
//!   schedule and mints a [`VerifiedSolvePlan`], bit-for-bit identical
//!   to the sequential references at every worker count.
//!
//! ## Quick start
//!
//! ```
//! use spmv_autotune::prelude::*;
//! use spmv_sparse::gen;
//!
//! // An irregular matrix: many short rows, a few long ones.
//! let a = gen::mixture::<f32>(
//!     2_000, 2_000,
//!     &[gen::RowRegime::new(1, 4, 0.8), gen::RowRegime::new(100, 300, 0.2)],
//!     true, 7,
//! );
//! let v = vec![1.0f32; a.n_cols()];
//!
//! let device = GpuDevice::kaveri();
//! let tuned = Tuner::new(device.clone()).tune(&a);
//! let mut u = vec![0.0f32; a.n_rows()];
//! let stats = run_strategy(&device, &a, &tuned.strategy, &v, &mut u);
//! assert!(stats.cycles > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adapt;
pub mod baseline;
pub mod binning;
pub mod exec;
pub mod framework;
pub mod kernels;
pub mod model_io;
pub mod plan;
pub mod solve;
pub mod strategy;
pub mod telemetry;
pub mod training;
pub mod tuner;
pub mod verify;

/// Convenience re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::adapt::{classify, suggest, AdaptConfig, Bottleneck};
    pub use crate::baseline::CsrAdaptive;
    pub use crate::binning::{BinningScheme, Bins};
    pub use crate::exec::{ExecBackend, LaunchCost, NativeCpuBackend, PlanParts, SimGpuBackend};
    pub use crate::framework::{run_hetero, run_single_kernel, run_strategy, AutoSpmv};
    pub use crate::kernels::{KernelId, ALL_KERNELS};
    pub use crate::model_io::{load_model_file, save_model_file};
    pub use crate::plan::{
        confirm_row_ptr, rhs_blocks, BinDispatch, BinFormat, BinPayload, IndexPolicy,
        PatternFingerprint, PlanConfig, PlanConfigKey, PlanError, ShardedTiles, SpmvPlan, Tile,
        TrafficStats, VerifiedPlan,
    };
    pub use crate::solve::{
        SolveConfig, SolveError, SolvePlan, SolveStep, SymgsPlan, VerifiedSolvePlan,
    };
    pub use crate::strategy::Strategy;
    pub use crate::telemetry::{PlanTelemetry, TelemetrySnapshot};
    pub use crate::training::{TrainedModel, Trainer, TrainingReport};
    pub use crate::tuner::{FormatSearch, TunedFormat, TunedStrategy, Tuner, TunerConfig};
    pub use crate::verify::{
        check_dispatch, check_payloads, check_rhs_blocks, check_shards, check_solve_schedule,
        VerifyError,
    };
    pub use spmv_gpusim::{GpuDevice, LaunchStats};
    pub use spmv_sparse::DenseBlock;
}

pub use prelude::*;
