//! Batched (SpMM) execution suite: `execute_batch` must be **bit-for-bit**
//! identical, per output column, to `K` independent single-vector
//! `execute` calls — across random matrices, strategies, RHS widths
//! (including 0, 1, and widths that exercise every register-block size
//! and the remainder path), strided blocks, packed and CSR-fallback
//! bins, fused and unfused dispatch, and both backends.

use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::CsrMatrix;

fn native_plan(a: &CsrMatrix<f64>, strategy: Strategy, config: PlanConfig) -> SpmvPlan<f64> {
    SpmvPlan::compile_with(a, strategy, Box::new(NativeCpuBackend::new()), config)
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Serial; 8],
        },
        Strategy {
            binning: BinningScheme::Fine,
            kernels: vec![KernelId::Subvector(16); 8],
        },
        Strategy::single_kernel(KernelId::Subvector(32)),
    ]
}

/// Pseudo-random but deterministic block entries (no RNG dependency).
fn filled_block(rows: usize, k: usize, stride: usize, salt: u64) -> spmv_autotune::DenseBlock<f64> {
    let mut x = spmv_autotune::DenseBlock::<f64>::zeros_strided(rows, k, stride);
    x.fill_with(|i, j| {
        let h = (i as u64)
            .wrapping_mul(31)
            .wrapping_add(j as u64)
            .wrapping_mul(salt.wrapping_add(7));
        ((h % 37) as f64) - 18.0
    });
    x
}

/// Per-column comparison of a batched run against `K` sequential
/// single-vector executes through the same plan. Exact `assert_eq!`.
fn assert_batch_matches_sequential(
    a: &CsrMatrix<f64>,
    plan: &SpmvPlan<f64>,
    x: &spmv_autotune::DenseBlock<f64>,
    label: &str,
) {
    let k = x.k();
    let mut y = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), k);
    plan.execute_batch(a, x, &mut y).unwrap();
    for j in 0..k {
        let v = x.column(j);
        let mut u = vec![f64::NAN; a.n_rows()];
        plan.execute(a, &v, &mut u).unwrap();
        assert_eq!(y.column(j), u, "{label}: column {j} of {k} diverges");
    }
}

/// The core fuzz: random mixtures × strategies × RHS widths covering
/// every register-block width (8, 4, 2, 1) and every greedy remainder
/// combination, plus K = 0 and K = 1.
#[test]
fn fuzz_execute_batch_bit_identical_to_sequential() {
    for seed in 0..6u64 {
        let m = 90 + (seed as usize * 37) % 300;
        let a = gen::mixture::<f64>(
            m,
            m + 40,
            &[
                RowRegime::new(1, 3, 0.4),
                RowRegime::new(6, 24, 0.4),
                RowRegime::new(40, 90, 0.2),
            ],
            true,
            seed,
        );
        for (si, strategy) in strategies().into_iter().enumerate() {
            let plan = native_plan(&a, strategy, PlanConfig::default());
            for k in [0usize, 1, 2, 3, 5, 8, 11, 16] {
                let x = filled_block(a.n_cols(), k, k.max(1), seed + k as u64);
                assert_batch_matches_sequential(
                    &a,
                    &plan,
                    &x,
                    &format!("seed {seed} strategy {si}"),
                );
            }
        }
    }
}

/// Strided input and output blocks: live columns embedded in a wider
/// row stride must behave exactly like tight blocks, and the slack
/// lanes of the output must never be written.
#[test]
fn strided_blocks_match_and_slack_is_untouched() {
    let a = gen::powerlaw::<f64>(400, 1, 60, 2.1, 11);
    let plan = native_plan(
        &a,
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Subvector(8); 8],
        },
        PlanConfig::default(),
    );
    for (k, stride) in [(1usize, 4usize), (3, 5), (8, 13), (7, 7)] {
        let x = filled_block(a.n_cols(), k, stride, 3);
        let mut y = spmv_autotune::DenseBlock::<f64>::zeros_strided(a.n_rows(), k, stride + 2);
        // Poison the slack so an out-of-block write is detectable.
        y.as_mut_slice().fill(f64::NAN);
        for j in 0..k {
            y.set_column(j, &vec![0.0; a.n_rows()]);
        }
        plan.execute_batch(&a, &x, &mut y).unwrap();
        for j in 0..k {
            let v = x.column(j);
            let mut u = vec![f64::NAN; a.n_rows()];
            plan.execute(&a, &v, &mut u).unwrap();
            assert_eq!(y.column(j), u, "k {k} stride {stride} column {j}");
        }
        for i in 0..a.n_rows() {
            let row = &y.as_slice()[i * y.stride()..i * y.stride() + y.stride()];
            assert!(
                row[k..].iter().all(|s| s.is_nan()),
                "slack lanes of row {i} were written (k {k} stride {stride})"
            );
        }
    }
}

/// The format/dispatch configuration must not change batched results:
/// packed vs CSR payloads, fused tile queue vs synthesized whole-bin
/// tiles, and explicit chunk/tile overrides all agree bitwise.
#[test]
fn batched_configs_are_bitwise_equal() {
    let a = gen::mixture::<f64>(
        350,
        350,
        &[RowRegime::new(2, 6, 0.6), RowRegime::new(20, 60, 0.4)],
        true,
        5,
    );
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Serial; 8],
    };
    let configs = [
        PlanConfig::default(),
        PlanConfig {
            pack: false,
            ..PlanConfig::default()
        },
        PlanConfig {
            fused: false,
            ..PlanConfig::default()
        },
        PlanConfig {
            chunk: 4,
            tile_nnz: 64,
            ..PlanConfig::default()
        },
    ];
    let k = 7usize; // blocks: 4 + 2 + 1 — every remainder width at once
    let x = filled_block(a.n_cols(), k, k, 9);
    let mut outputs = Vec::new();
    for config in configs {
        let plan = native_plan(&a, strategy.clone(), config);
        let mut y = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), k);
        plan.execute_batch(&a, &x, &mut y).unwrap();
        outputs.push((config, y));
    }
    for (config, y) in &outputs[1..] {
        assert_eq!(
            y.as_slice(),
            outputs[0].1.as_slice(),
            "config {config:?} diverges from the default"
        );
    }
}

/// The verified fast path: `execute_batch_unchecked` equals the checked
/// path, and the checked wrapper still works through `VerifiedPlan`.
#[test]
fn verified_batch_paths_agree() {
    let a = gen::random_uniform::<f64>(300, 300, 3, 9, 13);
    let verified = native_plan(
        &a,
        Strategy::single_kernel(KernelId::Serial),
        PlanConfig::default(),
    )
    .verify(&a)
    .unwrap();
    assert!(verified.plan().packed_bins() >= 1);
    let k = 5usize;
    let x = filled_block(a.n_cols(), k, k, 21);
    let mut y_checked = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), k);
    let mut y_fast = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), k);
    verified.execute_batch(&a, &x, &mut y_checked).unwrap();
    verified
        .execute_batch_unchecked(&a, &x, &mut y_fast)
        .unwrap();
    assert_eq!(y_checked.as_slice(), y_fast.as_slice());
    for j in 0..k {
        let v = x.column(j);
        let mut u = vec![f64::NAN; a.n_rows()];
        verified.execute(&a, &v, &mut u).unwrap();
        assert_eq!(y_fast.column(j), u, "column {j}");
    }
}

/// Batched value tracking: a value update between batched executes is
/// picked up by the packed slabs, exactly as on the single-vector path.
#[test]
fn batched_execute_tracks_value_updates() {
    let mut a = gen::random_uniform::<f64>(250, 250, 4, 4, 17);
    let plan = native_plan(
        &a,
        Strategy::single_kernel(KernelId::Serial),
        PlanConfig::default(),
    );
    assert!(plan.packed_bins() >= 1);
    let k = 4usize;
    let x = filled_block(a.n_cols(), k, k, 2);
    for round in 0..3u64 {
        a.fill_values_with(|p| ((p as u64).wrapping_mul(round + 2) % 17) as f64 - 8.0);
        assert_batch_matches_sequential(&a, &plan, &x, &format!("round {round}"));
    }
}

/// Dimension validation on the batched path: wrong input rows, wrong
/// output rows, and mismatched block widths are all typed errors.
#[test]
fn batched_dimension_errors_are_reported() {
    let a = gen::random_uniform::<f64>(100, 80, 1, 4, 3);
    let plan = native_plan(
        &a,
        Strategy::single_kernel(KernelId::Serial),
        PlanConfig::default(),
    );
    let x = filled_block(a.n_cols(), 4, 4, 1);
    let bad_x = filled_block(a.n_cols() + 1, 4, 4, 1);
    let mut y = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), 4);
    let mut bad_rows = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows() + 2, 4);
    let mut bad_width = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), 3);
    assert!(matches!(
        plan.execute_batch(&a, &bad_x, &mut y),
        Err(PlanError::DimensionMismatch {
            what: "input block rows",
            ..
        })
    ));
    assert!(matches!(
        plan.execute_batch(&a, &x, &mut bad_rows),
        Err(PlanError::DimensionMismatch {
            what: "output block rows",
            ..
        })
    ));
    assert!(matches!(
        plan.execute_batch(&a, &x, &mut bad_width),
        Err(PlanError::DimensionMismatch {
            what: "output block width",
            ..
        })
    ));
    plan.execute_batch(&a, &x, &mut y).unwrap();
}

/// The simulated-GPU backend's batched launch is functionally identical
/// per column, and its amortized pricing actually amortizes: a K-wide
/// batch reads fewer bytes than K single-vector launches, but never
/// less than one full matrix traversal.
#[test]
fn simgpu_batch_is_equal_and_amortized() {
    let a = gen::mixture::<f64>(
        600,
        600,
        &[RowRegime::new(2, 8, 0.7), RowRegime::new(30, 80, 0.3)],
        true,
        29,
    );
    let plan = SpmvPlan::compile_with(
        &a,
        Strategy {
            binning: BinningScheme::Coarse { u: 10 },
            kernels: vec![KernelId::Subvector(16); 8],
        },
        Box::new(SimGpuBackend::new(GpuDevice::kaveri())),
        PlanConfig::default(),
    );
    let k = 8usize;
    let x = filled_block(a.n_cols(), k, k, 4);
    let mut y = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), k);
    let batch_bytes = plan
        .execute_batch(&a, &x, &mut y)
        .unwrap()
        .stats
        .expect("sim backend models stats")
        .bytes_read;
    let mut sequential_bytes = 0u64;
    for j in 0..k {
        let v = x.column(j);
        let mut u = vec![f64::NAN; a.n_rows()];
        let cost = plan.execute(&a, &v, &mut u).unwrap();
        sequential_bytes += cost.stats.expect("sim stats").bytes_read;
        assert_eq!(y.column(j), u, "sim column {j} diverges");
    }
    let matrix_bytes = (a.nnz() * (std::mem::size_of::<u32>() + 8)
        + (a.n_rows() + 1) * std::mem::size_of::<usize>()) as u64;
    assert!(
        batch_bytes < sequential_bytes,
        "batched traffic {batch_bytes} not amortized vs sequential {sequential_bytes}"
    );
    assert!(
        batch_bytes >= matrix_bytes,
        "batched traffic {batch_bytes} below one matrix traversal {matrix_bytes}"
    );
    // K = 1 must price exactly like a single-vector launch.
    let x1 = filled_block(a.n_cols(), 1, 1, 4);
    let mut y1 = spmv_autotune::DenseBlock::<f64>::zeros(a.n_rows(), 1);
    let b1 = plan.execute_batch(&a, &x1, &mut y1).unwrap();
    let mut u1 = vec![0.0f64; a.n_rows()];
    let s1 = plan.execute(&a, &x1.column(0), &mut u1).unwrap();
    assert_eq!(
        b1.stats.expect("sim stats").bytes_read,
        s1.stats.expect("sim stats").bytes_read
    );
}

/// `rhs_blocks` is a partition of `[0, K)` into kernel-supported widths,
/// greedy widest-first — the property `check_rhs_blocks` proves and the
/// batched write-soundness argument relies on.
#[test]
fn rhs_blocks_partition_property() {
    check_rhs_blocks().unwrap();
    for k in 0..257usize {
        let blocks = rhs_blocks(k);
        let mut pos = 0usize;
        for &(c0, w) in &blocks {
            assert_eq!(c0, pos, "K {k}: block start {c0} leaves a gap");
            assert!(matches!(w, 1 | 2 | 4 | 8), "K {k}: unsupported width {w}");
            pos += w;
        }
        assert_eq!(pos, k, "K {k}: blocks cover {pos}");
        // Greedy widest-first: at most one each of 4, 2, 1 at the tail.
        let tail: Vec<usize> = blocks.iter().map(|&(_, w)| w).filter(|&w| w != 8).collect();
        let mut sorted = tail.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(tail, sorted, "K {k}: remainder not widest-first");
        assert!(tail
            .iter()
            .all(|&w| tail.iter().filter(|&&v| v == w).count() == 1));
    }
}
