//! Recursive-matrix (R-MAT) graph generator (Chakrabarti, Zhan &
//! Faloutsos, 2004): produces the skewed, community-structured adjacency
//! matrices typical of the undirected-graph entries in Table II
//! (`bfly`, `dictionary28`).

use super::{gen_value, seeded_rng};
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// Generate an R-MAT graph with `2^scale` vertices and roughly
/// `edge_factor · 2^scale` distinct edges (duplicates are merged).
///
/// `(a, b, c)` are the standard recursive quadrant probabilities (the
/// fourth is `1 - a - b - c`). Kronecker-style defaults:
/// `a = 0.57, b = 0.19, c = 0.19`.
pub fn rmat<T: Scalar>(
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(a + b + c <= 1.0 + 1e-12, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let edges = edge_factor * n;
    let mut rng = seeded_rng(seed);
    let mut coo = CooMatrix::<T>::with_capacity(n, n, edges);
    for _ in 0..edges {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            let u: f64 = rng.gen();
            let (rh, ch) = ((r0 + r1) / 2, (c0 + c1) / 2);
            if u < a {
                r1 = rh;
                c1 = ch;
            } else if u < a + b {
                r1 = rh;
                c0 = ch;
            } else if u < a + b + c {
                r0 = rh;
                c1 = ch;
            } else {
                r0 = rh;
                c0 = ch;
            }
        }
        coo.push(r0, c0, gen_value::<T>(&mut rng));
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_are_power_of_two() {
        let a = rmat::<f64>(8, 4, 0.57, 0.19, 0.19, 5);
        assert_eq!(a.n_rows(), 256);
        assert_eq!(a.n_cols(), 256);
        assert!(a.nnz() <= 4 * 256);
        assert!(a.nnz() > 256); // duplicates merge, but most survive
    }

    #[test]
    fn skewed_parameters_concentrate_mass_in_first_quadrant() {
        let a = rmat::<f64>(10, 8, 0.7, 0.1, 0.1, 6);
        let m = a.n_rows();
        let top: usize = (0..m / 4).map(|i| a.row_nnz(i)).sum();
        let bottom: usize = (3 * m / 4..m).map(|i| a.row_nnz(i)).sum();
        assert!(
            top > 3 * bottom,
            "expected top-quadrant skew, top = {top}, bottom = {bottom}"
        );
    }

    #[test]
    fn uniform_parameters_spread_mass() {
        let a = rmat::<f64>(9, 6, 0.25, 0.25, 0.25, 7);
        let m = a.n_rows();
        let top: usize = (0..m / 2).map(|i| a.row_nnz(i)).sum();
        let bottom: usize = (m / 2..m).map(|i| a.row_nnz(i)).sum();
        let ratio = top as f64 / bottom.max(1) as f64;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio = {ratio}");
    }
}
