//! Table II — the 16 representative matrices: paper dimensions versus the
//! scaled synthetic analogues used here. Regenerate with
//! `cargo run --release -p spmv-bench --bin table2`.

use spmv_bench::{load_suite, Table};

fn main() {
    println!("== Table II: representative matrices (paper vs scaled analogue) ==\n");
    let mut t = Table::new(vec![
        "name",
        "paper RxC",
        "paper NNZ",
        "ours RxC",
        "ours NNZ",
        "avg NNZ/row",
        "scale",
        "kind",
    ]);
    for case in load_suite() {
        let a = &case.matrix;
        let m = &case.meta;
        t.row(vec![
            m.name.to_string(),
            format!("{}x{}", m.paper_rows, m.paper_cols),
            m.paper_nnz.to_string(),
            format!("{}x{}", a.n_rows(), a.n_cols()),
            a.nnz().to_string(),
            format!("{:.1}", a.nnz() as f64 / a.n_rows() as f64),
            format!("{:.3}", a.n_rows() as f64 / m.paper_rows as f64),
            m.kind.label().to_string(),
        ]);
    }
    t.print();
    println!("\nrationales (why each analogue preserves the original's regime):");
    for case in load_suite() {
        println!("  {:>14}: {}", case.meta.name, case.meta.rationale);
    }
}
