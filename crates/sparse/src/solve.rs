//! Triangular-solve substrate: triangularity detection, level-set
//! dependency scheduling, triangular splitting, and the sequential
//! reference kernels for SpTRSV and symmetric Gauss-Seidel (SymGS).
//!
//! Iterative solvers (CG with triangular preconditioners, multigrid
//! smoothers) need three sparse kernels: SpMV, sparse triangular solve,
//! and the SymGS sweep. Unlike SpMV, a triangular solve carries
//! *dependencies* between rows — row `i` of a lower-triangular solve
//! reads `x[j]` for every stored column `j < i` — so parallel execution
//! needs a schedule that provably respects them. The standard schedule
//! is the **level set**: row `i`'s level is the length of its longest
//! dependency chain, rows of equal level are mutually independent, and
//! a barrier between consecutive levels makes the whole solve race-free.
//!
//! This module provides the structure side of that story:
//!
//! * [`CsrMatrix::triangularity`] — classify a pattern as lower/upper
//!   triangular (or neither) and detect missing diagonal entries;
//! * [`level_sets`] — build the level schedule for a triangular matrix,
//!   rejecting non-triangular or diagonal-deficient inputs with a typed
//!   [`SolveBuildError`];
//! * [`split_triangular`] — extract the `L + D` / `D + U` halves (and
//!   their strict counterparts) a SymGS sweep is composed from, with
//!   value refresh so one split serves many value updates;
//! * [`sptrsv_seq`] / [`symgs_seq`] — the sequential references every
//!   parallel execution is compared against **bit for bit**: the
//!   parallel kernels perform the identical per-row arithmetic in the
//!   identical intra-row order, so any schedule that respects the
//!   dependencies reproduces these results exactly.

use crate::csr::CsrMatrix;
use crate::error::{SolveBuildError, SparseError};
use crate::scalar::Scalar;

/// Which triangle a solve traverses, and in which row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveDirection {
    /// Forward substitution over a lower-triangular matrix (`L + D`):
    /// rows solved in ascending order, row `i` reads columns `j < i`.
    Forward,
    /// Backward substitution over an upper-triangular matrix (`D + U`):
    /// rows solved in descending order, row `i` reads columns `j > i`.
    Backward,
}

impl SolveDirection {
    /// Short human-readable label (`"forward"` / `"backward"`).
    pub fn label(self) -> &'static str {
        match self {
            SolveDirection::Forward => "forward",
            SolveDirection::Backward => "backward",
        }
    }

    /// Is column `c` a dependency of row `r` under this direction
    /// (strictly on the solved triangle's side)?
    #[inline]
    pub fn is_dependency(self, r: usize, c: usize) -> bool {
        match self {
            SolveDirection::Forward => c < r,
            SolveDirection::Backward => c > r,
        }
    }
}

impl std::fmt::Display for SolveDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification of a matrix pattern relative to its diagonal,
/// produced by [`CsrMatrix::triangularity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Triangularity {
    /// Every off-diagonal entry sits strictly below the diagonal. A
    /// purely diagonal pattern also reports `Lower` (both solves work;
    /// forward is the convention).
    Lower {
        /// First row with no structural diagonal entry, if any.
        missing_diagonal: Option<usize>,
    },
    /// Every off-diagonal entry sits strictly above the diagonal.
    Upper {
        /// First row with no structural diagonal entry, if any.
        missing_diagonal: Option<usize>,
    },
    /// Entries on both strict sides of the diagonal; carries one
    /// witness entry `(row, col)` from each side.
    Neither {
        /// First strictly-lower entry encountered.
        lower: (usize, u32),
        /// First strictly-upper entry encountered.
        upper: (usize, u32),
    },
}

impl<T: Scalar> CsrMatrix<T> {
    /// Classify this pattern as lower-triangular, upper-triangular, or
    /// neither, and report the first structurally missing diagonal
    /// entry. One O(nnz) scan; value content is ignored (an explicit
    /// stored zero still counts as a structural entry).
    pub fn triangularity(&self) -> Triangularity {
        let mut first_lower: Option<(usize, u32)> = None;
        let mut first_upper: Option<(usize, u32)> = None;
        let mut missing_diagonal: Option<usize> = None;
        for i in 0..self.n_rows() {
            let (cols, _) = self.row(i);
            let mut has_diag = false;
            for &c in cols {
                let ci = c as usize;
                if ci == i {
                    has_diag = true;
                } else if ci < i {
                    first_lower.get_or_insert((i, c));
                } else {
                    first_upper.get_or_insert((i, c));
                }
            }
            if !has_diag && missing_diagonal.is_none() {
                missing_diagonal = Some(i);
            }
        }
        match (first_lower, first_upper) {
            (Some(lower), Some(upper)) => Triangularity::Neither { lower, upper },
            (None, Some(_)) => Triangularity::Upper { missing_diagonal },
            _ => Triangularity::Lower { missing_diagonal },
        }
    }
}

/// Validate that `a` is square, strictly on `dir`'s triangle, and
/// carries a structural diagonal in every row — the premises every
/// solve in this module builds on.
pub fn check_solvable<T: Scalar>(
    a: &CsrMatrix<T>,
    dir: SolveDirection,
) -> Result<(), SolveBuildError> {
    if a.n_rows() != a.n_cols() {
        return Err(SolveBuildError::NotSquare {
            n_rows: a.n_rows(),
            n_cols: a.n_cols(),
        });
    }
    for i in 0..a.n_rows() {
        let (cols, _) = a.row(i);
        let mut has_diag = false;
        for &c in cols {
            let ci = c as usize;
            if ci == i {
                has_diag = true;
            } else if !dir.is_dependency(i, ci) || ci >= a.n_rows() {
                return Err(SolveBuildError::OffTriangle {
                    direction: dir,
                    row: i,
                    col: c,
                });
            }
        }
        if !has_diag {
            return Err(SolveBuildError::MissingDiagonal { row: i });
        }
    }
    Ok(())
}

/// Build the level-set schedule for a triangular solve: `levels[l]`
/// lists the rows whose longest dependency chain has length `l`, in the
/// direction's natural traversal order (ascending rows for forward,
/// descending for backward). Rows within one level are mutually
/// independent by construction; every dependency of a level-`l` row
/// sits in a level `< l`.
///
/// Rejects non-square, non-triangular, or diagonal-deficient inputs
/// with a typed [`SolveBuildError`]. O(m + nnz).
pub fn level_sets<T: Scalar>(
    a: &CsrMatrix<T>,
    dir: SolveDirection,
) -> Result<Vec<Vec<u32>>, SolveBuildError> {
    check_solvable(a, dir)?;
    let m = a.n_rows();
    let mut level = vec![0u32; m];
    let mut n_levels = 0usize;
    let order: Box<dyn Iterator<Item = usize>> = match dir {
        SolveDirection::Forward => Box::new(0..m),
        SolveDirection::Backward => Box::new((0..m).rev()),
    };
    let mut traversal = Vec::with_capacity(m);
    for i in order {
        let (cols, _) = a.row(i);
        let mut l = 0u32;
        for &c in cols {
            let ci = c as usize;
            if ci != i {
                // check_solvable proved ci is a same-direction
                // dependency, so level[ci] is already final.
                l = l.max(level[ci] + 1);
            }
        }
        level[i] = l;
        n_levels = n_levels.max(l as usize + 1);
        traversal.push(i);
    }
    let mut levels = vec![Vec::new(); n_levels];
    for &i in &traversal {
        levels[level[i] as usize].push(i as u32);
    }
    Ok(levels)
}

/// Sequential sparse triangular solve: `a * x = b` with `a` triangular
/// per `dir`. This is the bit-for-bit reference for every parallel
/// schedule: per row, off-diagonal products are subtracted in storage
/// order (`sum = sum - v * x[c]`), then one divide by the diagonal.
///
/// Errors on dimension mismatches and (via
/// [`SolveBuildError::MissingDiagonal`]) on rows without a diagonal
/// entry; triangularity itself is not re-validated here — on a
/// non-triangular input the result is a Gauss-Seidel-like sweep, not a
/// solve.
pub fn sptrsv_seq<T: Scalar>(
    a: &CsrMatrix<T>,
    dir: SolveDirection,
    b: &[T],
    x: &mut [T],
) -> Result<(), SparseError> {
    if b.len() != a.n_rows() {
        return Err(SparseError::DimensionMismatch {
            context: "sptrsv rhs".into(),
            expected: a.n_rows(),
            got: b.len(),
        });
    }
    if x.len() != a.n_cols() {
        return Err(SparseError::DimensionMismatch {
            context: "sptrsv solution".into(),
            expected: a.n_cols(),
            got: x.len(),
        });
    }
    let m = a.n_rows();
    let order: Box<dyn Iterator<Item = usize>> = match dir {
        SolveDirection::Forward => Box::new(0..m),
        SolveDirection::Backward => Box::new((0..m).rev()),
    };
    for i in order {
        let (cols, vals) = a.row(i);
        let mut sum = b[i];
        let mut diag: Option<T> = None;
        for (&c, &v) in cols.iter().zip(vals) {
            let ci = c as usize;
            if ci == i {
                diag = Some(v);
            } else {
                sum = sum - v * x[ci];
            }
        }
        let d = diag.ok_or(SolveBuildError::MissingDiagonal { row: i })?;
        x[i] = sum / d;
    }
    Ok(())
}

/// The four triangular views of a square matrix `A = L + D + U` a SymGS
/// sweep is composed from: the solvable halves `L + D` and `D + U`, and
/// the strict halves `L` and `U` used for the residual SpMVs. The split
/// is structural and done once; [`TriangularHalves::ensure_values`]
/// refreshes the copied values in O(nnz) when the source matrix's
/// values change (same pattern, new numbers).
#[derive(Debug)]
pub struct TriangularHalves<T: Scalar> {
    lower: CsrMatrix<T>,
    upper: CsrMatrix<T>,
    strict_lower: CsrMatrix<T>,
    strict_upper: CsrMatrix<T>,
    /// For each half, the source-nnz position of each copied entry.
    lower_map: Vec<u32>,
    upper_map: Vec<u32>,
    strict_lower_map: Vec<u32>,
    strict_upper_map: Vec<u32>,
    src_values_id: u64,
}

impl<T: Scalar> TriangularHalves<T> {
    /// The solvable lower half `L + D`.
    pub fn lower(&self) -> &CsrMatrix<T> {
        &self.lower
    }

    /// The solvable upper half `D + U`.
    pub fn upper(&self) -> &CsrMatrix<T> {
        &self.upper
    }

    /// The strictly-lower half `L` (no diagonal).
    pub fn strict_lower(&self) -> &CsrMatrix<T> {
        &self.strict_lower
    }

    /// The strictly-upper half `U` (no diagonal).
    pub fn strict_upper(&self) -> &CsrMatrix<T> {
        &self.strict_upper
    }

    /// Re-copy the halves' values from `a` if its value generation
    /// changed since the split (or the last refresh). `a` must have the
    /// sparsity pattern the split was built from — callers guard that
    /// with a pattern fingerprint. Returns whether a refresh ran.
    pub fn ensure_values(&mut self, a: &CsrMatrix<T>) -> bool {
        if a.values_id() == self.src_values_id {
            return false;
        }
        let src = a.values();
        for (half, map) in [
            (&mut self.lower, &self.lower_map),
            (&mut self.upper, &self.upper_map),
            (&mut self.strict_lower, &self.strict_lower_map),
            (&mut self.strict_upper, &self.strict_upper_map),
        ] {
            let dst = half.values_mut();
            for (slot, &pos) in dst.iter_mut().zip(map) {
                *slot = src[pos as usize];
            }
        }
        self.src_values_id = a.values_id();
        true
    }
}

/// Split a square matrix with a full structural diagonal into its four
/// triangular views (see [`TriangularHalves`]). Rejects non-square
/// inputs and rows without a diagonal entry — SymGS divides by the
/// diagonal, so a missing entry is a build error, not a runtime NaN.
pub fn split_triangular<T: Scalar>(
    a: &CsrMatrix<T>,
) -> Result<TriangularHalves<T>, SolveBuildError> {
    if a.n_rows() != a.n_cols() {
        return Err(SolveBuildError::NotSquare {
            n_rows: a.n_rows(),
            n_cols: a.n_cols(),
        });
    }
    let m = a.n_rows();
    struct HalfAcc<T> {
        row_ptr: Vec<usize>,
        cols: Vec<u32>,
        vals: Vec<T>,
        map: Vec<u32>,
    }
    impl<T> HalfAcc<T> {
        fn new(m: usize) -> Self {
            Self {
                row_ptr: Vec::with_capacity(m + 1),
                cols: Vec::new(),
                vals: Vec::new(),
                map: Vec::new(),
            }
        }
        fn push(&mut self, c: u32, v: T, pos: usize) {
            self.cols.push(c);
            self.vals.push(v);
            self.map.push(pos as u32);
        }
    }
    let mut halves: [HalfAcc<T>; 4] = [
        HalfAcc::new(m), // L + D
        HalfAcc::new(m), // D + U
        HalfAcc::new(m), // L
        HalfAcc::new(m), // U
    ];
    for h in &mut halves {
        h.row_ptr.push(0);
    }
    for i in 0..m {
        let (cols, vals) = a.row(i);
        let base = a.row_ptr()[i];
        let mut has_diag = false;
        for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
            let pos = base + k;
            let ci = c as usize;
            if ci == i {
                has_diag = true;
                halves[0].push(c, v, pos);
                halves[1].push(c, v, pos);
            } else if ci < i {
                halves[0].push(c, v, pos);
                halves[2].push(c, v, pos);
            } else {
                halves[1].push(c, v, pos);
                halves[3].push(c, v, pos);
            }
        }
        if !has_diag {
            return Err(SolveBuildError::MissingDiagonal { row: i });
        }
        for h in &mut halves {
            h.row_ptr.push(h.cols.len());
        }
    }
    let [ld, du, l, u] = halves;
    let build = |h: HalfAcc<T>| {
        let map = h.map;
        let csr = CsrMatrix::from_parts(m, m, h.row_ptr, h.cols, h.vals)
            .expect("split halves preserve CSR invariants");
        (csr, map)
    };
    let (lower, lower_map) = build(ld);
    let (upper, upper_map) = build(du);
    let (strict_lower, strict_lower_map) = build(l);
    let (strict_upper, strict_upper_map) = build(u);
    Ok(TriangularHalves {
        lower,
        upper,
        strict_lower,
        strict_upper,
        lower_map,
        upper_map,
        strict_lower_map,
        strict_upper_map,
        src_values_id: a.values_id(),
    })
}

/// Sequential symmetric Gauss-Seidel sweep, the bit-for-bit reference
/// for the composed parallel pipeline. One sweep is:
///
/// 1. `r = b - U x`           (strict-upper SpMV + residual)
/// 2. `(L + D) x = r`         (forward SpTRSV)
/// 3. `r = b - L x`           (strict-lower SpMV + residual)
/// 4. `(D + U) x = r`         (backward SpTRSV)
///
/// This *composed* form — residual first, then a pure triangular solve
/// — is the definition of the sweep here (rather than the interleaved
/// in-place update), so the parallel pipeline built from the same
/// halves reproduces it exactly, summation order included.
pub fn symgs_seq<T: Scalar>(a: &CsrMatrix<T>, b: &[T], x: &mut [T]) -> Result<(), SparseError> {
    let halves = split_triangular(a)?;
    symgs_seq_halves(&halves, b, x)
}

/// [`symgs_seq`] over a pre-built split, for callers amortising the
/// structural work across sweeps.
pub fn symgs_seq_halves<T: Scalar>(
    halves: &TriangularHalves<T>,
    b: &[T],
    x: &mut [T],
) -> Result<(), SparseError> {
    let m = halves.lower().n_rows();
    if b.len() != m {
        return Err(SparseError::DimensionMismatch {
            context: "symgs rhs".into(),
            expected: m,
            got: b.len(),
        });
    }
    let mut r = halves.strict_upper().spmv_seq_alloc(x)?;
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    sptrsv_seq(halves.lower(), SolveDirection::Forward, &r, x)?;
    halves.strict_lower().spmv_seq(x, &mut r)?;
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    sptrsv_seq(halves.upper(), SolveDirection::Backward, &r, x)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Lower-triangular-with-diagonal version of an arbitrary square
    /// matrix: keep strictly-lower entries, force a dominant diagonal.
    fn tril_with_diag(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
        let m = a.n_rows();
        let mut builder = gen::RowsBuilder::<f64>::new(m);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..m {
            cols.clear();
            vals.clear();
            let (rc, rv) = a.row(i);
            let mut dominant = 1.0;
            for (&c, &v) in rc.iter().zip(rv) {
                if (c as usize) < i {
                    cols.push(c);
                    vals.push(v);
                    dominant += v.abs();
                }
            }
            cols.push(i as u32);
            vals.push(dominant);
            builder.push_row_sorted(&cols, &vals);
        }
        builder.finish()
    }

    #[test]
    fn triangularity_classifies_all_shapes() {
        let lower = tril_with_diag(&gen::random_uniform::<f64>(40, 40, 1, 5, 1));
        match lower.triangularity() {
            Triangularity::Lower {
                missing_diagonal: None,
            } => {}
            other => panic!("expected Lower, got {other:?}"),
        }
        let upper = lower.transpose();
        match upper.triangularity() {
            Triangularity::Upper {
                missing_diagonal: None,
            } => {}
            other => panic!("expected Upper, got {other:?}"),
        }
        let full = gen::banded::<f64>(30, 2, 7);
        match full.triangularity() {
            Triangularity::Neither { lower, upper } => {
                assert!(lower.0 > lower.1 as usize);
                assert!(upper.0 < upper.1 as usize);
            }
            other => panic!("expected Neither, got {other:?}"),
        }
        // Diagonal-only reports Lower by convention.
        let diag = CsrMatrix::<f64>::identity(5);
        assert!(matches!(
            diag.triangularity(),
            Triangularity::Lower {
                missing_diagonal: None
            }
        ));
    }

    #[test]
    fn triangularity_reports_missing_diagonal() {
        // Row 1 has no diagonal entry.
        let a = CsrMatrix::<f64>::from_parts(
            3,
            3,
            vec![0, 1, 2, 4],
            vec![0, 0, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        match a.triangularity() {
            Triangularity::Lower {
                missing_diagonal: Some(1),
            } => {}
            other => panic!("expected missing diagonal at row 1, got {other:?}"),
        }
    }

    #[test]
    fn level_sets_respect_dependencies_and_partition_rows() {
        let a = tril_with_diag(&gen::powerlaw::<f64>(300, 1, 60, 2.1, 5));
        let levels = level_sets(&a, SolveDirection::Forward).unwrap();
        let mut level_of = vec![usize::MAX; a.n_rows()];
        let mut seen = 0usize;
        for (l, rows) in levels.iter().enumerate() {
            assert!(!rows.is_empty(), "level {l} is empty");
            for &r in rows {
                assert_eq!(level_of[r as usize], usize::MAX, "row {r} scheduled twice");
                level_of[r as usize] = l;
                seen += 1;
            }
        }
        assert_eq!(seen, a.n_rows());
        for i in 0..a.n_rows() {
            let (cols, _) = a.row(i);
            for &c in cols {
                if (c as usize) != i {
                    assert!(
                        level_of[c as usize] < level_of[i],
                        "row {i} (level {}) depends on row {c} (level {})",
                        level_of[i],
                        level_of[c as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn level_sets_reject_bad_structure() {
        let full = gen::banded::<f64>(20, 1, 3);
        assert!(matches!(
            level_sets(&full, SolveDirection::Forward),
            Err(SolveBuildError::OffTriangle { .. })
        ));
        let rect = gen::random_uniform::<f64>(10, 20, 1, 3, 4);
        assert!(matches!(
            level_sets(&rect, SolveDirection::Forward),
            Err(SolveBuildError::NotSquare { .. })
        ));
        let no_diag =
            CsrMatrix::<f64>::from_parts(2, 2, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            level_sets(&no_diag, SolveDirection::Forward),
            Err(SolveBuildError::MissingDiagonal { row: 1 })
        ));
    }

    #[test]
    fn sptrsv_seq_solves_lower_and_upper_systems() {
        let a = tril_with_diag(&gen::random_uniform::<f64>(120, 120, 1, 6, 9));
        let x_true: Vec<f64> = (0..120).map(|i| ((i % 13) as f64) - 6.0).collect();
        let b = a.spmv_seq_alloc(&x_true).unwrap();
        let mut x = vec![0.0; 120];
        sptrsv_seq(&a, SolveDirection::Forward, &b, &mut x).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8, "{xs} vs {xt}");
        }
        let u = a.transpose();
        let bu = u.spmv_seq_alloc(&x_true).unwrap();
        let mut xu = vec![0.0; 120];
        sptrsv_seq(&u, SolveDirection::Backward, &bu, &mut xu).unwrap();
        for (xs, xt) in xu.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8, "{xs} vs {xt}");
        }
    }

    #[test]
    fn split_halves_partition_entries_and_refresh_values() {
        let mut a = gen::banded::<f64>(80, 3, 11);
        let mut halves = split_triangular(&a).unwrap();
        assert_eq!(
            halves.strict_lower().nnz() + halves.upper().nnz(),
            a.nnz(),
            "L plus (D + U) must cover every entry once"
        );
        assert_eq!(halves.lower().nnz() + halves.strict_upper().nnz(), a.nnz());
        assert!(!halves.ensure_values(&a), "fresh split must be in sync");
        for v in a.values_mut() {
            *v *= 2.0;
        }
        assert!(halves.ensure_values(&a), "value bump must trigger refresh");
        let i = 40;
        let (_, dv) = halves.lower().row(i);
        let (ac, av) = a.row(i);
        let diag_src = ac
            .iter()
            .zip(av)
            .find(|(&c, _)| c as usize == i)
            .map(|(_, &v)| v)
            .unwrap();
        assert_eq!(*dv.last().unwrap(), diag_src);
    }

    #[test]
    fn symgs_converges_on_a_dominant_system() {
        // Diagonally dominant banded system: a few sweeps shrink the
        // residual monotonically toward the solution.
        let mut a = gen::banded::<f64>(100, 2, 13);
        let m = a.n_rows();
        for i in 0..m {
            let (rc, _) = a.row(i);
            let rc = rc.to_vec();
            let start = a.row_ptr()[i];
            let vals = a.values_mut();
            let mut offsum = 0.0;
            for (k, &c) in rc.iter().enumerate() {
                if c as usize != i {
                    offsum += vals[start + k].abs();
                }
            }
            for (k, &c) in rc.iter().enumerate() {
                if c as usize == i {
                    vals[start + k] = offsum + 1.0;
                }
            }
        }
        let x_true: Vec<f64> = (0..m).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.spmv_seq_alloc(&x_true).unwrap();
        let mut x = vec![0.0; m];
        let err = |x: &[f64]| -> f64 {
            x.iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        let e0 = err(&x);
        for _ in 0..8 {
            symgs_seq(&a, &b, &mut x).unwrap();
        }
        assert!(err(&x) < e0 * 1e-6, "SymGS failed to converge: {}", err(&x));
    }
}
