//! Property tests of the storage formats and I/O: conversions are
//! lossless, structural invariants always hold. Randomised inputs are
//! drawn from a seeded generator so every run exercises the same cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_sparse::mm::{read_matrix_market, write_matrix_market};
use spmv_sparse::ops::{sparse_add, sparse_elementwise_mul, spgemm};
use spmv_sparse::{CooMatrix, CsrMatrix, FeatureSet, MatrixFeatures};

const CASES: usize = 128;

fn random_csr(rng: &mut StdRng) -> CsrMatrix<f64> {
    let m = rng.gen_range(1usize..30);
    let n = rng.gen_range(1usize..30);
    let triplets = rng.gen_range(0usize..150);
    let mut coo = CooMatrix::new(m, n);
    for _ in 0..triplets {
        let r = rng.gen_range(0..m);
        let c = rng.gen_range(0..n);
        let v = rng.gen_range(1.0f64..10.0);
        coo.push(r, c, v);
    }
    coo.to_csr()
}

#[test]
fn coo_to_csr_is_canonical() {
    let mut rng = StdRng::seed_from_u64(0xF0A1);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        assert!(a.rows_sorted());
        assert!(a.row_ptr().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*a.row_ptr().last().unwrap(), a.nnz());
    }
}

#[test]
fn matrix_market_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xF0A2);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn transpose_preserves_spmv_adjoint() {
    // <A v, w> == <v, Aᵀ w> for all v, w — checked with fixed probes.
    let mut rng = StdRng::seed_from_u64(0xF0A3);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        let v: Vec<f64> = (0..a.n_cols())
            .map(|i| ((i * 7 % 5) as f64) - 2.0)
            .collect();
        let w: Vec<f64> = (0..a.n_rows())
            .map(|i| ((i * 3 % 7) as f64) - 3.0)
            .collect();
        let av = a.spmv_seq_alloc(&v).unwrap();
        let atw = a.transpose().spmv_seq_alloc(&w).unwrap();
        let lhs: f64 = av.iter().zip(&w).map(|(x, y)| x * y).sum();
        let rhs: f64 = v.iter().zip(&atw).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }
}

#[test]
fn features_are_internally_consistent() {
    let mut rng = StdRng::seed_from_u64(0xF0A4);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        let f = MatrixFeatures::extract(&a, FeatureSet::TableI);
        assert_eq!(f.m, a.n_rows());
        assert_eq!(f.nnz, a.nnz());
        assert!(f.min_nnz <= f.max_nnz || a.n_rows() == 0);
        if a.n_rows() > 0 {
            assert!(f.min_nnz as f64 <= f.avg_nnz + 1e-12);
            assert!(f.avg_nnz <= f.max_nnz as f64 + 1e-12);
            assert!(f.var_nnz >= 0.0);
        }
    }
}

#[test]
fn spgemm_with_identity_is_neutral() {
    let mut rng = StdRng::seed_from_u64(0xF0A5);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        let i = CsrMatrix::<f64>::identity(a.n_cols());
        assert_eq!(spgemm(&a, &i).unwrap(), a);
    }
}

#[test]
fn add_is_commutative() {
    let mut rng = StdRng::seed_from_u64(0xF0A6);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        let b_seed = rng.gen_range(0u64..50);
        let b = spmv_sparse::gen::random_uniform::<f64>(
            a.n_rows(),
            a.n_cols(),
            0,
            4.min(a.n_cols()),
            b_seed,
        );
        let ab = sparse_add(&a, &b).unwrap();
        let ba = sparse_add(&b, &a).unwrap();
        assert_eq!(ab, ba);
    }
}

#[test]
fn hadamard_nnz_bounded_by_min() {
    let mut rng = StdRng::seed_from_u64(0xF0A7);
    for _ in 0..CASES {
        let a = random_csr(&mut rng);
        let b_seed = rng.gen_range(0u64..50);
        let b = spmv_sparse::gen::random_uniform::<f64>(
            a.n_rows(),
            a.n_cols(),
            0,
            6.min(a.n_cols()),
            b_seed,
        );
        let h = sparse_elementwise_mul(&a, &b).unwrap();
        assert!(h.nnz() <= a.nnz().min(b.nnz()));
    }
}
