//! Multi-thread determinism suite for the sharded execution runtime:
//! a plan compiled with shard-partitioned tile queues must produce
//! **bit-for-bit** the same output as single-threaded execution — for
//! every format tier (CSR, packed, compressed-index, cache-blocked),
//! every thread count in {2, 3, 4, 7}, adversarial shard cuts (empty
//! shards, one-tile shards, more shards than tiles), repeated execution
//! (the first-touch pass runs once), and the batched (SpMM) path.
//!
//! The suite pins `SPMV_NUM_THREADS=8` before the first parallel launch
//! so the schedules are genuinely multi-threaded even on small CI boxes
//! (the runtime clamps workers to this cap, never above it).

use spmv_autotune::prelude::*;
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::{CsrMatrix, IndexKind};
use std::sync::Once;

/// Freeze the process-wide thread cap high enough that `with_workers(t)`
/// for every swept `t` really spawns `t` workers. Must run before any
/// kernel launch (the cap is cached on first use).
fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        if std::env::var("SPMV_NUM_THREADS").is_err() {
            std::env::set_var("SPMV_NUM_THREADS", "8");
        }
    });
}

fn irregular(seed: u64) -> CsrMatrix<f64> {
    gen::mixture(
        900,
        1_100,
        &[
            RowRegime::new(1, 3, 0.5),
            RowRegime::new(8, 40, 0.35),
            RowRegime::new(150, 300, 0.15),
        ],
        true,
        seed,
    )
}

fn coarse(kernel: KernelId) -> Strategy {
    Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![kernel; 8],
    }
}

fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(seed + 5) % 19) as f64) - 9.0)
        .collect()
}

/// One named `PlanConfig` per format tier, all fused with small tiles so
/// multi-shard cuts have material to deal.
fn format_tiers() -> Vec<(&'static str, PlanConfig)> {
    vec![
        (
            "csr",
            PlanConfig {
                pack: false,
                cache_block: false,
                tile_nnz: 1 << 11,
                ..PlanConfig::default()
            },
        ),
        (
            "packed",
            PlanConfig {
                tile_nnz: 1 << 11,
                ..PlanConfig::default()
            },
        ),
        (
            "compressed",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U16),
                tile_nnz: 1 << 11,
                ..PlanConfig::default()
            },
        ),
        (
            "cache-blocked",
            PlanConfig {
                pack: false,
                l2_bytes: 32 * std::mem::size_of::<f64>(),
                scatter_lines_per_row: 2.0,
                tile_nnz: 1 << 11,
                ..PlanConfig::default()
            },
        ),
    ]
}

fn plan_with(
    a: &CsrMatrix<f64>,
    strategy: Strategy,
    config: PlanConfig,
    workers: usize,
) -> SpmvPlan<f64> {
    SpmvPlan::compile_with(
        a,
        strategy,
        Box::new(NativeCpuBackend::new().with_workers(workers)),
        config,
    )
}

/// The single-threaded reference: one worker, no shard table.
fn reference_output(a: &CsrMatrix<f64>, strategy: Strategy, config: &PlanConfig) -> Vec<f64> {
    let cfg = PlanConfig {
        shards: 1,
        ..*config
    };
    let plan = plan_with(a, strategy, cfg, 1);
    assert!(plan.sharded().is_none(), "shards: 1 must mean unsharded");
    let v = probe_vector(a.n_cols(), 3);
    let mut u = vec![f64::NAN; a.n_rows()];
    plan.execute(a, &v, &mut u).unwrap();
    u
}

/// Every format tier, every thread count: sharded output equals the
/// single-threaded output bit for bit, and the sharded plan still
/// passes `VerifiedPlan` promotion (which now proves the shard cover).
#[test]
fn sharded_matches_single_thread_across_formats_and_thread_counts() {
    setup();
    let a = irregular(11);
    let v = probe_vector(a.n_cols(), 3);
    for (tier, config) in format_tiers() {
        let reference = reference_output(&a, coarse(KernelId::Subvector(8)), &config);
        for t in [2usize, 3, 4, 7] {
            let cfg = PlanConfig {
                shards: t,
                ..config
            };
            let plan = plan_with(&a, coarse(KernelId::Subvector(8)), cfg, t);
            let sh = plan
                .sharded()
                .unwrap_or_else(|| panic!("{tier}: shards: {t} produced no shard table"));
            assert_eq!(sh.n_shards(), t, "{tier}: wrong shard count");
            let mut u = vec![f64::NAN; a.n_rows()];
            plan.execute(&a, &v, &mut u).unwrap();
            assert_eq!(u, reference, "{tier}: {t} threads diverge from 1 thread");
            // Promotion re-proves the shard cover; the fast path must
            // stay bit-identical too.
            let verified = plan
                .verify(&a)
                .unwrap_or_else(|e| panic!("{tier}: sharded plan failed verify: {e}"));
            let mut u2 = vec![f64::NAN; a.n_rows()];
            verified.execute_unchecked(&a, &v, &mut u2).unwrap();
            assert_eq!(u2, reference, "{tier}: unchecked path diverges");
        }
    }
}

/// Adversarial cuts: far more shards than tiles (most shards empty) and
/// a single-tile queue (every shard but one empty) must still execute
/// bit-identically and verify.
#[test]
fn adversarial_shard_cuts_stay_bit_identical() {
    setup();
    let a = irregular(12);
    let v = probe_vector(a.n_cols(), 3);
    let base = PlanConfig {
        pack: false,
        cache_block: false,
        ..PlanConfig::default()
    };

    // More shards than tiles: the deal leaves empty shards, and workers
    // outnumbered by shards must still drain every queue (ring steal).
    let many = PlanConfig {
        shards: 64,
        tile_nnz: 1 << 12,
        ..base
    };
    let reference = reference_output(&a, coarse(KernelId::Serial), &base);
    let plan = plan_with(&a, coarse(KernelId::Serial), many, 3);
    let sh = plan.sharded().expect("shard table");
    assert!(
        sh.queues().iter().any(Vec::is_empty),
        "64 shards over few tiles should leave empty queues"
    );
    let mut u = vec![f64::NAN; a.n_rows()];
    plan.execute(&a, &v, &mut u).unwrap();
    assert_eq!(u, reference, "empty-shard cut diverges");
    plan.verify(&a).expect("empty shards must still verify");

    // One giant tile: a single shard owns all the work, the rest idle.
    let one_tile = PlanConfig {
        shards: 4,
        tile_nnz: usize::MAX,
        ..base
    };
    let plan = plan_with(&a, Strategy::single_kernel(KernelId::Vector), one_tile, 4);
    let sh = plan.sharded().expect("shard table");
    let nonempty = sh.queues().iter().filter(|q| !q.is_empty()).count();
    assert_eq!(nonempty, 1, "one tile must land in exactly one shard");
    let reference = reference_output(
        &a,
        Strategy::single_kernel(KernelId::Vector),
        &PlanConfig {
            tile_nnz: usize::MAX,
            ..PlanConfig {
                pack: false,
                cache_block: false,
                ..PlanConfig::default()
            }
        },
    );
    let mut u = vec![f64::NAN; a.n_rows()];
    plan.execute(&a, &v, &mut u).unwrap();
    assert_eq!(u, reference, "one-tile cut diverges");
    plan.verify(&a).expect("one-tile shard must still verify");
}

/// Repeated execution through one plan: the first-touch pass runs once,
/// and every subsequent execute is bit-identical to the first.
#[test]
fn repeated_sharded_execution_is_stable() {
    setup();
    let a = irregular(13);
    let v = probe_vector(a.n_cols(), 7);
    let cfg = PlanConfig {
        shards: 4,
        tile_nnz: 1 << 11,
        ..PlanConfig::default()
    };
    let plan = plan_with(&a, coarse(KernelId::Subvector(16)), cfg, 4);
    let mut first = vec![f64::NAN; a.n_rows()];
    plan.execute(&a, &v, &mut first).unwrap();
    for round in 0..3 {
        let mut u = vec![f64::NAN; a.n_rows()];
        plan.execute(&a, &v, &mut u).unwrap();
        assert_eq!(u, first, "round {round} diverges from first execute");
    }
}

/// The batched (SpMM) path routes through the same shard queues: each
/// output column must match the sharded single-vector execute — which
/// itself matches the single-threaded reference — bit for bit.
#[test]
fn batched_sharded_matches_columns_bit_for_bit() {
    setup();
    let a = irregular(14);
    for t in [2usize, 4] {
        let cfg = PlanConfig {
            shards: t,
            tile_nnz: 1 << 11,
            ..PlanConfig::default()
        };
        let plan = plan_with(&a, coarse(KernelId::Subvector(8)), cfg, t);
        assert!(plan.sharded().is_some());
        let k = 5usize;
        let mut x = DenseBlock::<f64>::zeros(a.n_cols(), k);
        x.fill_with(|i, j| ((i * 3 + j * 11) % 23) as f64 - 11.0);
        let mut y = DenseBlock::<f64>::zeros(a.n_rows(), k);
        plan.execute_batch(&a, &x, &mut y).unwrap();
        for j in 0..k {
            let v = x.column(j);
            let mut u = vec![f64::NAN; a.n_rows()];
            plan.execute(&a, &v, &mut u).unwrap();
            assert_eq!(y.column(j), u, "{t} shards: column {j} diverges");
        }
    }
}
