//! Figure 7 — kernel-auto versus CSR-Adaptive (Greathouse & Daga) over
//! the 16 representative matrices.
//!
//! The paper wins on 10 of 16 matrices with speedups up to 1.9×, losing
//! on crankseg_2, D6-6, dictionary28, europe_osm, Ga3As3H12 and
//! roadNet-CA (discussed in §IV-C). Regenerate with
//! `cargo run --release -p spmv-bench --bin fig7`.

use spmv_autotune::prelude::*;
use spmv_bench::load_suite;
use spmv_bench::setup::train_or_load_model;
use spmv_bench::table::{f3, Table};
use spmv_sparse::suite::SINGLE_BIN_CASES;

fn main() {
    let device = GpuDevice::kaveri();
    let (model, _) = train_or_load_model(&device);
    let auto = AutoSpmv::with_model(device.clone(), model);
    let baseline = CsrAdaptive::new();

    println!("== Figure 7: speedup of kernel-auto over CSR-Adaptive ==\n");
    let mut t = Table::new(vec!["matrix", "speedup", "winner", "paper winner"]);
    let mut wins = 0usize;
    let mut best = 0.0f64;
    for case in load_suite() {
        let a = &case.matrix;
        let v = vec![1.0f32; a.n_cols()];
        let mut u = vec![0.0f32; a.n_rows()];
        let auto_run = auto.run(a, &v, &mut u);
        let mut u2 = vec![0.0f32; a.n_rows()];
        let ca = baseline.run(&device, a, &v, &mut u2);
        let speedup = ca.cycles / auto_run.stats.cycles;
        if speedup >= 1.0 {
            wins += 1;
        }
        best = best.max(speedup);
        let paper_winner = if SINGLE_BIN_CASES.contains(&case.meta.name) {
            "CSR-Adaptive"
        } else {
            "auto"
        };
        t.row(vec![
            case.meta.name.to_string(),
            f3(speedup),
            if speedup >= 1.0 {
                "auto"
            } else {
                "CSR-Adaptive"
            }
            .to_string(),
            paper_winner.to_string(),
        ]);
    }
    t.print();
    println!("\nkernel-auto wins on {wins}/16 matrices (paper: 10/16)");
    println!("best speedup over CSR-Adaptive: {best:.2}x (paper: up to 1.9x)");
}
