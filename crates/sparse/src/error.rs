//! Error type for sparse-matrix construction and I/O.

use std::fmt;

/// Errors produced while constructing, validating, or parsing sparse
/// matrices.
#[derive(Debug)]
pub enum SparseError {
    /// Structural invariant violated (non-monotone row pointer, column
    /// index out of range, array-length mismatch, …).
    InvalidStructure(String),
    /// Dimension mismatch between operands (e.g. SpMV with a wrong-length
    /// vector).
    DimensionMismatch {
        /// Human-readable description of the operation.
        context: String,
        /// Size the operation expected.
        expected: usize,
        /// Size it was given.
        got: usize,
    },
    /// Matrix Market (or other) parse failure, with 1-based line number.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {got}"
            ),
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

/// Typed CSR construction failure, produced by [`CsrMatrix::try_new`].
/// Each variant names the violated invariant and the offending values, so
/// callers (and the `spmv-lint` analyzer) can match on the exact defect
/// instead of parsing a message string.
///
/// [`CsrMatrix::try_new`]: crate::csr::CsrMatrix::try_new
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrBuildError {
    /// `row_ptr.len()` must be `n_rows + 1`.
    RowPtrLen {
        /// Actual `row_ptr` length.
        len: usize,
        /// Declared row count.
        n_rows: usize,
    },
    /// `row_ptr[0]` must be 0.
    RowPtrStart {
        /// Actual first entry.
        first: usize,
    },
    /// `row_ptr[n_rows]` must equal `col_idx.len()`.
    NnzMismatch {
        /// Final `row_ptr` entry.
        last: usize,
        /// `col_idx.len()`.
        nnz: usize,
    },
    /// `col_idx` and `values` must have the same length.
    LengthMismatch {
        /// `col_idx.len()`.
        col_idx: usize,
        /// `values.len()`.
        values: usize,
    },
    /// `row_ptr` must be monotone non-decreasing; `row` is the first row
    /// whose pointer exceeds its successor.
    NonMonotone {
        /// First offending row index.
        row: usize,
    },
    /// Every column index must be below `n_cols`.
    ColOutOfBounds {
        /// Position in `col_idx` of the offending entry.
        pos: usize,
        /// The out-of-range column index.
        col: u32,
        /// Declared column count.
        n_cols: usize,
    },
}

impl fmt::Display for CsrBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CsrBuildError::RowPtrLen { len, n_rows } => {
                write!(f, "row_ptr length {len} != n_rows + 1 = {}", n_rows + 1)
            }
            CsrBuildError::RowPtrStart { first } => {
                write!(f, "row_ptr[0] = {first} (must be 0)")
            }
            CsrBuildError::NnzMismatch { last, nnz } => {
                write!(f, "row_ptr[last] = {last} != nnz = {nnz}")
            }
            CsrBuildError::LengthMismatch { col_idx, values } => {
                write!(f, "col_idx length {col_idx} != values length {values}")
            }
            CsrBuildError::NonMonotone { row } => {
                write!(f, "row_ptr decreases at row {row}")
            }
            CsrBuildError::ColOutOfBounds { pos, col, n_cols } => {
                write!(
                    f,
                    "column index {col} at position {pos} out of range (n_cols = {n_cols})"
                )
            }
        }
    }
}

impl std::error::Error for CsrBuildError {}

impl From<CsrBuildError> for SparseError {
    fn from(e: CsrBuildError) -> Self {
        SparseError::InvalidStructure(e.to_string())
    }
}

/// Typed rejection of a matrix handed to the triangular-solve stack
/// ([`level_sets`], [`split_triangular`], and the solve-plan builders in
/// `spmv-autotune`). Each variant names the violated premise and a
/// witness, so plan construction fails with a diagnosable error instead
/// of a panic (or a silently wrong solve).
///
/// [`level_sets`]: crate::solve::level_sets
/// [`split_triangular`]: crate::solve::split_triangular
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveBuildError {
    /// Triangular solves need a square system.
    NotSquare {
        /// Row count.
        n_rows: usize,
        /// Column count.
        n_cols: usize,
    },
    /// An entry sits on the wrong side of the diagonal for the
    /// requested direction (or beyond the matrix entirely): the matrix
    /// is not triangular the way the solve needs it to be.
    OffTriangle {
        /// Direction the solve was built for.
        direction: crate::solve::SolveDirection,
        /// Row of the witness entry.
        row: usize,
        /// Column of the witness entry.
        col: u32,
    },
    /// A row has no structural diagonal entry — the solve would divide
    /// by an entry that does not exist.
    MissingDiagonal {
        /// First diagonal-less row.
        row: usize,
    },
}

impl fmt::Display for SolveBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SolveBuildError::NotSquare { n_rows, n_cols } => {
                write!(
                    f,
                    "triangular solve needs a square matrix, got {n_rows}x{n_cols}"
                )
            }
            SolveBuildError::OffTriangle {
                direction,
                row,
                col,
            } => {
                let side = match direction {
                    crate::solve::SolveDirection::Forward => "above",
                    crate::solve::SolveDirection::Backward => "below",
                };
                write!(
                    f,
                    "{direction} solve needs a triangular matrix: row {row} has an entry in \
                     column {col}, {side} the diagonal"
                )
            }
            SolveBuildError::MissingDiagonal { row } => {
                write!(f, "row {row} has no structural diagonal entry to divide by")
            }
        }
    }
}

impl std::error::Error for SolveBuildError {}

impl From<SolveBuildError> for SparseError {
    fn from(e: SolveBuildError) -> Self {
        SparseError::InvalidStructure(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SparseError::InvalidStructure("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = SparseError::DimensionMismatch {
            context: "spmv".into(),
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("spmv"));
        assert!(e.to_string().contains('4'));
        let e = SparseError::Parse {
            line: 7,
            message: "nope".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = SparseError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
