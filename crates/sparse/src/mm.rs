//! Matrix Market I/O.
//!
//! The UF (SuiteSparse) collection the paper trains on is distributed in
//! the Matrix Market exchange format. This module implements the subset
//! used by that collection: `matrix coordinate {real|integer|pattern}
//! {general|symmetric|skew-symmetric}` plus `array real general` for dense
//! vectors.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field declared in the Matrix Market header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmField {
    /// Real-valued entries.
    Real,
    /// Integer entries (read as reals).
    Integer,
    /// Pattern-only entries (values default to 1).
    Pattern,
}

/// Symmetry declared in the Matrix Market header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; mirrored on read.
    Symmetric,
    /// Lower triangle stored; mirrored with negated values on read.
    SkewSymmetric,
}

fn parse_header(line: &str) -> Result<(MmField, MmSymmetry), SparseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let bad = |msg: &str| SparseError::Parse {
        line: 1,
        message: msg.to_string(),
    };
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(bad("missing %%MatrixMarket banner"));
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(bad("only 'matrix coordinate' objects are supported"));
    }
    let field = match toks[3].to_ascii_lowercase().as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(bad(&format!("unsupported field type '{other}'")));
        }
    };
    let sym = match toks[4].to_ascii_lowercase().as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => {
            return Err(bad(&format!("unsupported symmetry '{other}'")));
        }
    };
    Ok((field, sym))
}

/// Read a Matrix Market coordinate file into CSR form.
///
/// Symmetric/skew-symmetric storage is expanded, duplicate entries are
/// summed, and rows are sorted by column — the result is always a valid,
/// canonical [`CsrMatrix`].
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CsrMatrix<T>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or(SparseError::Parse {
        line: 1,
        message: "empty file".into(),
    })??;
    let (field, sym) = parse_header(&header)?;

    let mut lineno = 1usize;
    // Skip comments, find the size line.
    let size_line = loop {
        lineno += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse {
            line: lineno,
            message: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("size line needs 3 fields, got {}", dims.len()),
        });
    }
    let (m, n, declared_nnz) = (dims[0], dims[1], dims[2]);
    let mut coo = CooMatrix::<T>::with_capacity(m, n, declared_nnz);

    let mut seen = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_idx = |tok: Option<&str>, what: &str| -> Result<usize, SparseError> {
            tok.ok_or_else(|| SparseError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse::<usize>()
            .map_err(|e| SparseError::Parse {
                line: lineno,
                message: format!("bad {what}: {e}"),
            })
        };
        let i = parse_idx(it.next(), "row index")?;
        let j = parse_idx(it.next(), "column index")?;
        if i == 0 || j == 0 || i > m || j > n {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("index ({i}, {j}) out of 1-based range ({m}, {n})"),
            });
        }
        let v = match field {
            MmField::Pattern => T::ONE,
            _ => {
                let tok = it.next().ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    message: "missing value".into(),
                })?;
                let x: f64 = tok.parse().map_err(|e| SparseError::Parse {
                    line: lineno,
                    message: format!("bad value: {e}"),
                })?;
                T::from_f64(x)
            }
        };
        let (i, j) = (i - 1, j - 1);
        coo.push(i, j, v);
        match sym {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric if i != j => coo.push(j, i, v),
            MmSymmetry::SkewSymmetric if i != j => coo.push(j, i, T::ZERO - v),
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("declared {declared_nnz} entries but found {seen}"),
        });
    }
    Ok(coo.to_csr())
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<T: Scalar>(path: &Path) -> Result<CsrMatrix<T>, SparseError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market<T: Scalar, W: Write>(
    a: &CsrMatrix<T>,
    mut w: W,
) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by spmv-sparse")?;
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v.to_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::figure1_example;

    #[test]
    fn roundtrip_write_read() {
        let a = figure1_example::<f64>();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a: CsrMatrix<f32> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.values(), &[1.0, 1.0]);
    }

    #[test]
    fn symmetric_storage_is_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 5\n2 1 7\n3 2 9\n";
        let a: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 5); // diag + 2 mirrored pairs
        let d = a.to_dense();
        assert_eq!(d.get(0, 1), 7.0);
        assert_eq!(d.get(1, 0), 7.0);
        assert_eq!(d.get(2, 1), 9.0);
        assert_eq!(d.get(1, 2), 9.0);
    }

    #[test]
    fn skew_symmetric_negates_mirror() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n";
        let a: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        let d = a.to_dense();
        assert_eq!(d.get(1, 0), 3.0);
        assert_eq!(d.get(0, 1), -3.0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% another\n1 2 4.5\n";
        let a: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.to_dense().get(0, 1), 4.5);
    }

    #[test]
    fn integer_field_parses_as_real() {
        let text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 42\n";
        let a: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.values(), &[42.0]);
    }

    #[test]
    fn rejects_bad_banner() {
        let r = read_matrix_market::<f64, _>("not a matrix\n1 1 0\n".as_bytes());
        assert!(r.is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = figure1_example::<f32>();
        let dir = std::env::temp_dir().join("spmv_sparse_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.mtx");
        let mut f = std::fs::File::create(&path).unwrap();
        write_matrix_market(&a, &mut f).unwrap();
        drop(f);
        let b: CsrMatrix<f32> = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
    }
}
