//! Specialized-kernel throughput report: times the structured subset of
//! the Table II suite (the banded and block-coupled matrices, plus a
//! power-law control the gate must decline) over every kernel-table
//! tier — plain CSR, the PR 3 u32-lane floor, the PR 5 bottleneck-aware
//! gate with specialization off, the forced dense-run and row-run fast
//! paths, and the shipped gate with the full table — and emits
//! `BENCH_specialized.json` with GFLOP/s, modelled traffic (bytes per
//! non-zero), the per-tier format mix, and a thread sweep with scaling
//! efficiency.
//!
//! Every tier is asserted bit-for-bit against the sequential CSR
//! reference before its timing is reported.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin bench_specialized`.
//!
//! Knobs: `SPMV_BENCH_ITERS` (timed iterations, default 20),
//! `SPMV_BENCH_SPECIALIZED_OUT` (output path, default
//! `BENCH_specialized.json`), `SPMV_BENCH_TINY=1` (three small synthetic
//! matrices — the CI smoke mode).

use spmv_autotune::prelude::*;
use spmv_bench::setup::{env_usize, scaling_efficiency, sweep_threads};
use spmv_sparse::{gen, suite, CsrMatrix, IndexKind};
use std::fmt::Write as _;
use std::time::Instant;

/// The kernel-table tiers compared. `csr` and `u32` reproduce the
/// pre-packing and PR 3 layouts; `pr5-auto` is the PR 5 bottleneck-aware
/// gate with the structure fast paths switched off (the best prior
/// tier on every matrix); `dense-run` and `row-run` force one fast path
/// each (banded tier disabled, thresholds lowered to the suite's run
/// lengths); `auto` is the shipped gate searching the full table.
fn tiers() -> Vec<(&'static str, PlanConfig)> {
    vec![
        (
            "csr",
            PlanConfig {
                pack: false,
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "u32",
            PlanConfig {
                index: IndexPolicy::Fixed(IndexKind::U32),
                cache_block: false,
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "pr5-auto",
            PlanConfig {
                specialize: false,
                ..PlanConfig::default()
            },
        ),
        (
            "dense-run",
            PlanConfig {
                band_max_offsets: 0,
                min_dense_run: 2,
                min_row_run: 0,
                ..PlanConfig::default()
            },
        ),
        (
            "row-run",
            PlanConfig {
                llc_bytes: 0,
                band_max_offsets: 0,
                min_dense_run: 0,
                ..PlanConfig::default()
            },
        ),
        ("auto", PlanConfig::default()),
    ]
}

struct TierRow {
    tier: &'static str,
    threads: usize,
    gflops: f64,
    index_bpn: f64,
    value_bpn: f64,
    total_bpn: f64,
    banded_bins: usize,
    dense_run_bins: usize,
    row_run_bins: usize,
    packed_bins: usize,
    blocked_bins: usize,
    csr_bins: usize,
}

struct MatrixRow {
    name: String,
    m: usize,
    n: usize,
    nnz: usize,
    tiers: Vec<TierRow>,
}

fn time_loop(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(nnz: usize, iters: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 * iters as f64 / secs / 1e9
}

fn measure(name: &str, a: &CsrMatrix<f32>, iters: usize, threads: &[usize]) -> MatrixRow {
    let v: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
    let reference = a.spmv_seq_alloc(&v).unwrap();
    let strategy = Strategy {
        binning: BinningScheme::Coarse { u: 10 },
        kernels: vec![KernelId::Subvector(8); 8],
    };
    let mut rows = Vec::new();
    for (tier, config) in tiers() {
        for &w in threads {
            let backend = Box::new(NativeCpuBackend::new().with_workers(w));
            // Shard the tile queue to match the worker count, so every
            // tier's scaling curve runs through the sharded executor.
            let config = PlanConfig {
                shards: w,
                ..config
            };
            let verified = SpmvPlan::compile_with(a, strategy.clone(), backend, config)
                .verify(a)
                .expect("specialized plan must verify");
            let mut u = vec![0.0f32; a.n_rows()];
            let secs = time_loop(iters, || {
                verified.execute_unchecked(a, &v, &mut u).unwrap();
            });
            assert_eq!(
                u, reference,
                "{name}/{tier} (threads {w}) diverges from the CSR reference"
            );
            let plan = verified.plan();
            let traffic = plan.traffic();
            let (mut banded, mut dense_run, mut row_run) = (0usize, 0usize, 0usize);
            for d in plan.dispatch() {
                match d.format {
                    BinFormat::Banded { .. } => banded += 1,
                    BinFormat::DenseRun => dense_run += 1,
                    BinFormat::RowRunReuse => row_run += 1,
                    _ => {}
                }
            }
            rows.push(TierRow {
                tier,
                threads: w,
                gflops: gflops(a.nnz(), iters, secs),
                index_bpn: traffic.index_bytes_per_nnz(),
                value_bpn: traffic.value_bytes_per_nnz(),
                total_bpn: traffic.total_bytes_per_nnz(),
                banded_bins: banded,
                dense_run_bins: dense_run,
                row_run_bins: row_run,
                packed_bins: plan.packed_bins(),
                blocked_bins: plan.blocked_bins(),
                csr_bins: plan.dispatch().len()
                    - plan.packed_bins()
                    - plan.blocked_bins()
                    - plan.specialized_bins(),
            });
        }
    }
    MatrixRow {
        name: name.to_string(),
        m: a.n_rows(),
        n: a.n_cols(),
        nnz: a.nnz(),
        tiers: rows,
    }
}

/// The structured subset of the Table II suite: the three banded
/// matrices the `Banded` tier exists for, three block-coupled FEM
/// matrices whose identical-row blocks feed the dense-run and row-run
/// paths, and a power-law control where the gate must decline every
/// fast path (its `auto` row must match `pr5-auto`).
fn structured_suite() -> Vec<(String, CsrMatrix<f32>)> {
    [
        "apache1",
        "cryg10000",
        "denormal",
        "crankseg_2",
        "pcrystk02",
        "pkustk14",
        "dictionary28",
    ]
    .iter()
    .map(|name| {
        let meta = suite::by_name(name).expect("suite matrix");
        eprintln!("  generating {name} …");
        (name.to_string(), meta.generate())
    })
    .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let iters = env_usize("SPMV_BENCH_ITERS", 20);
    let tiny = std::env::var("SPMV_BENCH_TINY").is_ok_and(|s| s == "1");
    let out_path = std::env::var("SPMV_BENCH_SPECIALIZED_OUT")
        .unwrap_or_else(|_| "BENCH_specialized.json".to_string());

    let threads = sweep_threads();

    let cases: Vec<(String, CsrMatrix<f32>)> = if tiny {
        vec![
            ("tiny-banded7".into(), gen::banded::<f32>(4_000, 3, 2)),
            (
                "tiny-block6".into(),
                gen::block_structured::<f32>(300, 6, 8, 4),
            ),
            (
                "tiny-powerlaw".into(),
                gen::powerlaw::<f32>(3_000, 1, 150, 2.1, 3),
            ),
        ]
    } else {
        structured_suite()
    };

    let mut rows = Vec::new();
    for (name, a) in &cases {
        eprintln!(
            "  benchmarking {name} ({} x {}, {} nnz) …",
            a.n_rows(),
            a.n_cols(),
            a.nnz()
        );
        rows.push(measure(name, a, iters, &threads));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"specialized\",").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        spmv_parallel::machine_threads()
    )
    .unwrap();
    writeln!(
        json,
        "  \"pool_threads\": {},",
        spmv_parallel::num_threads()
    )
    .unwrap();
    write!(json, "  \"threads_swept\": [").unwrap();
    for (i, w) in threads.iter().enumerate() {
        write!(json, "{}{w}", if i > 0 { ", " } else { "" }).unwrap();
    }
    writeln!(json, "],").unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"tiny\": {tiny},").unwrap();
    writeln!(json, "  \"matrices\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"n\": {}, \"nnz\": {}, \"tiers\": [",
            json_escape(&r.name),
            r.m,
            r.n,
            r.nnz
        )
        .unwrap();
        for (j, t) in r.tiers.iter().enumerate() {
            let base = r
                .tiers
                .iter()
                .find(|q| q.tier == t.tier && q.threads == 1)
                .map(|q| q.gflops)
                .unwrap_or(0.0);
            write!(
                json,
                "      {{\"tier\": \"{}\", \"threads\": {}, \"gflops\": {:.3}, \
                 \"scaling_efficiency\": {:.3}, \
                 \"index_bytes_per_nnz\": {:.4}, \"value_bytes_per_nnz\": {:.4}, \
                 \"total_bytes_per_nnz\": {:.4}, \
                 \"banded_bins\": {}, \"dense_run_bins\": {}, \"row_run_bins\": {}, \
                 \"packed_bins\": {}, \"blocked_bins\": {}, \"csr_bins\": {}}}",
                t.tier,
                t.threads,
                t.gflops,
                scaling_efficiency(t.threads, t.gflops, base),
                t.index_bpn,
                t.value_bpn,
                t.total_bpn,
                t.banded_bins,
                t.dense_run_bins,
                t.row_run_bins,
                t.packed_bins,
                t.blocked_bins,
                t.csr_bins,
            )
            .unwrap();
            writeln!(json, "{}", if j + 1 < r.tiers.len() { "," } else { "" }).unwrap();
        }
        write!(json, "    ]}}").unwrap();
        writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
