//! Property tests of the scheduling substrate: every index visited
//! exactly once, partitions exact, reductions independent of grain.

use proptest::prelude::*;
use spmv_parallel::{chunk_ranges, parallel_for, parallel_map_collect, parallel_reduce, Chunk};
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunks_partition_exactly(n in 0usize..10_000, parts in 0usize..64) {
        let chunks = chunk_ranges(n, parts);
        let mut cursor = 0usize;
        for c in &chunks {
            prop_assert_eq!(c.start, cursor);
            prop_assert!(c.end > c.start);
            cursor = c.end;
        }
        prop_assert_eq!(cursor, if parts == 0 { 0 } else { n });
        if n > 0 && parts > 0 {
            let min = chunks.iter().map(Chunk::len).min().unwrap();
            let max = chunks.iter().map(Chunk::len).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn parallel_for_visits_each_index_once(n in 0usize..5_000, grain in 1usize..512) {
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, grain, |s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_is_order_preserving(n in 0usize..3_000, grain in 1usize..256) {
        let v = parallel_map_collect(n, grain, |i| i * 3 + 1);
        prop_assert_eq!(v.len(), n);
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(x, i * 3 + 1);
        }
    }

    #[test]
    fn reduce_is_grain_invariant(n in 0usize..4_000, g1 in 1usize..300, g2 in 1usize..300) {
        let run = |g: usize| {
            parallel_reduce(n, g, 0u64, |s, e| (s..e).map(|i| i as u64).sum(), |a, b| a + b)
        };
        prop_assert_eq!(run(g1), run(g2));
        prop_assert_eq!(run(g1), (0..n as u64).sum::<u64>());
    }
}
