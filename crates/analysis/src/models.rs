//! Small-N state-machine encodings of the `spmv-parallel` concurrency
//! protocols, explorable by [`crate::interleave::explore`].
//!
//! Each model carries a *bug toggle* that re-introduces a classic
//! protocol defect, so the adversarial tests can prove the checker
//! actually detects what it claims to:
//!
//! * [`BatchModel`] — the `ThreadPool::run_batch` completion protocol
//!   (`BatchState` in `crates/parallel/src/pool.rs`): workers decrement
//!   an atomic `pending` and the last one signals a condition variable
//!   the caller waits on. The buggy variant notifies *without* taking
//!   the lock first — the notify can then land in the waiter's
//!   check-to-sleep window and be lost, leaving the waiter asleep
//!   forever (detected as a deadlock).
//! * [`CursorModel`] — the dynamic-chunk claim in `parallel_for`
//!   (`crates/parallel/src/scope.rs`): workers claim chunks with one
//!   atomic `fetch_add`. The buggy variant splits the claim into a read
//!   and a write, letting two workers claim — and write — the same
//!   chunk (detected as a double-write violation).
//! * [`TwoLockModel`] — two threads taking two locks; with a consistent
//!   acquisition order the protocol passes, with opposite orders the
//!   explorer finds the deadlock cycle.
//! * [`ShardModel`] — the sharded-queue claim protocol
//!   (`sharded_for_each_scratch` in `crates/parallel/src/shard.rs`):
//!   each worker drains its home shard (`role % n_shards`) through an
//!   atomic per-shard cursor, then falls back to the remaining shards in
//!   ring order. The buggy variant drops the ring fallback — a worker
//!   stops after its home queue — so queues no worker is homed on (more
//!   shards than workers) are never drained (detected as stranded
//!   items).
//! * [`AdmissionModel`] — the serving layer's admission-queue protocol
//!   (`SpmvServer` in `crates/server/src/serve.rs`): producers enqueue
//!   requests and notify under the queue lock; one dispatcher drains
//!   coalesced batches of up to `K` requests, executes each batch
//!   *outside* the lock, then **reacquires and rechecks** the queue
//!   before ever waiting — so an arrival that lands while a batch is in
//!   flight is found on the recheck, and the condvar wait itself is an
//!   atomic unlock-and-sleep. The buggy variant splits that wait into
//!   unlock *then* sleep: a producer's notify can land in the window
//!   between them and be lost, stranding the enqueued request with the
//!   dispatcher asleep forever (detected as a deadlock).
//! * [`RefineModel`] — the online-refinement publish protocol
//!   (`refiner_loop` + `PlanCache::swap` in `crates/server`): a
//!   background refiner builds a candidate plan, **verifies** it, and
//!   only then publishes it into the shared cache slot; executors load
//!   whatever the slot holds and run it. Verification happening-before
//!   publication is exactly what makes the swap response-invariant. The
//!   buggy variant publishes first and verifies after — an executor can
//!   load the candidate in the gap and run an unverified plan (detected
//!   as a violation).
//! * [`LevelModel`] — the barrier-stepped level-solve protocol
//!   (`stepped_for_each` in `crates/parallel/src/step.rs`, driving the
//!   `SolvePlan` kernels): workers execute their slice of a level, meet
//!   at a barrier, then execute the next level, whose rows *read* rows
//!   written in the previous one. The buggy variant arrives at the
//!   barrier but does not wait — a worker can then read a dependency
//!   another worker has not written yet (detected as a
//!   read-before-write violation).

use crate::interleave::Model;

/// `run_batch` completion protocol: `workers` worker threads each
/// complete one job (decrementing `pending`), the last one signals; one
/// waiter blocks until `pending == 0`. Thread ids `0..workers` are
/// workers, `workers` is the waiter.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BatchModel {
    /// Jobs not yet completed.
    pending: u8,
    /// Current mutex holder (thread id), if any.
    lock: Option<u8>,
    /// Is the waiter asleep on the condition variable?
    sleeping: bool,
    /// Per-worker program counter.
    worker_pc: Vec<u8>,
    /// Waiter program counter.
    waiter_pc: u8,
    /// Re-introduce the notify-without-lock bug.
    buggy: bool,
}

impl BatchModel {
    /// A model with `workers` workers using the correct
    /// (notify-under-lock) protocol.
    pub fn correct(workers: u8) -> Self {
        Self::new(workers, false)
    }

    /// A model with `workers` workers whose last completer notifies
    /// without acquiring the lock — the lost-wakeup bug.
    pub fn notify_without_lock(workers: u8) -> Self {
        Self::new(workers, true)
    }

    fn new(workers: u8, buggy: bool) -> Self {
        Self {
            pending: workers,
            lock: None,
            sleeping: false,
            worker_pc: vec![0; workers as usize],
            waiter_pc: 0,
            buggy,
        }
    }

    fn waiter_id(&self) -> usize {
        self.worker_pc.len()
    }

    /// Wake the waiter if (and only if) it is currently asleep; a notify
    /// with nobody sleeping is lost, exactly like a real condvar.
    fn notify(&mut self) {
        if self.sleeping {
            self.sleeping = false;
        }
    }
}

// Worker pcs: 0 = fetch_sub pending; 1 = acquire lock (correct) or
// notify unlocked (buggy); 2 = notify + unlock (correct only); 3 = done.
// Waiter pcs: 0 = acquire lock; 1 = check pending under lock;
// 2 = cv-wait (atomic unlock + sleep); 3 = woken, reacquire lock;
// 4 = done.
impl Model for BatchModel {
    fn n_threads(&self) -> usize {
        self.worker_pc.len() + 1
    }

    fn runnable(&self, t: usize) -> bool {
        if t < self.worker_pc.len() {
            match self.worker_pc[t] {
                0 => true,
                1 => self.buggy || self.lock.is_none(),
                2 => true,
                _ => false,
            }
        } else {
            match self.waiter_pc {
                0 => self.lock.is_none(),
                1 | 2 => true,
                // Asleep on the condvar: only a notify makes the waiter
                // runnable again (then it must reacquire the lock).
                3 => !self.sleeping && self.lock.is_none(),
                _ => false,
            }
        }
    }

    fn step(&mut self, t: usize) {
        if t < self.worker_pc.len() {
            match self.worker_pc[t] {
                0 => {
                    // pending.fetch_sub(1): last completer goes on to
                    // signal, everyone else is done.
                    let was = self.pending;
                    self.pending -= 1;
                    self.worker_pc[t] = if was == 1 { 1 } else { 3 };
                }
                1 => {
                    if self.buggy {
                        // BUG: notify without holding the lock — can
                        // land between the waiter's check and sleep.
                        self.notify();
                        self.worker_pc[t] = 3;
                    } else {
                        self.lock = Some(t as u8);
                        self.worker_pc[t] = 2;
                    }
                }
                2 => {
                    self.notify();
                    self.lock = None;
                    self.worker_pc[t] = 3;
                }
                _ => unreachable!(),
            }
        } else {
            let w = self.waiter_id() as u8;
            match self.waiter_pc {
                0 | 3 => {
                    self.lock = Some(w);
                    self.waiter_pc = 1;
                }
                1 => {
                    if self.pending == 0 {
                        self.lock = None;
                        self.waiter_pc = 4;
                    } else {
                        self.waiter_pc = 2;
                    }
                }
                2 => {
                    // cv.wait(): atomically release the lock and sleep.
                    self.lock = None;
                    self.sleeping = true;
                    self.waiter_pc = 3;
                }
                _ => unreachable!(),
            }
        }
    }

    fn done(&self) -> bool {
        self.waiter_pc == 4 && self.worker_pc.iter().all(|&pc| pc == 3)
    }

    fn violation(&self) -> Option<String> {
        if self.waiter_pc == 4 && self.pending != 0 {
            return Some(format!(
                "waiter returned with {} jobs still pending",
                self.pending
            ));
        }
        None
    }
}

// A waiter at pc 3 is runnable only once awake: `runnable` requires the
// lock free AND — enforced here — not sleeping.
impl BatchModel {
    /// Is the waiter blocked on the condition variable right now?
    pub fn waiter_asleep(&self) -> bool {
        self.sleeping
    }
}

/// Dynamic-chunk claim protocol of `parallel_for`: `threads` workers
/// repeatedly claim the next item from a shared cursor and write it.
/// Correct claims are one atomic `fetch_add`; the buggy variant splits
/// read and increment, so two workers can claim the same item.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CursorModel {
    cursor: u8,
    items: u8,
    writes: Vec<u8>,
    pc: Vec<u8>,
    local: Vec<u8>,
    buggy: bool,
}

impl CursorModel {
    /// Correct protocol: atomic claim.
    pub fn atomic_claim(threads: u8, items: u8) -> Self {
        Self::new(threads, items, false)
    }

    /// Buggy protocol: the claim is a separate read and write.
    pub fn racy_claim(threads: u8, items: u8) -> Self {
        Self::new(threads, items, true)
    }

    fn new(threads: u8, items: u8, buggy: bool) -> Self {
        Self {
            cursor: 0,
            items,
            writes: vec![0; items as usize],
            pc: vec![0; threads as usize],
            local: vec![0; threads as usize],
            buggy,
        }
    }
}

// Correct pcs: 0 = fetch_add claim (and exit check); 1 = write; done = 9.
// Buggy pcs: 0 = read cursor; 1 = write cursor+1 (and exit check);
// 2 = write item; done = 9.
impl Model for CursorModel {
    fn n_threads(&self) -> usize {
        self.pc.len()
    }

    fn runnable(&self, t: usize) -> bool {
        self.pc[t] != 9
    }

    fn step(&mut self, t: usize) {
        if self.buggy {
            match self.pc[t] {
                0 => {
                    // BUG (part 1): read the cursor…
                    self.local[t] = self.cursor;
                    self.pc[t] = 1;
                }
                1 => {
                    // BUG (part 2): …then bump it in a separate step —
                    // another thread may have claimed the same value in
                    // between.
                    self.cursor = self.local[t] + 1;
                    self.pc[t] = if self.local[t] >= self.items { 9 } else { 2 };
                }
                2 => {
                    self.writes[self.local[t] as usize] += 1;
                    self.pc[t] = 0;
                }
                _ => unreachable!(),
            }
        } else {
            match self.pc[t] {
                0 => {
                    // cursor.fetch_add(1): claim and bump atomically.
                    self.local[t] = self.cursor;
                    self.cursor += 1;
                    self.pc[t] = if self.local[t] >= self.items { 9 } else { 1 };
                }
                1 => {
                    self.writes[self.local[t] as usize] += 1;
                    self.pc[t] = 0;
                }
                _ => unreachable!(),
            }
        }
    }

    fn done(&self) -> bool {
        self.pc.iter().all(|&pc| pc == 9)
    }

    fn violation(&self) -> Option<String> {
        if let Some(i) = self.writes.iter().position(|&w| w > 1) {
            return Some(format!("item {i} written {} times", self.writes[i]));
        }
        if self.done() {
            if let Some(i) = self.writes.iter().position(|&w| w == 0) {
                return Some(format!("item {i} never written"));
            }
        }
        None
    }
}

/// Two threads, two locks. With `consistent_order` both take lock A
/// before lock B; otherwise thread 1 takes them in the opposite order,
/// and the explorer finds the hold-and-wait cycle.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TwoLockModel {
    lock_a: Option<u8>,
    lock_b: Option<u8>,
    pc: [u8; 2],
    consistent: bool,
}

impl TwoLockModel {
    /// Both threads acquire A then B — deadlock-free.
    pub fn consistent_order() -> Self {
        Self {
            lock_a: None,
            lock_b: None,
            pc: [0, 0],
            consistent: true,
        }
    }

    /// Thread 0 takes A→B, thread 1 takes B→A — the classic cycle.
    pub fn opposite_order() -> Self {
        Self {
            lock_a: None,
            lock_b: None,
            pc: [0, 0],
            consistent: false,
        }
    }

    /// Which lock thread `t` acquires at program counter `pc` (0 = first
    /// acquisition, 1 = second).
    fn wants_a(&self, t: usize, pc: u8) -> bool {
        let first_is_a = t == 0 || self.consistent;
        (pc == 0) == first_is_a
    }
}

// pcs: 0 = acquire first lock; 1 = acquire second; 2 = release both;
// 3 = done.
impl Model for TwoLockModel {
    fn n_threads(&self) -> usize {
        2
    }

    fn runnable(&self, t: usize) -> bool {
        match self.pc[t] {
            0 | 1 => {
                if self.wants_a(t, self.pc[t]) {
                    self.lock_a.is_none()
                } else {
                    self.lock_b.is_none()
                }
            }
            2 => true,
            _ => false,
        }
    }

    fn step(&mut self, t: usize) {
        match self.pc[t] {
            0 | 1 => {
                if self.wants_a(t, self.pc[t]) {
                    self.lock_a = Some(t as u8);
                } else {
                    self.lock_b = Some(t as u8);
                }
                self.pc[t] += 1;
            }
            2 => {
                if self.lock_a == Some(t as u8) {
                    self.lock_a = None;
                }
                if self.lock_b == Some(t as u8) {
                    self.lock_b = None;
                }
                self.pc[t] = 3;
            }
            _ => unreachable!(),
        }
    }

    fn done(&self) -> bool {
        self.pc == [3, 3]
    }

    fn violation(&self) -> Option<String> {
        None
    }
}

/// Sharded-queue claim protocol of `sharded_for_each_scratch`:
/// `workers` workers each drain the shard they are homed on
/// (`role % n_shards`) by atomic cursor `fetch_add`, then visit the
/// remaining shards in ring order (`home + 1`, `home + 2`, …) as a
/// stealing fallback. The buggy variant stops after the home shard.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShardModel {
    /// Immutable queue lengths per shard.
    sizes: Vec<u8>,
    /// Per-shard claim cursor (the atomic `fetch_add` target).
    cursors: Vec<u8>,
    /// Per-item claim count, flattened shard-major.
    claims: Vec<u8>,
    /// Per-worker ring offset `d` (the worker is draining shard
    /// `(home + d) % n_shards`); `DONE` when it has exited.
    offset: Vec<u8>,
    /// Re-introduce the no-fallback bug.
    buggy: bool,
}

impl ShardModel {
    const DONE: u8 = u8::MAX;

    /// Correct protocol: home shard first, ring fallback over the rest.
    pub fn correct(workers: u8, sizes: &[u8]) -> Self {
        Self::new(workers, sizes, false)
    }

    /// Buggy protocol: a worker drains only its home shard, so shards
    /// no worker is homed on are never visited.
    pub fn no_cross_shard_fallback(workers: u8, sizes: &[u8]) -> Self {
        Self::new(workers, sizes, true)
    }

    fn new(workers: u8, sizes: &[u8], buggy: bool) -> Self {
        assert!(!sizes.is_empty(), "need at least one shard");
        let items: usize = sizes.iter().map(|&n| n as usize).sum();
        Self {
            sizes: sizes.to_vec(),
            cursors: vec![0; sizes.len()],
            claims: vec![0; items],
            offset: vec![0; workers as usize],
            buggy,
        }
    }

    /// Flattened item index of slot `i` in shard `s`.
    fn flat(&self, s: usize, i: u8) -> usize {
        let before: usize = self.sizes[..s].iter().map(|&n| n as usize).sum();
        before + i as usize
    }

    /// How many shards a worker visits before exiting.
    fn ring_len(&self) -> u8 {
        if self.buggy {
            1
        } else {
            self.sizes.len() as u8
        }
    }
}

// One step is one atomic claim attempt on the current shard: claim-and-
// bump when the queue has items left (the real `fetch_add`), otherwise
// advance to the next ring position or exit.
impl Model for ShardModel {
    fn n_threads(&self) -> usize {
        self.offset.len()
    }

    fn runnable(&self, t: usize) -> bool {
        self.offset[t] != Self::DONE
    }

    fn step(&mut self, t: usize) {
        let n_shards = self.sizes.len();
        let home = t % n_shards;
        let d = self.offset[t];
        let s = (home + d as usize) % n_shards;
        let i = self.cursors[s];
        if i < self.sizes[s] {
            // cursors[s].fetch_add(1): claim slot i atomically.
            self.cursors[s] += 1;
            let idx = self.flat(s, i);
            self.claims[idx] += 1;
        } else {
            // Queue exhausted: move along the ring, or exit.
            self.offset[t] = if d + 1 < self.ring_len() {
                d + 1
            } else {
                Self::DONE
            };
        }
    }

    fn done(&self) -> bool {
        self.offset.iter().all(|&d| d == Self::DONE)
    }

    fn violation(&self) -> Option<String> {
        if let Some(i) = self.claims.iter().position(|&c| c > 1) {
            return Some(format!("item {i} claimed {} times", self.claims[i]));
        }
        if self.done() {
            if let Some(i) = self.claims.iter().position(|&c| c == 0) {
                return Some(format!("item {i} stranded: no worker ever claimed it"));
            }
        }
        None
    }
}

/// Admission-queue coalescing protocol of the serving layer:
/// `producers` producer threads each enqueue one request (and mark
/// themselves finished) under the queue lock, notifying the dispatcher
/// before unlocking; one dispatcher thread drains batches of up to
/// `max_batch` requests, executes each batch outside the lock, then
/// reacquires the lock and rechecks the queue before deciding to wait.
/// Thread ids `0..producers` are producers, `producers` is the
/// dispatcher.
///
/// The modelled wait is the *indefinite* empty-queue wait (the
/// coalescing-window `wait_timeout` only runs when a partial batch is
/// already pending, and a timeout would eventually mask a lost wakeup —
/// the protocol must not need that rescue). Partial batches are
/// implicit: the dispatcher takes `min(queued, max_batch)` whenever the
/// queue is non-empty, which covers both the batch-full and the
/// window-expired dispatch triggers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AdmissionModel {
    /// Requests enqueued and not yet taken into a batch.
    queued: u8,
    /// Requests whose batch has been dispatched (responses filled).
    served: u8,
    /// Requests currently in the in-flight batch (outside the lock).
    in_flight: u8,
    /// Producers that have finished their enqueue.
    producers_done: u8,
    /// Current queue-lock holder (thread id), if any.
    lock: Option<u8>,
    /// Is the dispatcher asleep on the condition variable?
    sleeping: bool,
    /// Per-producer program counter.
    prod_pc: Vec<u8>,
    /// Dispatcher program counter.
    disp_pc: u8,
    /// Batch-size cap `K`.
    max_batch: u8,
    /// Re-introduce the non-atomic (unlock, then sleep) wait.
    buggy: bool,
}

impl AdmissionModel {
    /// Correct protocol: the dispatcher's cv-wait atomically unlocks and
    /// sleeps, and every wait is preceded by a locked recheck.
    pub fn correct(producers: u8, max_batch: u8) -> Self {
        Self::new(producers, max_batch, false)
    }

    /// Buggy protocol: the dispatcher releases the lock and only then
    /// goes to sleep — a notify landing in between is lost.
    pub fn sleep_after_unlock(producers: u8, max_batch: u8) -> Self {
        Self::new(producers, max_batch, true)
    }

    fn new(producers: u8, max_batch: u8, buggy: bool) -> Self {
        assert!(max_batch >= 1, "batch cap must be at least 1");
        Self {
            queued: 0,
            served: 0,
            in_flight: 0,
            producers_done: 0,
            lock: None,
            sleeping: false,
            prod_pc: vec![0; producers as usize],
            disp_pc: 0,
            max_batch,
            buggy,
        }
    }

    fn dispatcher_id(&self) -> usize {
        self.prod_pc.len()
    }

    /// Wake the dispatcher if (and only if) it is currently asleep; a
    /// notify with nobody sleeping is lost, exactly like a real condvar.
    fn notify(&mut self) {
        if self.sleeping {
            self.sleeping = false;
        }
    }
}

// Producer pcs: 0 = acquire lock; 1 = enqueue + notify + unlock;
// 2 = done.
// Dispatcher pcs: 0 = acquire lock; 1 = locked check (take batch /
// exit / wait); 2 = execute batch outside the lock; 3 = asleep (wake
// reacquires the lock); 4 = sleep without the lock (buggy only, the
// lock was released at pc 1); 6 = done.
impl Model for AdmissionModel {
    fn n_threads(&self) -> usize {
        self.prod_pc.len() + 1
    }

    fn runnable(&self, t: usize) -> bool {
        if t < self.prod_pc.len() {
            match self.prod_pc[t] {
                0 => self.lock.is_none(),
                1 => true,
                _ => false,
            }
        } else {
            match self.disp_pc {
                0 => self.lock.is_none(),
                1 | 2 | 4 => true,
                // Asleep: only a notify makes the dispatcher runnable
                // again (then it must reacquire the lock).
                3 => !self.sleeping && self.lock.is_none(),
                _ => false,
            }
        }
    }

    fn step(&mut self, t: usize) {
        if t < self.prod_pc.len() {
            match self.prod_pc[t] {
                0 => {
                    self.lock = Some(t as u8);
                    self.prod_pc[t] = 1;
                }
                1 => {
                    // Enqueue, mark this producer finished, and notify —
                    // all under the lock — then unlock.
                    self.queued += 1;
                    self.producers_done += 1;
                    self.notify();
                    self.lock = None;
                    self.prod_pc[t] = 2;
                }
                _ => unreachable!(),
            }
        } else {
            let d = self.dispatcher_id() as u8;
            match self.disp_pc {
                0 | 3 => {
                    self.lock = Some(d);
                    self.disp_pc = 1;
                }
                1 => {
                    if self.queued > 0 {
                        // Coalesce up to `max_batch` requests and leave
                        // the lock to execute them.
                        let take = self.queued.min(self.max_batch);
                        self.queued -= take;
                        self.in_flight = take;
                        self.lock = None;
                        self.disp_pc = 2;
                    } else if self.producers_done as usize == self.prod_pc.len() {
                        self.lock = None;
                        self.disp_pc = 6;
                    } else if self.buggy {
                        // BUG (part 1): release the lock first…
                        self.lock = None;
                        self.disp_pc = 4;
                    } else {
                        // cv.wait(): atomically unlock and sleep.
                        self.lock = None;
                        self.sleeping = true;
                        self.disp_pc = 3;
                    }
                }
                2 => {
                    // Execute the batch outside the lock, then loop back
                    // to reacquire and recheck — arrivals that landed
                    // during execution are found there, never waited
                    // past.
                    self.served += self.in_flight;
                    self.in_flight = 0;
                    self.disp_pc = 0;
                }
                4 => {
                    // BUG (part 2): …then sleep in a separate step. A
                    // notify arriving in between found nobody sleeping
                    // and was lost.
                    self.sleeping = true;
                    self.disp_pc = 3;
                }
                _ => unreachable!(),
            }
        }
    }

    fn done(&self) -> bool {
        self.disp_pc == 6 && self.prod_pc.iter().all(|&pc| pc == 2)
    }

    fn violation(&self) -> Option<String> {
        if self.disp_pc == 6 {
            if self.queued > 0 || self.in_flight > 0 {
                return Some(format!(
                    "dispatcher exited with {} queued + {} in-flight requests",
                    self.queued, self.in_flight
                ));
            }
            if self.served != self.producers_done {
                return Some(format!(
                    "{} requests enqueued but {} served",
                    self.producers_done, self.served
                ));
            }
        }
        None
    }
}

/// Online-refinement publish protocol (`refiner_loop` feeding
/// `PlanCache::swap`): version 0 is the incumbent plan (verified before
/// it was ever cached), version 1 the refiner's candidate. The refiner
/// builds the candidate, verifies it, then publishes it by swapping the
/// shared slot; each executor performs two lookup-execute rounds — load
/// the slot's current version (one atomic step, the cache's read-locked
/// hit), then execute what it loaded (so a round that straddles the
/// swap keeps running its own version, like an execute holding its
/// `Arc`). The safety property: **no executor ever runs an unverified
/// version**. The buggy variant swaps publish and verify.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RefineModel {
    /// The published slot: the version a fresh lookup receives.
    slot: u8,
    /// Has version `v` passed verification? Index 0 = incumbent
    /// (verified from the start), 1 = candidate.
    verified: [bool; 2],
    /// Per-executor pc: even = load the slot, odd = execute the loaded
    /// version; `2 * ROUNDS` = done.
    exec_pc: Vec<u8>,
    /// Per-executor loaded version.
    loaded: Vec<u8>,
    /// Refiner pc: 0 = build, 1..=2 = verify/publish (order is the bug
    /// toggle), 3 = done.
    ref_pc: u8,
    /// First unverified execution observed, as `(executor, version)`.
    bad_exec: Option<(u8, u8)>,
    /// Re-introduce the publish-before-verify bug.
    buggy: bool,
}

/// Lookup-execute rounds per executor: two, so one executor can run the
/// incumbent while another runs the freshly published candidate.
const REFINE_ROUNDS: u8 = 2;

impl RefineModel {
    /// Correct protocol: the candidate is verified before it is
    /// published.
    pub fn correct(executors: u8) -> Self {
        Self::new(executors, false)
    }

    /// Buggy protocol: the candidate is published first and verified
    /// after — executors can run it unverified.
    pub fn publish_before_verify(executors: u8) -> Self {
        Self::new(executors, true)
    }

    fn new(executors: u8, buggy: bool) -> Self {
        assert!((1..=4).contains(&executors), "1..=4 executors");
        Self {
            slot: 0,
            verified: [true, false],
            exec_pc: vec![0; executors as usize],
            loaded: vec![0; executors as usize],
            ref_pc: 0,
            bad_exec: None,
            buggy,
        }
    }
}

impl Model for RefineModel {
    fn n_threads(&self) -> usize {
        self.exec_pc.len() + 1
    }

    fn runnable(&self, t: usize) -> bool {
        if t < self.exec_pc.len() {
            self.exec_pc[t] < 2 * REFINE_ROUNDS
        } else {
            self.ref_pc < 3
        }
    }

    fn step(&mut self, t: usize) {
        if t < self.exec_pc.len() {
            if self.exec_pc[t].is_multiple_of(2) {
                // Lookup: load whatever the slot currently publishes.
                self.loaded[t] = self.slot;
            } else {
                // Execute the version this round loaded.
                let v = self.loaded[t];
                if !self.verified[v as usize] && self.bad_exec.is_none() {
                    self.bad_exec = Some((t as u8, v));
                }
            }
            self.exec_pc[t] += 1;
        } else {
            match (self.ref_pc, self.buggy) {
                // Build the candidate (exists, unverified, unpublished).
                (0, _) => {}
                // Correct: verify, then publish.
                (1, false) => self.verified[1] = true,
                (2, false) => self.slot = 1,
                // BUG: publish first, verify after.
                (1, true) => self.slot = 1,
                (2, true) => self.verified[1] = true,
                _ => unreachable!(),
            }
            self.ref_pc += 1;
        }
    }

    fn done(&self) -> bool {
        self.ref_pc == 3 && self.exec_pc.iter().all(|&pc| pc == 2 * REFINE_ROUNDS)
    }

    fn violation(&self) -> Option<String> {
        if let Some((e, v)) = self.bad_exec {
            return Some(format!(
                "executor {e} ran plan version {v} before it was verified"
            ));
        }
        if self.done() && self.slot == 1 && !self.verified[1] {
            return Some("unverified candidate left published".into());
        }
        None
    }
}

/// Barrier-stepped level-solve protocol of `stepped_for_each`: a fixed
/// two-level schedule over four rows — level 0 is rows {0, 1} (no
/// dependencies), level 1 is rows {2, 3} where row 2 reads row 1 and
/// row 3 reads row 0. Row `i` of a level is owned by worker
/// `i % workers`, so with two or more workers every level-1 row depends
/// on a row *another* worker writes — exactly the cross-worker edge the
/// barrier must order. Each worker writes its level-0 rows, arrives at
/// the barrier, waits for everyone, then executes its level-1 rows
/// (reading the dependency, then writing the row). The buggy variant
/// arrives but does not wait.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LevelModel {
    /// Has row `r` been written yet?
    written: [bool; 4],
    /// Barrier arrival counter.
    arrived: u8,
    /// Per-worker stage: 0 = write level-0 rows, 1 = barrier arrive,
    /// 2 = barrier wait, 3 = execute level-1 rows, 4 = done.
    pc: Vec<u8>,
    /// Per-worker cursor into its owned rows of the current level.
    k: Vec<u8>,
    /// First read of an unwritten dependency, as `(row, dep)`.
    bad_read: Option<(u8, u8)>,
    /// Re-introduce the skipped-barrier bug.
    buggy: bool,
}

/// `(row, dependency)` per level-1 row: row 2 reads row 1, row 3 reads
/// row 0.
const LEVEL1_DEPS: [(u8, u8); 2] = [(2, 1), (3, 0)];

impl LevelModel {
    /// Correct protocol: every worker waits at the barrier between
    /// levels.
    pub fn correct(workers: u8) -> Self {
        Self::new(workers, false)
    }

    /// Buggy protocol: workers arrive at the barrier but proceed
    /// without waiting — level-1 reads can beat level-0 writes.
    pub fn skipped_barrier(workers: u8) -> Self {
        Self::new(workers, true)
    }

    fn new(workers: u8, buggy: bool) -> Self {
        assert!((1..=4).contains(&workers), "1..=4 workers");
        Self {
            written: [false; 4],
            arrived: 0,
            pc: vec![0; workers as usize],
            k: vec![0; workers as usize],
            bad_read: None,
            buggy,
        }
    }

    /// Rows of level `level` owned by worker `t` (row `i % workers`).
    fn owned(&self, t: usize, level: usize) -> Vec<u8> {
        let rows: [u8; 2] = if level == 0 { [0, 1] } else { [2, 3] };
        rows.iter()
            .enumerate()
            .filter(|(i, _)| i % self.pc.len() == t)
            .map(|(_, &r)| r)
            .collect()
    }
}

impl Model for LevelModel {
    fn n_threads(&self) -> usize {
        self.pc.len()
    }

    fn runnable(&self, t: usize) -> bool {
        match self.pc[t] {
            // The barrier wait blocks until everyone has arrived.
            2 => self.arrived as usize == self.pc.len(),
            4 => false,
            _ => true,
        }
    }

    fn step(&mut self, t: usize) {
        match self.pc[t] {
            0 => {
                let owned = self.owned(t, 0);
                if let Some(&r) = owned.get(self.k[t] as usize) {
                    self.written[r as usize] = true;
                    self.k[t] += 1;
                }
                if self.k[t] as usize >= owned.len() {
                    self.pc[t] = 1;
                }
            }
            1 => {
                // Barrier arrival (the atomic part every variant keeps).
                self.arrived += 1;
                self.k[t] = 0;
                // BUG toggle: the buggy worker does not wait for the
                // others before starting the next level.
                self.pc[t] = if self.buggy { 3 } else { 2 };
            }
            2 => {
                self.pc[t] = 3;
            }
            3 => {
                let owned = self.owned(t, 1);
                if let Some(&r) = owned.get(self.k[t] as usize) {
                    let (row, dep) = LEVEL1_DEPS[(r - 2) as usize];
                    if !self.written[dep as usize] && self.bad_read.is_none() {
                        self.bad_read = Some((row, dep));
                    }
                    self.written[r as usize] = true;
                    self.k[t] += 1;
                }
                if self.k[t] as usize >= owned.len() {
                    self.pc[t] = 4;
                }
            }
            _ => unreachable!(),
        }
    }

    fn done(&self) -> bool {
        self.pc.iter().all(|&pc| pc == 4)
    }

    fn violation(&self) -> Option<String> {
        if let Some((row, dep)) = self.bad_read {
            return Some(format!("row {row} read row {dep} before it was written"));
        }
        if self.done() {
            if let Some(r) = self.written.iter().position(|&w| !w) {
                return Some(format!("row {r} never written"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::{explore, Verdict};

    const BUDGET: usize = 200_000;

    #[test]
    fn batch_protocol_is_sound() {
        for workers in 1..=3 {
            let v = explore(BatchModel::correct(workers), BUDGET);
            assert!(v.passed(), "workers={workers}: {v}");
        }
    }

    #[test]
    fn notify_without_lock_loses_the_wakeup() {
        let v = explore(BatchModel::notify_without_lock(2), BUDGET);
        assert!(matches!(v, Verdict::Deadlock { .. }), "got {v}");
    }

    #[test]
    fn atomic_cursor_claim_is_sound() {
        let v = explore(CursorModel::atomic_claim(2, 3), BUDGET);
        assert!(v.passed(), "got {v}");
    }

    #[test]
    fn racy_cursor_claim_double_writes() {
        let v = explore(CursorModel::racy_claim(2, 2), BUDGET);
        match v {
            Verdict::Violation { message, .. } => {
                assert!(message.contains("written"), "unexpected message {message}");
            }
            other => panic!("expected Violation, got {other}"),
        }
    }

    #[test]
    fn shard_claim_protocol_is_sound() {
        // Workers × shard shapes covering: balanced, empty shard,
        // one-item shard, and more shards than workers.
        let configs: [(u8, &[u8]); 4] = [
            (1, &[2, 2]),
            (2, &[2, 0, 1]),
            (2, &[1, 1, 1, 1]),
            (3, &[2, 1]),
        ];
        for (workers, sizes) in configs {
            let v = explore(ShardModel::correct(workers, sizes), BUDGET);
            assert!(v.passed(), "workers={workers}, sizes={sizes:?}: {v}");
        }
    }

    #[test]
    fn dropping_the_ring_fallback_strands_items() {
        // Two workers homed on shards 0 and 1; shard 2 has items only
        // the ring fallback would reach.
        let v = explore(ShardModel::no_cross_shard_fallback(2, &[1, 1, 1]), BUDGET);
        match v {
            Verdict::Violation { message, .. } => {
                assert!(message.contains("stranded"), "unexpected message {message}");
            }
            other => panic!("expected Violation, got {other}"),
        }
    }

    #[test]
    fn barrier_stepped_levels_are_sound() {
        for workers in 1..=3 {
            let v = explore(LevelModel::correct(workers), BUDGET);
            assert!(v.passed(), "workers={workers}: {v}");
        }
    }

    #[test]
    fn skipping_the_barrier_races_a_dependency_read() {
        let v = explore(LevelModel::skipped_barrier(2), BUDGET);
        match v {
            Verdict::Violation { message, .. } => {
                assert!(
                    message.contains("before it was written"),
                    "unexpected message {message}"
                );
            }
            other => panic!("expected Violation, got {other}"),
        }
    }

    #[test]
    fn one_worker_needs_no_barrier() {
        // A single worker executes levels in program order: even the
        // buggy variant cannot race with itself.
        let v = explore(LevelModel::skipped_barrier(1), BUDGET);
        assert!(v.passed(), "got {v}");
    }

    #[test]
    fn admission_protocol_is_sound() {
        // Producers × batch caps covering: serial admission, coalesced
        // full batches, partial batches (more producers than the cap
        // forces multiple dispatches; a cap above the producer count
        // forces a partial one).
        for producers in 1..=3u8 {
            for max_batch in [1, 2, 8] {
                let v = explore(AdmissionModel::correct(producers, max_batch), BUDGET);
                assert!(v.passed(), "producers={producers}, k={max_batch}: {v}");
            }
        }
    }

    #[test]
    fn sleeping_after_unlock_loses_an_arrival() {
        let v = explore(AdmissionModel::sleep_after_unlock(2, 8), BUDGET);
        assert!(matches!(v, Verdict::Deadlock { .. }), "got {v}");
    }

    #[test]
    fn even_one_producer_can_slip_the_non_atomic_wait() {
        // Dispatcher checks the empty queue, unlocks; the lone producer
        // enqueues and notifies into the gap; the dispatcher then sleeps
        // forever on a request that is already there.
        let v = explore(AdmissionModel::sleep_after_unlock(1, 1), BUDGET);
        assert!(matches!(v, Verdict::Deadlock { .. }), "got {v}");
    }

    #[test]
    fn refine_publish_protocol_is_sound() {
        for executors in 1..=3 {
            let v = explore(RefineModel::correct(executors), BUDGET);
            assert!(v.passed(), "executors={executors}: {v}");
        }
    }

    #[test]
    fn publishing_before_verifying_runs_an_unverified_plan() {
        let v = explore(RefineModel::publish_before_verify(2), BUDGET);
        match v {
            Verdict::Violation { message, .. } => {
                assert!(
                    message.contains("before it was verified"),
                    "unexpected message {message}"
                );
            }
            other => panic!("expected Violation, got {other}"),
        }
    }

    #[test]
    fn even_one_executor_can_catch_the_unverified_publish() {
        let v = explore(RefineModel::publish_before_verify(1), BUDGET);
        assert!(matches!(v, Verdict::Violation { .. }), "got {v}");
    }

    #[test]
    fn consistent_lock_order_passes() {
        let v = explore(TwoLockModel::consistent_order(), BUDGET);
        assert!(v.passed(), "got {v}");
    }

    #[test]
    fn opposite_lock_order_deadlocks() {
        let v = explore(TwoLockModel::opposite_order(), BUDGET);
        assert!(matches!(v, Verdict::Deadlock { .. }), "got {v}");
    }
}
