//! Adversarial tests for the dependency-order prover and bit-for-bit
//! equivalence of the parallel triangular solves against the sequential
//! references.
//!
//! The prover tests hand [`check_solve_schedule`] deliberately broken
//! schedules — permuted levels, rows promoted a level early, duplicate
//! and missing rows, broken worker cuts, missing diagonals, and
//! out-of-bounds columns — and require the exact typed rejection. The
//! fuzz tests sweep worker counts {1, 2, 4, 7} and every granularity
//! corner against `sptrsv_seq`/`symgs_seq`, comparing `to_bits`.

use spmv_autotune::prelude::*;
use spmv_autotune::solve::SolveStep;
use spmv_sparse::solve::{level_sets, sptrsv_seq, symgs_seq, SolveDirection};
use spmv_sparse::{gen, CsrMatrix, SolveBuildError};

/// Deterministic lower-triangular matrix with a dominant diagonal,
/// derived from a random sparse pattern.
fn tril(m: usize, max_nnz: usize, seed: u64) -> CsrMatrix<f64> {
    let a = gen::random_uniform::<f64>(m, m, 1, max_nnz, seed);
    let mut b = gen::RowsBuilder::<f64>::new(m);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..m {
        cols.clear();
        vals.clear();
        let (rc, rv) = a.row(i);
        let mut dom = 1.0;
        for (&c, &v) in rc.iter().zip(rv) {
            if (c as usize) < i {
                cols.push(c);
                vals.push(v);
                dom += v.abs();
            }
        }
        cols.push(i as u32);
        vals.push(dom);
        b.push_row_sorted(&cols, &vals);
    }
    b.finish()
}

/// The honest level-set schedule, every level parallel, cuts from the
/// same NNZ-balanced splitter the planner uses.
fn honest_schedule(a: &CsrMatrix<f64>, workers: usize) -> Vec<SolveStep> {
    level_sets(a, SolveDirection::Forward)
        .unwrap()
        .into_iter()
        .map(|rows| {
            let cuts = spmv_autotune::kernels::cpu::rows_nnz_cuts(a, &rows, workers);
            SolveStep::Parallel { rows, cuts }
        })
        .collect()
}

fn even_cuts(len: usize, workers: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = (0..=workers).map(|r| r * len / workers).collect();
    cuts[workers] = len;
    cuts
}

#[test]
fn honest_level_sets_are_certified() {
    let a = tril(300, 8, 11);
    check_solve_schedule(&a, SolveDirection::Forward, &honest_schedule(&a, 4), 4).unwrap();
}

#[test]
fn prover_certifies_every_suite_matrix_level_set() {
    // The acceptance bar: the level sets of every (lower-triangularised)
    // suite matrix pass the prover, at several worker counts.
    for sm in spmv_sparse::suite::suite() {
        let full = sm.generate();
        let m = full.n_rows();
        let mut b = gen::RowsBuilder::<f64>::new(m);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..m {
            cols.clear();
            vals.clear();
            let (rc, rv) = full.row(i);
            let mut dom = 1.0f64;
            for (&c, &v) in rc.iter().zip(rv) {
                if (c as usize) < i {
                    cols.push(c);
                    vals.push(v as f64);
                    dom += (v as f64).abs();
                }
            }
            cols.push(i as u32);
            vals.push(dom);
            b.push_row_sorted(&cols, &vals);
        }
        let a = b.finish();
        for workers in [1usize, 4] {
            let plan = SolvePlan::build_with(
                &a,
                SolveDirection::Forward,
                SolveConfig {
                    workers,
                    min_parallel_rows: 0,
                },
            )
            .unwrap();
            plan.verify(&a)
                .unwrap_or_else(|e| panic!("{}: workers={workers}: {e}", sm.name));
        }
    }
}

#[test]
fn reversed_schedule_is_rejected() {
    let a = tril(200, 6, 3);
    let mut steps = honest_schedule(&a, 2);
    assert!(steps.len() >= 2, "need a real dependency chain");
    steps.reverse();
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 2) {
        Err(VerifyError::SolveDependencyViolated { .. }) => {}
        other => panic!("expected SolveDependencyViolated, got {other:?}"),
    }
}

#[test]
fn row_promoted_one_level_early_is_rejected() {
    let a = tril(200, 6, 5);
    let mut steps = honest_schedule(&a, 2);
    assert!(steps.len() >= 2);
    // Move the first row of level 1 into level 0: it now runs in the
    // same parallel step as a row it reads.
    let victim = match &mut steps[1] {
        SolveStep::Parallel { rows, cuts } => {
            let v = rows.remove(0);
            *cuts = even_cuts(rows.len(), 2);
            v
        }
        _ => unreachable!(),
    };
    match &mut steps[0] {
        SolveStep::Parallel { rows, cuts } => {
            rows.push(victim);
            *cuts = even_cuts(rows.len(), 2);
        }
        _ => unreachable!(),
    }
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 2) {
        Err(VerifyError::SolveDependencyViolated { row, .. }) => {
            assert_eq!(row, victim as usize);
        }
        other => panic!("expected SolveDependencyViolated, got {other:?}"),
    }
}

#[test]
fn mutually_dependent_rows_in_one_step_are_rejected() {
    // The "cyclic" case: collapse the whole schedule into one parallel
    // step — every cross-level dependency becomes a same-step race.
    let a = tril(100, 5, 7);
    let rows: Vec<u32> = (0..100).collect();
    let cuts = even_cuts(rows.len(), 4);
    let steps = vec![SolveStep::Parallel { rows, cuts }];
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 4) {
        Err(VerifyError::SolveDependencyViolated {
            row_step, col_step, ..
        }) => {
            assert_eq!(row_step, col_step, "violation must be the same-step race");
        }
        other => panic!("expected SolveDependencyViolated, got {other:?}"),
    }
}

#[test]
fn serial_chunk_in_wrong_order_is_rejected() {
    // A serial chunk may carry internal dependencies — but only
    // earlier-position-reads-later is legal. Reversing the chunk breaks
    // program order.
    let a = tril(100, 5, 13);
    let mut rows: Vec<u32> = level_sets(&a, SolveDirection::Forward)
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    let steps_ok = vec![SolveStep::Serial { rows: rows.clone() }];
    check_solve_schedule(&a, SolveDirection::Forward, &steps_ok, 1).unwrap();
    rows.reverse();
    let steps = vec![SolveStep::Serial { rows }];
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 1) {
        Err(VerifyError::SolveDependencyViolated { .. }) => {}
        other => panic!("expected SolveDependencyViolated, got {other:?}"),
    }
}

#[test]
fn duplicate_and_missing_rows_are_rejected() {
    let a = tril(80, 4, 17);
    let mut steps = honest_schedule(&a, 2);
    // Duplicate: schedule row 0 again at the end.
    let rows = vec![0u32];
    let cuts = even_cuts(1, 2);
    steps.push(SolveStep::Parallel { rows, cuts });
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 2) {
        Err(VerifyError::SolveRowRepeated { row: 0, .. }) => {}
        other => panic!("expected SolveRowRepeated, got {other:?}"),
    }
    // Missing: drop a row entirely.
    let mut steps = honest_schedule(&a, 2);
    let dropped = match &mut steps[0] {
        SolveStep::Parallel { rows, cuts } => {
            let v = rows.pop().unwrap();
            *cuts = even_cuts(rows.len(), 2);
            v
        }
        _ => unreachable!(),
    };
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 2) {
        Err(VerifyError::SolveRowUnscheduled { row }) => assert_eq!(row, dropped as usize),
        other => panic!("expected SolveRowUnscheduled, got {other:?}"),
    }
    // Out of range: a row id >= m.
    let mut steps = honest_schedule(&a, 2);
    if let SolveStep::Parallel { rows, cuts } = &mut steps[0] {
        rows.push(80);
        *cuts = even_cuts(rows.len(), 2);
    }
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 2) {
        Err(VerifyError::SolveRowOutOfBounds { row: 80, m: 80 }) => {}
        other => panic!("expected SolveRowOutOfBounds, got {other:?}"),
    }
}

#[test]
fn broken_cuts_are_rejected() {
    let a = tril(120, 5, 19);
    let make = |mangle: fn(&mut Vec<usize>)| {
        let mut steps = honest_schedule(&a, 4);
        let target = steps
            .iter_mut()
            .find(|s| s.rows().len() >= 4)
            .expect("a wide level");
        if let SolveStep::Parallel { cuts, .. } = target {
            mangle(cuts);
        }
        steps
    };
    // Wrong length (workers + 2 entries).
    let steps = make(|cuts| cuts.push(*cuts.last().unwrap()));
    assert!(matches!(
        check_solve_schedule(&a, SolveDirection::Forward, &steps, 4),
        Err(VerifyError::SolveCutsInvalid { .. })
    ));
    // Last cut short: the tail rows would be skipped.
    let steps = make(|cuts| {
        let n = cuts.len();
        cuts[n - 1] -= 1;
    });
    assert!(matches!(
        check_solve_schedule(&a, SolveDirection::Forward, &steps, 4),
        Err(VerifyError::SolveCutsInvalid { .. })
    ));
    // Non-monotone: two workers would overlap.
    let steps = make(|cuts| {
        let n = cuts.len();
        cuts.swap(1, n - 2);
    });
    assert!(matches!(
        check_solve_schedule(&a, SolveDirection::Forward, &steps, 4),
        Err(VerifyError::SolveCutsInvalid { .. })
    ));
}

#[test]
fn missing_diagonal_is_rejected_by_prover_and_builder() {
    // Row 1 lacks a diagonal entry.
    let a = CsrMatrix::<f64>::from_parts(
        3,
        3,
        vec![0, 1, 2, 4],
        vec![0, 0, 0, 2],
        vec![2.0, 1.0, 1.0, 2.0],
    )
    .unwrap();
    assert!(matches!(
        SolvePlan::build(&a, SolveDirection::Forward),
        Err(SolveBuildError::MissingDiagonal { row: 1 })
    ));
    let rows: Vec<u32> = vec![0, 1, 2];
    let steps = vec![SolveStep::Serial { rows }];
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 1) {
        Err(VerifyError::SolveMissingDiagonal { row: 1 }) => {}
        other => panic!("expected SolveMissingDiagonal, got {other:?}"),
    }
}

#[test]
fn out_of_bounds_column_is_rejected() {
    // from_parts_unchecked lets a hostile structure claim a column
    // beyond the system; the prover must catch the would-be OOB gather.
    let a = CsrMatrix::<f64>::from_parts_unchecked(
        3,
        3,
        vec![0, 1, 2, 4],
        vec![0, 1, 5, 2],
        vec![2.0, 2.0, 1.0, 2.0],
    );
    let steps = vec![SolveStep::Serial {
        rows: vec![0, 1, 2],
    }];
    match check_solve_schedule(&a, SolveDirection::Forward, &steps, 1) {
        Err(VerifyError::SolveColOutOfBounds { row: 2, col: 5, .. }) => {}
        other => panic!("expected SolveColOutOfBounds, got {other:?}"),
    }
}

#[test]
fn off_triangle_and_non_square_are_rejected() {
    let full = gen::banded::<f64>(20, 1, 3);
    let steps = vec![SolveStep::Serial {
        rows: (0..20).collect(),
    }];
    assert!(matches!(
        check_solve_schedule(&full, SolveDirection::Forward, &steps, 1),
        Err(VerifyError::SolveOffTriangle { .. })
    ));
    let rect = gen::random_uniform::<f64>(10, 20, 1, 3, 23);
    assert!(matches!(
        check_solve_schedule(&rect, SolveDirection::Forward, &[], 1),
        Err(VerifyError::SolveNotSquare { .. })
    ));
}

#[test]
fn sptrsv_fuzz_is_bitwise_identical_across_threads_and_granularities() {
    for (m, max_nnz, seed) in [(150usize, 5usize, 31u64), (400, 9, 37), (700, 12, 41)] {
        let lower = tril(m, max_nnz, seed);
        let upper = lower.transpose();
        let b: Vec<f64> = (0..m).map(|i| ((i * 37 % 23) as f64) - 11.0).collect();
        for (a, dir) in [
            (&lower, SolveDirection::Forward),
            (&upper, SolveDirection::Backward),
        ] {
            let mut x_ref = vec![0.0; m];
            sptrsv_seq(a, dir, &b, &mut x_ref).unwrap();
            for workers in [1usize, 2, 4, 7] {
                for min_parallel in [1usize, 0, 64, usize::MAX] {
                    let plan = SolvePlan::build_with(
                        a,
                        dir,
                        SolveConfig {
                            workers,
                            min_parallel_rows: min_parallel,
                        },
                    )
                    .unwrap()
                    .verify(a)
                    .unwrap();
                    let mut x = vec![0.0; m];
                    plan.solve_unchecked(a, &b, &mut x).unwrap();
                    for (i, (got, want)) in x.iter().zip(&x_ref).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "m={m} seed={seed} {dir} workers={workers} \
                             min_parallel={min_parallel} row {i}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn symgs_fuzz_is_bitwise_identical_across_threads() {
    for (m, seed) in [(120usize, 43u64), (350, 47)] {
        // Symmetrise a lower-triangular pattern so the system has both
        // strict halves populated, diagonal included.
        let l = tril(m, 6, seed);
        let a = {
            let mut coo = spmv_sparse::CooMatrix::<f64>::new(m, m);
            for i in 0..m {
                let (rc, rv) = l.row(i);
                for (&c, &v) in rc.iter().zip(rv) {
                    coo.push(i, c as usize, v);
                    if (c as usize) != i {
                        coo.push(c as usize, i, v);
                    }
                }
            }
            coo.to_csr()
        };
        let b: Vec<f64> = (0..m).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let mut x_ref = vec![0.0; m];
        for _ in 0..2 {
            symgs_seq(&a, &b, &mut x_ref).unwrap();
        }
        for workers in [1usize, 2, 4, 7] {
            let mut plan = SymgsPlan::build_with(
                &a,
                SolveConfig {
                    workers,
                    min_parallel_rows: 0,
                },
            )
            .unwrap();
            let mut x = vec![0.0; m];
            for _ in 0..2 {
                plan.apply(&a, &b, &mut x).unwrap();
            }
            for (i, (got, want)) in x.iter().zip(&x_ref).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "m={m} seed={seed} workers={workers} row {i}"
                );
            }
        }
    }
}
