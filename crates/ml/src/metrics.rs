//! Evaluation metrics: confusion matrices, error rates, per-class
//! precision/recall — the numbers the paper quotes for its two training
//! stages (≈5% and ≈15% test error).

/// A square confusion matrix; `counts[actual][predicted]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix over `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        Self {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Record one `(actual, predicted)` pair.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n_classes && predicted < self.n_classes);
        self.counts[actual * self.n_classes + predicted] += 1;
    }

    /// Count at `(actual, predicted)`.
    pub fn get(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.n_classes + predicted]
    }

    /// Total recorded pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Correct predictions (trace).
    pub fn correct(&self) -> u64 {
        (0..self.n_classes).map(|c| self.get(c, c)).sum()
    }

    /// Fraction correct in `[0, 1]`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.correct() as f64 / t as f64
        }
    }

    /// `1 - accuracy` — the figure the paper reports per training stage.
    pub fn error_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            1.0 - self.accuracy()
        }
    }

    /// Precision of one class (correct positives / predicted positives);
    /// 1.0 when the class is never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: u64 = (0..self.n_classes).map(|a| self.get(a, class)).sum();
        if predicted == 0 {
            1.0
        } else {
            self.get(class, class) as f64 / predicted as f64
        }
    }

    /// Recall of one class (correct positives / actual positives); 1.0
    /// when the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let actual: u64 = (0..self.n_classes).map(|p| self.get(class, p)).sum();
        if actual == 0 {
            1.0
        } else {
            self.get(class, class) as f64 / actual as f64
        }
    }

    /// Unweighted mean of per-class F1 scores.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        for c in 0..self.n_classes {
            let p = self.precision(c);
            let r = self.recall(c);
            sum += if p + r == 0.0 {
                0.0
            } else {
                2.0 * p * r / (p + r)
            };
        }
        sum / self.n_classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(2);
        // actual 0: 8 right, 2 wrong; actual 1: 7 right, 3 wrong.
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..7 {
            m.record(1, 1);
        }
        for _ in 0..3 {
            m.record(1, 0);
        }
        m
    }

    #[test]
    fn accuracy_and_error_rate() {
        let m = sample();
        assert_eq!(m.total(), 20);
        assert_eq!(m.correct(), 15);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.error_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn precision_recall() {
        let m = sample();
        // class 0: predicted 11 times, 8 correct; actual 10 times.
        assert!((m.precision(0) - 8.0 / 11.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.8).abs() < 1e-12);
        assert!((m.precision(1) - 7.0 / 9.0).abs() < 1e-12);
        assert!((m.recall(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_defaults() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.error_rate(), 0.0);
        assert_eq!(m.precision(0), 1.0);
        assert_eq!(m.recall(2), 1.0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0);
        m.record(1, 1);
        assert!((m.macro_f1() - 1.0).abs() < 1e-12);
    }
}
