//! Criterion microbench: the native CPU SpMV backends (real wall time,
//! not simulation) — row-parallel vs NNZ-balanced scheduling on an
//! imbalanced matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use spmv_autotune::kernels::cpu::{spmv_nnz_balanced, spmv_row_parallel};
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;

fn bench_cpu(c: &mut Criterion) {
    let a = gen::mixture::<f64>(
        50_000,
        50_000,
        &[RowRegime::new(1, 4, 0.9), RowRegime::new(500, 1500, 0.1)],
        true,
        6,
    );
    let v: Vec<f64> = (0..a.n_cols()).map(|i| (i % 13) as f64).collect();
    let mut group = c.benchmark_group("cpu_spmv");
    group.sample_size(20);
    group.bench_function("row_parallel", |b| {
        let mut u = vec![0.0; a.n_rows()];
        b.iter(|| spmv_row_parallel(&a, &v, &mut u).unwrap())
    });
    group.bench_function("nnz_balanced", |b| {
        let mut u = vec![0.0; a.n_rows()];
        b.iter(|| spmv_nnz_balanced(&a, &v, &mut u).unwrap())
    });
    group.bench_function("sequential_reference", |b| {
        let mut u = vec![0.0; a.n_rows()];
        b.iter(|| a.spmv_seq(&v, &mut u).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);
