//! Figure 2 — the motivation: (a) different inputs prefer different
//! kernels even with a single bin; (b) within one input, different *bins*
//! prefer different kernels.
//!
//! Regenerate with `cargo run --release -p spmv-bench --bin fig2`.

use spmv_autotune::binning::{bin_matrix, BinningScheme};
use spmv_autotune::kernels::{run_kernel, KernelId};
use spmv_autotune::prelude::*;
use spmv_bench::table::{f3, Table};
use spmv_sparse::gen;
use spmv_sparse::gen::mixture::RowRegime;
use spmv_sparse::CsrMatrix;

const FIVE: [KernelId; 5] = [
    KernelId::Serial,
    KernelId::Subvector(4),
    KernelId::Subvector(32),
    KernelId::Subvector(128),
    KernelId::Vector,
];

fn single_bin_cycles(device: &GpuDevice, a: &CsrMatrix<f32>, k: KernelId) -> f64 {
    let v = vec![1.0f32; a.n_cols()];
    let mut u = vec![0.0f32; a.n_rows()];
    run_single_kernel(device, a, k, &v, &mut u).cycles
}

fn main() {
    let device = GpuDevice::kaveri();
    println!("== Figure 2a: five kernels, two inputs, single bin ==");
    println!("(execution time normalised to the best kernel per input)\n");

    // Input 1: a short-row materials-style matrix; input 2: a long-row
    // FEM-style matrix.
    let short = gen::banded::<f32>(60_000, 2, 1);
    let long = gen::block_structured::<f32>(1_200, 6, 30, 2);

    let mut t = Table::new(vec!["kernel", "short-row input", "long-row input"]);
    let base_s = FIVE
        .iter()
        .map(|&k| single_bin_cycles(&device, &short, k))
        .fold(f64::INFINITY, f64::min);
    let base_l = FIVE
        .iter()
        .map(|&k| single_bin_cycles(&device, &long, k))
        .fold(f64::INFINITY, f64::min);
    for k in FIVE {
        let cs = single_bin_cycles(&device, &short, k) / base_s;
        let cl = single_bin_cycles(&device, &long, k) / base_l;
        t.row(vec![k.label(), f3(cs), f3(cl)]);
    }
    t.print();
    println!("\npaper shape: the best kernel differs per input — the thin kernels win on");
    println!("the short-row input, the wide ones on the long-row input.\n");

    println!("== Figure 2b: five kernels per bin of one irregular input (U = 100) ==");
    let a = gen::mixture::<f32>(
        40_000,
        40_000,
        &[
            RowRegime::new(1, 3, 0.55),
            RowRegime::new(10, 40, 0.30),
            RowRegime::new(80, 160, 0.10),
            RowRegime::new(400, 900, 0.05),
        ],
        true,
        3,
    );
    let bins = bin_matrix(&a, BinningScheme::Coarse { u: 100 });
    let populated: Vec<usize> = (0..bins.bins.len())
        .filter(|&b| !bins.bins[b].is_empty())
        .take(4)
        .collect();
    let v = vec![1.0f32; a.n_cols()];
    let mut headers = vec!["kernel".to_string()];
    headers.extend(populated.iter().map(|b| format!("bin {b}")));
    let mut t = Table::new(headers);
    let mut best_per_bin = vec![(f64::INFINITY, KernelId::Serial); populated.len()];
    let mut cycles = vec![vec![0.0f64; populated.len()]; FIVE.len()];
    for (ki, &k) in FIVE.iter().enumerate() {
        for (bi, &b) in populated.iter().enumerate() {
            let rows = bins.expand(b);
            let mut u = vec![0.0f32; a.n_rows()];
            let c = run_kernel(&device, &a, &rows, k, &v, &mut u).cycles;
            cycles[ki][bi] = c;
            if c < best_per_bin[bi].0 {
                best_per_bin[bi] = (c, k);
            }
        }
    }
    for (ki, &k) in FIVE.iter().enumerate() {
        let mut row = vec![k.label()];
        for (bi, _) in populated.iter().enumerate() {
            row.push(f3(cycles[ki][bi] / best_per_bin[bi].0));
        }
        t.row(row);
    }
    t.print();
    println!();
    for (bi, &b) in populated.iter().enumerate() {
        println!("bin {b}: best kernel = {}", best_per_bin[bi].1);
    }
    let distinct: std::collections::HashSet<_> = best_per_bin.iter().map(|&(_, k)| k).collect();
    println!(
        "\npaper shape: different bins of the SAME input pick different kernels \
         ({} distinct winners across {} bins).",
        distinct.len(),
        populated.len()
    );
}
