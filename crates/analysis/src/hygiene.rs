//! Source-level unsafe-hygiene check: every `unsafe` occurrence in the
//! workspace's own crates must be justified by a nearby `// SAFETY:`
//! comment (or a `# Safety` doc section for `unsafe fn` declarations).
//!
//! This is a lint over text, not an AST pass — deliberately simple and
//! dependency-free. It scans `crates/*/src` and the workspace `src/`,
//! skipping `vendor/` (third-party stand-ins) and `target/`. A finding
//! names the file and line so CI output is directly actionable.

use std::path::{Path, PathBuf};

/// One uncommented `unsafe` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HygieneFinding {
    /// File containing the naked `unsafe`.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for HygieneFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: `{}` without a SAFETY comment",
            self.file.display(),
            self.line,
            self.snippet
        )
    }
}

/// How many lines above an `unsafe` site a justifying comment may sit.
/// Generous enough for a multi-line SAFETY paragraph, small enough that
/// a comment cannot accidentally cover an unrelated block.
const LOOKBACK: usize = 12;

/// Scan one file's source text. Returns a finding for every line using
/// the `unsafe` keyword with no `SAFETY`/`# Safety` comment within
/// [`LOOKBACK`] preceding lines (or on the line itself).
pub fn scan_source(file: &Path, text: &str) -> Vec<HygieneFinding> {
    // Built by concatenation so this file does not flag itself.
    let needle: String = ["un", "safe"].concat();
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Comments, doc comments and attributes (e.g. the
        // `deny(..._op_in_..._fn)` lint gate) never *use* the keyword.
        if trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            continue;
        }
        if !uses_keyword(trimmed, &needle) {
            continue;
        }
        let justified = (i.saturating_sub(LOOKBACK)..=i).any(|j| {
            let l = lines[j];
            l.contains("SAFETY") || l.contains("# Safety")
        });
        if !justified {
            out.push(HygieneFinding {
                file: file.to_path_buf(),
                line: i + 1,
                snippet: trimmed.trim_end().to_string(),
            });
        }
    }
    out
}

/// Does `line` use `needle` as a standalone keyword (not as part of a
/// longer identifier like a lint name)?
fn uses_keyword(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Recursively scan every `.rs` file under `root`, skipping `vendor`,
/// `target`, and hidden directories.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<HygieneFinding>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path)?;
                out.extend(scan_source(&path, &text));
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(suffix: &str) -> String {
        [["un", "safe"].concat().as_str(), suffix].concat()
    }

    #[test]
    fn commented_block_passes() {
        let src = format!(
            "fn f() {{\n    // SAFETY: justified here.\n    {} {{ }}\n}}\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn naked_block_is_flagged() {
        let src = format!("fn f() {{\n    {} {{ }}\n}}\n", kw(""));
        let f = scan_source(Path::new("x.rs"), &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn doc_safety_section_covers_decl() {
        let src = format!(
            "/// # Safety\n///\n/// Caller checks i.\n{} fn g(i: usize) {{}}\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn lint_attribute_is_not_a_use() {
        let src = format!("#![deny({})]\n", kw("_op_in_") + &kw("_fn"));
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn identifier_containing_keyword_is_not_a_use() {
        let src = format!("let {}_count = 3;\n", kw(""));
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn lookback_window_is_bounded() {
        let mut src = String::from("// SAFETY: far away.\n");
        for _ in 0..LOOKBACK + 2 {
            src.push_str("let x = 1;\n");
        }
        src.push_str(&format!("{} {{ }}\n", kw("")));
        assert_eq!(scan_source(Path::new("x.rs"), &src).len(), 1);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // crates/analysis/src/hygiene.rs -> repo root is three levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let findings = scan_tree(root).unwrap();
        assert!(
            findings.is_empty(),
            "uncommented {} sites:\n{}",
            ["un", "safe"].concat(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
