//! Source-level unsafe-hygiene check: every `unsafe` occurrence in the
//! workspace's own crates must be justified by a nearby `// SAFETY:`
//! comment — and `unsafe fn` *declarations* specifically by a
//! `# Safety` doc section, the caller-facing half of the contract: a
//! `// SAFETY:` comment explains why this site is sound, but a
//! declaration's obligation falls on every caller, so it must live in
//! the rendered docs.
//!
//! This is a lint over text, not an AST pass — deliberately simple and
//! dependency-free. It scans `crates/*/src` and the workspace `src/`,
//! skipping `vendor/` (third-party stand-ins) and `target/`. A finding
//! names the file and line so CI output is directly actionable.

use std::path::{Path, PathBuf};

/// One uncommented `unsafe` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HygieneFinding {
    /// File containing the naked `unsafe`.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// The site is a fn *declaration*, which needs a `# Safety` doc
    /// section (a `// SAFETY:` comment is not caller-facing).
    pub needs_doc: bool,
}

impl std::fmt::Display for HygieneFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.needs_doc {
            write!(
                f,
                "{}:{}: `{}` — {} fn declaration without a `# Safety` doc section",
                self.file.display(),
                self.line,
                self.snippet,
                ["un", "safe"].concat()
            )
        } else {
            write!(
                f,
                "{}:{}: `{}` without a SAFETY comment",
                self.file.display(),
                self.line,
                self.snippet
            )
        }
    }
}

/// How many lines above an `unsafe` site a justifying comment may sit.
/// Generous enough for a multi-line SAFETY paragraph, small enough that
/// a comment cannot accidentally cover an unrelated block.
const LOOKBACK: usize = 12;

/// Scan one file's source text. Returns a finding for every line using
/// the `unsafe` keyword with no `SAFETY`/`# Safety` comment within
/// [`LOOKBACK`] preceding lines (or on the line itself) — and, for
/// `unsafe fn` declarations, a finding whenever the lookback window has
/// no `# Safety` doc section, even if a `// SAFETY:` comment is present
/// (the contract must be caller-visible in the docs).
pub fn scan_source(file: &Path, text: &str) -> Vec<HygieneFinding> {
    // Built by concatenation so this file does not flag itself.
    let needle: String = ["un", "safe"].concat();
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Comments, doc comments and attributes (e.g. the
        // `deny(..._op_in_..._fn)` lint gate) never *use* the keyword.
        if trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            continue;
        }
        if !uses_keyword(trimmed, &needle) {
            continue;
        }
        let is_fn_decl = declares_unsafe_fn(trimmed, &needle);
        let lookback = i.saturating_sub(LOOKBACK)..=i;
        let justified = if is_fn_decl {
            lookback.clone().any(|j| lines[j].contains("# Safety"))
        } else {
            lookback
                .clone()
                .any(|j| lines[j].contains("SAFETY") || lines[j].contains("# Safety"))
        };
        if !justified {
            out.push(HygieneFinding {
                file: file.to_path_buf(),
                line: i + 1,
                snippet: trimmed.trim_end().to_string(),
                needs_doc: is_fn_decl,
            });
        }
    }
    out
}

/// Does `line` declare an `unsafe fn` (the keyword followed by the `fn`
/// token and a function *name*)? Matches declarations like
/// `pub(crate) unsafe fn f(...)`; does not match blocks, trait impls,
/// fn-pointer *types* (`fn(` with no name), or identifiers merely
/// containing the keyword.
fn declares_unsafe_fn(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            let rest = line[end..].trim_start();
            if rest.strip_prefix("fn").is_some_and(|r| {
                r.starts_with(char::is_whitespace)
                    && r.trim_start()
                        .starts_with(|c: char| c.is_alphabetic() || c == '_')
            }) {
                return true;
            }
        }
        from = end;
    }
    false
}

/// Does `line` use `needle` as a standalone keyword (not as part of a
/// longer identifier like a lint name)?
fn uses_keyword(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Recursively scan every `.rs` file under `root`, skipping `vendor`,
/// `target`, and hidden directories.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<HygieneFinding>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path)?;
                out.extend(scan_source(&path, &text));
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(suffix: &str) -> String {
        [["un", "safe"].concat().as_str(), suffix].concat()
    }

    #[test]
    fn commented_block_passes() {
        let src = format!(
            "fn f() {{\n    // SAFETY: justified here.\n    {} {{ }}\n}}\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn naked_block_is_flagged() {
        let src = format!("fn f() {{\n    {} {{ }}\n}}\n", kw(""));
        let f = scan_source(Path::new("x.rs"), &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn doc_safety_section_covers_decl() {
        let src = format!(
            "/// # Safety\n///\n/// Caller checks i.\n{} fn g(i: usize) {{}}\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn fn_decl_with_only_a_safety_comment_is_flagged() {
        // A `// SAFETY:` comment justifies a *site*; a declaration's
        // contract must be a caller-visible `# Safety` doc section.
        let src = format!(
            "// SAFETY: this is not caller-facing.\n{} fn g(i: usize) {{}}\n",
            kw("")
        );
        let f = scan_source(Path::new("x.rs"), &src);
        assert_eq!(f.len(), 1);
        assert!(f[0].needs_doc);
        assert!(f[0].to_string().contains("# Safety"));
    }

    #[test]
    fn fn_decl_with_doc_section_and_visibility_is_clean() {
        let src = format!(
            "/// # Safety\n///\n/// Caller checks i.\npub(crate) {} fn g(i: usize) {{}}\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_a_declaration() {
        // A field of fn-pointer type has no caller-facing doc surface;
        // the ordinary SAFETY-comment rule applies instead.
        let src = format!(
            "// SAFETY: callee contract forwarded by call().\ncall_one: {} fn(*const u8, usize),\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn impl_and_block_sites_still_accept_safety_comments() {
        let src = format!(
            "// SAFETY: disjoint writes.\n{} impl Send for W {{}}\n",
            kw("")
        );
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
        let src = format!("// SAFETY: in bounds.\nlet v = {} {{ *p }};\n", kw(""));
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn lint_attribute_is_not_a_use() {
        let src = format!("#![deny({})]\n", kw("_op_in_") + &kw("_fn"));
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn identifier_containing_keyword_is_not_a_use() {
        let src = format!("let {}_count = 3;\n", kw(""));
        assert!(scan_source(Path::new("x.rs"), &src).is_empty());
    }

    #[test]
    fn lookback_window_is_bounded() {
        let mut src = String::from("// SAFETY: far away.\n");
        for _ in 0..LOOKBACK + 2 {
            src.push_str("let x = 1;\n");
        }
        src.push_str(&format!("{} {{ }}\n", kw("")));
        assert_eq!(scan_source(Path::new("x.rs"), &src).len(), 1);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // crates/analysis/src/hygiene.rs -> repo root is three levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let findings = scan_tree(root).unwrap();
        assert!(
            findings.is_empty(),
            "uncommented {} sites:\n{}",
            ["un", "safe"].concat(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
