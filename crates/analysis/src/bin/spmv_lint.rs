//! `spmv-lint`: run every static analyzer over the repository and exit
//! non-zero on any violation. The CI job runs this binary.
//!
//! Checks, in order:
//!
//! 1. **Unsafe hygiene** — every `unsafe` site in the workspace's own
//!    crates carries a `// SAFETY:` (or `# Safety`) justification.
//! 2. **Model soundness** — every checked-in model under `models/`
//!    loads (which runs the fatal-severity rule-set lint) and its
//!    warnings are printed.
//! 3. **Write-set disjointness** — every (binning strategy × kernel map
//!    × backend) plan over the driver's matrix suite proves coverage,
//!    disjointness, and in-bounds writes.
//! 4. **Batched dispatch** — every verified plan's `execute_batch` is
//!    bit-for-bit identical, per output column, to single-vector
//!    executes at RHS widths covering lone-column, remainder, and full
//!    register-block decompositions.
//! 5. **Concurrency protocols** — the scope/pool/level-barrier,
//!    serving admission-queue, and refinement publish state machines
//!    pass exhaustive interleaving (the admission model proves the
//!    coalescing-window protocol loses no request; the refine model
//!    proves a candidate plan is always verified before it is published
//!    over a serving incumbent); the deliberately buggy variants are
//!    *detected* (a checker that flags nothing proves nothing).
//! 6. **Bandwidth tiers** — every (strategy × backend × index/blocking
//!    tier) plan verifies and executes bit-for-bit against the
//!    sequential CSR reference, the sweep demonstrably reaches sub-u32
//!    lanes and cache-blocked bins, and the `n_cols`-shrink guard
//!    rejects a compressed plan whose delta proof a column-shrunk
//!    matrix would invalidate.
//! 7. **Kernel table** — every reachable `KernelKey` (each format's
//!    kernel family × every register-block width) resolves to a
//!    registered micro-kernel and every registered entry is reachable
//!    (no dead table rows), and the specialized sweep proves every
//!    structure fast path — banded, dense-run, row-run — verifies and
//!    executes bit-for-bit over the strategy grid, with coverage flags
//!    guaranteeing each path (and the `specialize` kill switch) actually
//!    fired.
//! 8. **Solve schedules** — every (matrix × direction × worker count ×
//!    level granularity) triangular-solve and SymGS plan passes the
//!    dependency-order prover and executes bit-for-bit against the
//!    sequential references, and the sweep demonstrably reaches both
//!    parallel steps and merged levels.
//! 9. **Online retrain gate** — an `IncrementalLearner` fed measured
//!    (features, winner) pairs over the serving layer's Table I schema
//!    produces, via `retrain_incremental`, a rule-set the rule linter
//!    accepts with zero `Error` findings — and the gate demonstrably
//!    *rejects* a refit lint would refuse, keeping the previous model.
//!
//! `spmv-lint --gen-model <path>` instead trains a small deterministic
//! model and writes it to `<path>` (used to produce `models/tiny.txt`).

use spmv_autotune::model_io::{lint_model_rulesets, load_model_file, save_model_file};
use spmv_autotune::training::{Trainer, TrainerConfig};
use spmv_autotune::tuner::TunerConfig;
use spmv_gpusim::GpuDevice;
use spmv_ml::lint::Severity;
use spmv_sparse::corpus::CorpusConfig;
use spmv_verify::interleave::{explore, Verdict};
use spmv_verify::models::{
    AdmissionModel, BatchModel, CursorModel, LevelModel, RefineModel, ShardModel, TwoLockModel,
};
use spmv_verify::{driver, hygiene};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--gen-model") {
        let path = args.get(1).map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("usage: spmv-lint --gen-model <path>");
            std::process::exit(2);
        });
        gen_model(&path);
        return;
    }
    if !args.is_empty() {
        eprintln!("usage: spmv-lint [--gen-model <path>]");
        std::process::exit(2);
    }

    let root = repo_root();
    let mut failures = 0usize;
    failures += check_hygiene(&root);
    failures += check_models(&root);
    failures += check_plans();
    failures += check_batched();
    failures += check_concurrency();
    failures += check_bandwidth();
    failures += check_kernel_table();
    failures += check_solve();
    failures += check_online_retrain();

    if failures > 0 {
        eprintln!("\nspmv-lint: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nspmv-lint: all checks passed");
}

/// The workspace root: three levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis has a workspace root two levels up")
        .to_path_buf()
}

fn check_hygiene(root: &Path) -> usize {
    println!("== SAFETY-comment hygiene ==");
    match hygiene::scan_tree(root) {
        Ok(findings) if findings.is_empty() => {
            println!("ok: every raw-pointer site carries a SAFETY comment");
            0
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("FAIL: {f}");
            }
            1
        }
        Err(e) => {
            eprintln!("FAIL: source scan errored: {e}");
            1
        }
    }
}

fn check_models(root: &Path) -> usize {
    println!("\n== checked-in models ==");
    let dir = root.join("models");
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "txt"))
            .collect(),
        Err(e) => {
            eprintln!("FAIL: cannot read {}: {e}", dir.display());
            return 1;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("FAIL: no models under {}", dir.display());
        return 1;
    }
    let mut bad = 0;
    for p in &paths {
        match load_model_file(p) {
            Ok(model) => {
                // Load already rejected Error-severity findings; surface
                // the tolerated warnings for the record.
                let warnings: Vec<_> =
                    lint_model_rulesets(&model.stage1, &model.stage2, model.u_classes.len())
                        .into_iter()
                        .filter(|f| f.severity() == Severity::Warning)
                        .collect();
                println!(
                    "ok: {} ({} stage-1 + {} stage-2 rules, {} warning(s))",
                    p.file_name().unwrap().to_string_lossy(),
                    model.stage1.rules().len(),
                    model.stage2.rules().len(),
                    warnings.len()
                );
                for w in warnings {
                    println!("    warning: {w}");
                }
            }
            Err(e) => {
                eprintln!("FAIL: {}: {e}", p.display());
                bad += 1;
            }
        }
    }
    usize::from(bad > 0)
}

fn check_plans() -> usize {
    println!("\n== write-set disjointness (strategy x backend sweep) ==");
    let checks = driver::full_sweep();
    let mut bad = 0;
    for c in &checks {
        if let Err(e) = &c.result {
            eprintln!(
                "FAIL: {} on {} over {}: {e}",
                c.strategy, c.backend, c.matrix
            );
            bad += 1;
        }
    }
    if bad == 0 {
        println!(
            "ok: {} plans proven (coverage + disjointness + bounds)",
            checks.len()
        );
        0
    } else {
        1
    }
}

fn check_batched() -> usize {
    println!("\n== batched dispatch (execute_batch vs single-vector) ==");
    let checks = driver::batched_sweep();
    let mut bad = 0;
    for c in &checks {
        if let Err(e) = &c.result {
            eprintln!(
                "FAIL: {} on {} over {} (K = {}): {e}",
                c.strategy, c.backend, c.matrix, c.k
            );
            bad += 1;
        }
    }
    if bad == 0 {
        println!(
            "ok: {} batched plans bit-identical to their single-vector columns",
            checks.len()
        );
        0
    } else {
        1
    }
}

fn check_concurrency() -> usize {
    println!("\n== concurrency protocols (exhaustive interleaving) ==");
    const BUDGET: usize = 500_000;
    let mut bad = 0;

    // The shipped protocols must pass…
    let sound: [(&str, Verdict); 7] = [
        (
            "pool run_batch (3 workers)",
            explore(BatchModel::correct(3), BUDGET),
        ),
        (
            "scope cursor claim (2 threads, 3 items)",
            explore(CursorModel::atomic_claim(2, 3), BUDGET),
        ),
        (
            "consistent lock order",
            explore(TwoLockModel::consistent_order(), BUDGET),
        ),
        (
            "shard home-first claim with ring stealing (2 workers, 3 shards)",
            explore(ShardModel::correct(2, &[2, 0, 1]), BUDGET),
        ),
        (
            "level-barrier stepped solve (3 workers)",
            explore(LevelModel::correct(3), BUDGET),
        ),
        (
            "serving admission queue (3 producers, batches of 2)",
            explore(AdmissionModel::correct(3, 2), BUDGET),
        ),
        (
            "refinement publish protocol (3 executors)",
            explore(RefineModel::correct(3), BUDGET),
        ),
    ];
    for (name, v) in sound {
        if v.passed() {
            println!("ok: {name}: {v}");
        } else {
            eprintln!("FAIL: {name}: {v}");
            bad += 1;
        }
    }

    // …and the injected bugs must be *caught* (checker self-test).
    type Expect = fn(&Verdict) -> bool;
    let buggy: [(&str, Verdict, Expect); 7] = [
        (
            "notify-without-lock is detected as lost wakeup",
            explore(BatchModel::notify_without_lock(2), BUDGET),
            |v| matches!(v, Verdict::Deadlock { .. }),
        ),
        (
            "racy cursor claim is detected as double write",
            explore(CursorModel::racy_claim(2, 2), BUDGET),
            |v| matches!(v, Verdict::Violation { .. }),
        ),
        (
            "opposite lock order is detected as deadlock",
            explore(TwoLockModel::opposite_order(), BUDGET),
            |v| matches!(v, Verdict::Deadlock { .. }),
        ),
        (
            "dropped ring fallback is detected as stranded items",
            explore(ShardModel::no_cross_shard_fallback(2, &[1, 1, 1]), BUDGET),
            |v| matches!(v, Verdict::Violation { .. }),
        ),
        (
            "skipped level barrier is detected as a dependency race",
            explore(LevelModel::skipped_barrier(2), BUDGET),
            |v| matches!(v, Verdict::Violation { .. }),
        ),
        (
            "non-atomic admission wait is detected as a stranded request",
            explore(AdmissionModel::sleep_after_unlock(2, 2), BUDGET),
            |v| matches!(v, Verdict::Deadlock { .. }),
        ),
        (
            "publish-before-verify is detected as an unverified execute",
            explore(RefineModel::publish_before_verify(2), BUDGET),
            |v| matches!(v, Verdict::Violation { .. }),
        ),
    ];
    for (name, v, expected) in buggy {
        if expected(&v) {
            println!("ok: {name} ({v})");
        } else {
            eprintln!("FAIL: {name}: got {v}");
            bad += 1;
        }
    }
    usize::from(bad > 0)
}

fn check_bandwidth() -> usize {
    println!("\n== bandwidth tiers (compressed / cache-blocked plans) ==");
    let checks = driver::bandwidth_sweep();
    let mut bad = 0;
    for c in &checks {
        if let Err(e) = &c.result {
            eprintln!(
                "FAIL: [{}] {} on {} over {}: {e}",
                c.tier, c.strategy, c.backend, c.matrix
            );
            bad += 1;
        }
    }
    if bad == 0 {
        println!(
            "ok: {} tiered plans verified and bit-identical to the CSR reference",
            checks.len()
        );
    }
    match driver::shrink_guard_lint() {
        Ok(()) => println!("ok: n_cols-shrink guard rejects stale delta proofs"),
        Err(e) => {
            eprintln!("FAIL: shrink guard: {e}");
            bad += 1;
        }
    }
    usize::from(bad > 0)
}

fn check_kernel_table() -> usize {
    println!("\n== kernel table (registry coverage + specialized fast paths) ==");
    let mut bad = 0;
    match driver::kernel_table_lint() {
        Ok(()) => println!("ok: every reachable KernelKey registered, every entry reachable"),
        Err(e) => {
            eprintln!("FAIL: kernel table: {e}");
            bad += 1;
        }
    }
    let checks = driver::specialized_sweep();
    let mut sweep_bad = 0;
    for c in &checks {
        if let Err(e) = &c.result {
            eprintln!("FAIL: [{}] {} on {}: {e}", c.tier, c.strategy, c.backend);
            sweep_bad += 1;
        }
    }
    if sweep_bad == 0 {
        println!(
            "ok: {} specialized plans verified and bit-identical to the CSR reference",
            checks.len()
        );
    } else {
        bad += sweep_bad;
    }
    usize::from(bad > 0)
}

fn check_solve() -> usize {
    println!("\n== solve schedules (dependency-order prover sweep) ==");
    let checks = driver::solve_sweep();
    let mut bad = 0;
    for c in &checks {
        if let Err(e) = &c.result {
            eprintln!(
                "FAIL: {} over {} (workers = {}, granularity = {}): {e}",
                c.op, c.matrix, c.workers, c.granularity
            );
            bad += 1;
        }
    }
    if bad == 0 {
        println!(
            "ok: {} solve schedules certified and bit-identical to the sequential references",
            checks.len()
        );
        0
    } else {
        1
    }
}

/// The online-retrain lint gate: the serving layer's incremental
/// learner must only ever install rule-sets the static rule linter
/// accepts. Feed a measured-feedback history over the same Table I
/// schema the refinement loop uses, retrain, and re-lint the installed
/// model from the outside; then prove the gate fires by forcing a refit
/// the linter must refuse.
fn check_online_retrain() -> usize {
    println!("\n== online retrain gate (incremental refit x rule linter) ==");
    use spmv_ml::{lint_ruleset, IncrementalLearner, LintOptions, OnlineConfig, RetrainOutcome};
    use spmv_sparse::{FeatureSet, MatrixFeatures};

    let attrs: Vec<spmv_ml::AttrSpec> = MatrixFeatures::attr_names(FeatureSet::TableI)
        .into_iter()
        .map(spmv_ml::AttrSpec::numeric)
        .collect();
    let classes = vec!["incumbent".to_string(), "refined".to_string()];
    let mut bad = 0;

    // A separable measured history: small matrices keep their incumbent,
    // large ones measured faster refined (the deterministic stand-in for
    // live A/B outcomes).
    let row = |scale: f64| {
        vec![
            1_000.0 * scale,
            1_000.0 * scale,
            8_000.0 * scale,
            4.0,
            8.0,
            2.0,
            64.0 * scale,
        ]
    };
    let mut learner =
        IncrementalLearner::new(attrs.clone(), classes.clone(), OnlineConfig::default());
    for i in 0..12 {
        learner.observe(&row(1.0 + 0.01 * i as f64), 0);
        learner.observe(&row(50.0 + 0.01 * i as f64), 1);
    }
    match learner.retrain_incremental() {
        RetrainOutcome::Accepted { rules, warnings } => {
            // The gate already linted; re-lint from the outside so this
            // check does not trust the learner's own bookkeeping.
            let model = learner.model().expect("accepted refit installs a model");
            let errors = lint_ruleset(
                model,
                &LintOptions {
                    class_limit: Some(classes.len()),
                    ..LintOptions::default()
                },
            )
            .into_iter()
            .filter(|f| f.severity() == Severity::Error)
            .count();
            if errors == 0 {
                println!(
                    "ok: accepted refit ({rules} rules, {warnings} warning(s)) re-lints clean"
                );
            } else {
                eprintln!("FAIL: accepted refit carries {errors} Error finding(s)");
                bad += 1;
            }
        }
        other => {
            eprintln!("FAIL: separable measured history not accepted: {other:?}");
            bad += 1;
        }
    }

    // The gate must also *fire*: a gate sized for a one-class universe
    // rejects any refit that dispatches to class 1, exactly as the
    // model loader would refuse it from disk.
    let mut gated = IncrementalLearner::new(
        attrs,
        classes,
        OnlineConfig {
            lint: LintOptions {
                class_limit: Some(1),
                ..LintOptions::default()
            },
            ..OnlineConfig::default()
        },
    );
    for i in 0..12 {
        gated.observe(&row(1.0 + 0.01 * i as f64), 0);
        gated.observe(&row(50.0 + 0.01 * i as f64), 1);
    }
    match gated.retrain_incremental() {
        RetrainOutcome::RejectedByLinter { errors } if gated.model().is_none() => {
            println!(
                "ok: degenerate refit rejected ({errors} Error finding(s)), no model installed"
            );
        }
        other => {
            eprintln!("FAIL: lint gate did not reject the degenerate refit: {other:?}");
            bad += 1;
        }
    }
    usize::from(bad > 0)
}

/// Train the small deterministic model committed as `models/tiny.txt`:
/// fixed corpus seed, fixed granularity grid, simulated Kaveri device —
/// every invocation reproduces the same file.
fn gen_model(path: &Path) {
    let config = TrainerConfig {
        corpus: CorpusConfig {
            count: 25,
            min_rows: 300,
            max_rows: 900,
            seed: 8,
        },
        tuner: TunerConfig {
            granularities: vec![10, 100, 1000],
            ..TunerConfig::training()
        },
        ..Default::default()
    };
    let (model, report) = Trainer::with_config(GpuDevice::kaveri(), config).train();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create model dir");
    }
    save_model_file(&model, path).expect("write model");
    println!(
        "wrote {} (stage-1 error {:.2}, stage-2 error {:.2})",
        path.display(),
        report.stage1_error(),
        report.stage2_error()
    );
}
