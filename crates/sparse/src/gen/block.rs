//! Block-structured matrices: FEM/structural problems (`crankseg_2`,
//! `pkustk14`, `pcrystk02` in Table II) couple small dense node blocks,
//! giving uniformly *long* rows (tens to hundreds of NNZ).

use super::{gen_value, seeded_rng, RowsBuilder};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::Rng;

/// Generate a block-structured `n × n` matrix (`n = n_blocks ·
/// block_size`): each block row holds its diagonal block plus
/// `coupling` randomly chosen neighbour blocks, every block fully dense.
/// Rows therefore carry `(1 + coupling) · block_size` non-zeros each.
pub fn block_structured<T: Scalar>(
    n_blocks: usize,
    block_size: usize,
    coupling: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let n = n_blocks * block_size;
    let mut rng = seeded_rng(seed);
    let per_row = (1 + coupling).min(n_blocks) * block_size;
    let mut b = RowsBuilder::with_capacity(n, n, n * per_row);
    let mut block_cols: Vec<usize> = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for bi in 0..n_blocks {
        // Pick the coupled blocks once per block row (all rows of the
        // block share the same sparsity, as in FEM assembly).
        block_cols.clear();
        block_cols.push(bi);
        while block_cols.len() < (1 + coupling).min(n_blocks) {
            // Prefer near-diagonal neighbours, as meshes do.
            let span = (n_blocks / 8).max(2);
            let off = rng.gen_range(0..=2 * span) as isize - span as isize;
            let bj = (bi as isize + off).rem_euclid(n_blocks as isize) as usize;
            if !block_cols.contains(&bj) {
                block_cols.push(bj);
            }
        }
        block_cols.sort_unstable();
        for _ in 0..block_size {
            cols.clear();
            vals.clear();
            for &bj in &block_cols {
                for k in 0..block_size {
                    cols.push((bj * block_size + k) as u32);
                    vals.push(gen_value::<T>(&mut rng));
                }
            }
            b.push_row_sorted(&cols, &vals);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_uniformly_long() {
        let a = block_structured::<f64>(16, 8, 3, 1);
        assert_eq!(a.n_rows(), 128);
        for i in 0..a.n_rows() {
            assert_eq!(a.row_nnz(i), 4 * 8);
        }
        assert!(a.rows_sorted());
    }

    #[test]
    fn diagonal_block_is_present() {
        let a = block_structured::<f64>(8, 4, 2, 2);
        for i in 0..a.n_rows() {
            let bi = i / 4;
            let (cols, _) = a.row(i);
            for k in 0..4 {
                let want = (bi * 4 + k) as u32;
                assert!(cols.contains(&want), "row {i} missing diagonal col {want}");
            }
        }
    }

    #[test]
    fn coupling_clamped_to_block_count() {
        let a = block_structured::<f32>(2, 3, 10, 3);
        for i in 0..a.n_rows() {
            assert_eq!(a.row_nnz(i), 2 * 3);
        }
    }
}
