//! Property-based tests of cross-crate invariants: kernel correctness on
//! arbitrary matrices, binning partition properties, cost-model axioms.

use proptest::prelude::*;
use spmv_repro::autotune::binning::{bin_matrix, BinningScheme};
use spmv_repro::autotune::kernels::{run_kernel, KernelId, ALL_KERNELS};
use spmv_repro::gpusim::GpuDevice;
use spmv_repro::sparse::scalar::approx_eq;
use spmv_repro::sparse::{CooMatrix, CsrMatrix};

/// Strategy: an arbitrary small sparse matrix as COO triplets.
fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..40, 1usize..40).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n, -5.0f64..5.0), 0..200).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(m, n);
                for (r, c, v) in triplets {
                    coo.push(r, c, v);
                }
                coo.to_csr()
            },
        )
    })
}

fn arb_kernel() -> impl Strategy<Value = KernelId> {
    (0usize..ALL_KERNELS.len()).prop_map(KernelId::from_index)
}

fn arb_scheme() -> impl Strategy<Value = BinningScheme> {
    prop_oneof![
        (1usize..2000).prop_map(|u| BinningScheme::Coarse { u }),
        Just(BinningScheme::Fine),
        Just(BinningScheme::Single),
        ((1usize..100), (1usize..500))
            .prop_map(|(threshold, u)| BinningScheme::Hybrid { threshold, u }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any kernel over any binning of any matrix computes A·v.
    #[test]
    fn kernels_are_correct_on_arbitrary_matrices(
        a in arb_matrix(),
        kernel in arb_kernel(),
        scheme in arb_scheme(),
    ) {
        let v: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let reference = a.spmv_seq_alloc(&v).unwrap();
        let device = GpuDevice::kaveri();
        let bins = bin_matrix(&a, scheme);
        prop_assert!(bins.validate().is_ok());
        let mut u = vec![0.0f64; a.n_rows()];
        for b in 0..bins.bins.len() {
            if bins.bins[b].is_empty() {
                continue;
            }
            let rows = bins.expand(b);
            run_kernel(&device, &a, &rows, kernel, &v, &mut u);
        }
        for i in 0..a.n_rows() {
            prop_assert!(
                approx_eq(u[i], reference[i], a.row_nnz(i).max(1)),
                "row {}: {} vs {}", i, u[i], reference[i]
            );
        }
    }

    /// Binning always partitions the row space, for any granularity.
    #[test]
    fn binning_partitions_rows(a in arb_matrix(), u in 1usize..5000) {
        let bins = bin_matrix(&a, BinningScheme::Coarse { u });
        prop_assert!(bins.validate().is_ok());
        let total: usize = (0..bins.bins.len()).map(|b| bins.expand(b).len()).sum();
        prop_assert_eq!(total, a.n_rows());
    }

    /// Launch cost is monotone in the row set: running more rows never
    /// costs less (same kernel, disjoint union).
    #[test]
    fn cost_is_monotone_in_rows(a in arb_matrix(), kernel in arb_kernel()) {
        prop_assume!(a.n_rows() >= 2);
        let device = GpuDevice::kaveri();
        let v = vec![1.0f64; a.n_cols()];
        let mut u = vec![0.0f64; a.n_rows()];
        let half: Vec<u32> = (0..(a.n_rows() / 2) as u32).collect();
        let all: Vec<u32> = (0..a.n_rows() as u32).collect();
        let c_half = run_kernel(&device, &a, &half, kernel, &v, &mut u).cycles;
        let c_all = run_kernel(&device, &a, &all, kernel, &v, &mut u).cycles;
        prop_assert!(c_all + 1e-9 >= c_half, "all {} < half {}", c_all, c_half);
    }

    /// The simulator is deterministic.
    #[test]
    fn pricing_is_deterministic(a in arb_matrix(), kernel in arb_kernel()) {
        let device = GpuDevice::kaveri();
        let v = vec![1.0f64; a.n_cols()];
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let mut u = vec![0.0f64; a.n_rows()];
        let s1 = run_kernel(&device, &a, &rows, kernel, &v, &mut u);
        let s2 = run_kernel(&device, &a, &rows, kernel, &v, &mut u);
        prop_assert_eq!(s1, s2);
    }

    /// Transpose is an involution and preserves NNZ — the suite and
    /// PageRank example rely on it.
    #[test]
    fn transpose_involution(a in arb_matrix()) {
        let t = a.transpose();
        prop_assert_eq!(t.nnz(), a.nnz());
        prop_assert_eq!(t.transpose(), a);
    }
}
