//! `Kernel-SubvectorX` (Algorithm 4) and `Kernel-Vector` (Algorithm 5):
//! `X` work-items cooperate on one row (`X = 256` = the whole work-group
//! = Kernel-Vector).
//!
//! Per outer iteration the kernel stages `factor · X` products per row
//! in LDS with **contiguous** (coalesced) reads of `colIdx`/`val`, then
//! runs a segmented parallel reduction. The trace captures the trade the
//! paper's kernel pool is built on: coalescing and intra-row parallelism
//! bought with LDS traffic, barriers, and idle lanes on short rows.

use super::{FACTOR, WORKGROUP_SIZE};
use spmv_gpusim::engine::price_workgroups;
use spmv_gpusim::trace::{WaveTracer, WorkgroupCost};
use spmv_gpusim::{GpuDevice, LaunchStats, LaunchTracer, Region};
use spmv_sparse::{CsrMatrix, Scalar};

/// One wavefront's share of the work-group: which rows it serves and, for
/// `X > 64`, which 64-lane slice of each row's subvector it holds.
struct WaveAssign {
    /// `(position of the row within the work-group, row id, lane offset
    /// within the subvector)`.
    entries: Vec<(usize, u32, usize)>,
}

pub(super) fn run<T: Scalar>(
    device: &GpuDevice,
    a: &CsrMatrix<T>,
    rows: &[u32],
    x: usize,
    v: &[T],
    u: &mut [T],
) -> LaunchStats {
    debug_assert!((2..=WORKGROUP_SIZE).contains(&x) && x.is_power_of_two());
    let rows_per_wg = (WORKGROUP_SIZE / x).max(1);
    let lds_bytes = FACTOR * WORKGROUP_SIZE * T::BYTES;
    let tracer = LaunchTracer::new(device);
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let chunk = FACTOR * x; // elements staged per row per outer iteration

    let mut workgroups: Vec<WorkgroupCost> = Vec::with_capacity(rows.len().div_ceil(rows_per_wg));
    for (wg_idx, wg_rows) in rows.chunks(rows_per_wg).enumerate() {
        let assigns = assign_waves(device, wg_rows, x);
        let mut wg_sums: Vec<T> = vec![T::ZERO; wg_rows.len()];
        let mut traced: Vec<WaveTracer<'_>> = Vec::with_capacity(assigns.len());
        let wg = tracer.workgroup(lds_bytes);

        for wa in &assigns {
            let mut w = wg.wave();
            // rid = bin[...]: the wave reads the row entries it serves.
            w.read_contiguous(Region::BinRows, wg_idx * rows_per_wg, wa.entries.len(), 4);
            // rowStart / rowEnd gathers (one lane per distinct row).
            for pass in 0..2usize {
                w.begin_access();
                for &(_, rid, _) in &wa.entries {
                    w.lane_addr(Region::RowPtr, rid as usize + pass, 4);
                }
                w.commit_read();
            }
            w.alu(4); // tid/bid arithmetic, sum = 0

            let spans: Vec<(usize, usize)> = wa
                .entries
                .iter()
                .map(|&(_, rid, _)| (row_ptr[rid as usize], row_ptr[rid as usize + 1]))
                .collect();
            let outer_iters = spans
                .iter()
                .map(|&(s, e)| (e - s).div_ceil(chunk))
                .max()
                .unwrap_or(0);

            for it in 0..outer_iters {
                for t in 0..FACTOR {
                    // Contiguous per-row segments of colIdx and val; the
                    // v gather is scattered by the column values.
                    let mut any = false;
                    w.begin_access();
                    for (k, &(pos, _, lane_lo)) in wa.entries.iter().enumerate() {
                        let (s, e) = spans[k];
                        let seg = s + (it * FACTOR + t) * x + lane_lo;
                        let lanes = x.min(device.wavefront);
                        for idx in seg..(seg + lanes).min(e) {
                            w.lane_addr(Region::ColIdx, idx, 4);
                            any = true;
                            let _ = pos;
                        }
                    }
                    if any {
                        w.commit_read();
                        w.begin_access();
                        for (k, &(_, _, lane_lo)) in wa.entries.iter().enumerate() {
                            let (s, e) = spans[k];
                            let seg = s + (it * FACTOR + t) * x + lane_lo;
                            let lanes = x.min(device.wavefront);
                            if seg < e {
                                for &c in &col_idx[seg..(seg + lanes).min(e)] {
                                    w.lane_addr(Region::VecIn, c as usize, T::BYTES);
                                }
                            }
                        }
                        w.commit_read();
                        w.begin_access();
                        for (k, &(pos, _, lane_lo)) in wa.entries.iter().enumerate() {
                            let (s, e) = spans[k];
                            let seg = s + (it * FACTOR + t) * x + lane_lo;
                            let lanes = x.min(device.wavefront);
                            for idx in seg..(seg + lanes).min(e) {
                                w.lane_addr(Region::Val, idx, T::BYTES);
                                // Functional multiply-accumulate.
                                wg_sums[pos] =
                                    values[idx].mul_add_(v[col_idx[idx] as usize], wg_sums[pos]);
                            }
                        }
                        w.commit_read();
                        w.lds(1); // stage the products
                        w.alu(2);
                    } else {
                        w.alu(1); // predicated-off iteration still issues
                    }
                }
                w.barrier();
                // Segmented reduction of factor·X staged products per
                // row: fold `factor` in registers, then a log2(X) tree.
                w.lds(FACTOR as u64);
                w.alu(FACTOR as u64);
                let tree_steps = x.trailing_zeros() as u64;
                w.lds(2 * tree_steps);
                w.alu(tree_steps);
                if x > device.wavefront {
                    // Cross-wave reduction steps need extra barriers.
                    w.barrier();
                    let cross = (x / device.wavefront).trailing_zeros() as u64;
                    for _ in 0..cross {
                        w.barrier();
                    }
                }
                w.alu(1); // leader accumulates into `sum`
                w.barrier();
            }
            traced.push(w);
        }

        // Final store: the subvector leaders (lane offset 0) write u.
        for (wi, wa) in assigns.iter().enumerate() {
            let leaders: Vec<u32> = wa
                .entries
                .iter()
                .filter(|&&(_, _, lane_lo)| lane_lo == 0)
                .map(|&(_, rid, _)| rid)
                .collect();
            if !leaders.is_empty() {
                let w = &mut traced[wi];
                w.begin_access();
                for &rid in &leaders {
                    w.lane_addr(Region::VecOut, rid as usize, T::BYTES);
                }
                w.commit_write();
            }
        }
        for (pos, &rid) in wg_rows.iter().enumerate() {
            u[rid as usize] = wg_sums[pos];
        }

        let mut wg = wg;
        for w in traced {
            wg.push_wave(w.finish());
        }
        workgroups.push(wg.finish());
    }
    if workgroups.is_empty() {
        return LaunchStats::default();
    }
    price_workgroups(device, &workgroups)
}

/// Partition a work-group's rows onto wavefronts.
///
/// * `X ≤ 64`: each wave serves `64/X` whole rows.
/// * `X > 64`: each row's subvector spans `X/64` waves; wave `w` holds
///   lane slice `[w·64, (w+1)·64)`.
fn assign_waves(device: &GpuDevice, wg_rows: &[u32], x: usize) -> Vec<WaveAssign> {
    let wf = device.wavefront;
    let mut out = Vec::new();
    if x <= wf {
        let rows_per_wave = wf / x;
        for chunk in wg_rows.chunks(rows_per_wave) {
            let base = out.len() * rows_per_wave;
            out.push(WaveAssign {
                entries: chunk
                    .iter()
                    .enumerate()
                    .map(|(k, &rid)| (base + k, rid, 0))
                    .collect(),
            });
        }
    } else {
        let waves_per_row = x / wf;
        for (pos, &rid) in wg_rows.iter().enumerate() {
            for slice in 0..waves_per_row {
                out.push(WaveAssign {
                    entries: vec![(pos, rid, slice * wf)],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_sparse::gen;

    fn cost(a: &CsrMatrix<f32>, x: usize) -> f64 {
        let device = GpuDevice::kaveri();
        let rows: Vec<u32> = (0..a.n_rows() as u32).collect();
        let v = vec![1.0f32; a.n_cols()];
        let mut u = vec![0.0f32; a.n_rows()];
        run(&device, a, &rows, x, &v, &mut u).cycles
    }

    #[test]
    fn wave_assignment_small_x_packs_rows() {
        let d = GpuDevice::kaveri();
        let rows: Vec<u32> = (0..64).collect();
        let waves = assign_waves(&d, &rows, 4);
        // 16 rows per wave → 4 waves.
        assert_eq!(waves.len(), 4);
        assert_eq!(waves[0].entries.len(), 16);
        assert!(waves[0].entries.iter().all(|&(_, _, lo)| lo == 0));
        // Positions are unique across waves.
        let mut pos: Vec<usize> = waves
            .iter()
            .flat_map(|w| w.entries.iter().map(|&(p, _, _)| p))
            .collect();
        pos.sort_unstable();
        assert_eq!(pos, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn wave_assignment_large_x_slices_rows() {
        let d = GpuDevice::kaveri();
        let rows: Vec<u32> = vec![7, 9];
        let waves = assign_waves(&d, &rows, 128);
        // 2 rows × 2 slices = 4 waves, lane offsets 0 and 64.
        assert_eq!(waves.len(), 4);
        let offsets: Vec<usize> = waves.iter().map(|w| w.entries[0].2).collect();
        assert_eq!(offsets, vec![0, 64, 0, 64]);
    }

    #[test]
    fn wider_subvectors_win_as_rows_lengthen() {
        // On 16-NNZ rows sub4 should beat sub128; on 512-NNZ rows the
        // ordering flips.
        let short = gen::random_uniform::<f32>(4096, 65_536, 16, 16, 1);
        let long = gen::random_uniform::<f32>(512, 65_536, 512, 512, 2);
        assert!(cost(&short, 4) < cost(&short, 128));
        assert!(cost(&long, 128) < cost(&long, 4));
    }

    #[test]
    fn vector_kernel_amortises_on_very_long_rows() {
        let huge = gen::random_uniform::<f32>(128, 65_536, 4096, 4096, 3);
        assert!(cost(&huge, 256) < cost(&huge, 8));
    }
}
